"""Query routing decisions over the hierarchy and overlay.

Pure decision logic (no simulation): given a server's local state and a
query, decide which attached owners have possibly-matching data and which
other servers the client should be redirected to. The client-side driving
of these decisions through the simulated network lives in
:mod:`repro.roads.client`.

At the **start server** the search fans out across the disjoint cover
formed by: the server's own children and attached owners, its sibling
branches, and its ancestors' sibling branches (all held locally thanks to
the replication overlay). During the subsequent **descent**, each visited
server only fans out to its own children/owners — branches are disjoint,
so no server is visited twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..query.query import Query
from ..summaries.config import SummaryConfig
from ..summaries.summary import ResourceSummary
from ..hierarchy.node import AttachedOwner, Server

#: per-target entry bytes in a redirect response
_REDIRECT_ENTRY_BYTES = 8
_REDIRECT_HEADER_BYTES = 16


@dataclass
class RoutingDecision:
    """What one server tells the querying client."""

    server_id: int
    #: attached owners whose exported data may match (terminal hits)
    owner_hits: List[AttachedOwner] = field(default_factory=list)
    #: servers the client should query next (full branch descent)
    redirect_ids: List[int] = field(default_factory=list)
    #: ancestors to query for their *locally attached* owners only — their
    #: descendants are already covered by the sibling-branch redirects
    owners_only_ids: List[int] = field(default_factory=list)

    @property
    def response_size_bytes(self) -> int:
        return _REDIRECT_HEADER_BYTES + _REDIRECT_ENTRY_BYTES * (
            len(self.redirect_ids)
            + len(self.owners_only_ids)
            + len(self.owner_hits)
        )


def _owner_may_match(owner: AttachedOwner, query: Query, config: SummaryConfig) -> bool:
    if owner.controls_server:
        # The server holds the raw records; check them directly.
        return bool(query.mask(owner.origin).any())
    if owner.summary is None:
        return False
    return owner.summary.may_match(query)


def decide_descent(server: Server, query: Query, config: SummaryConfig,
                   now: float = 0.0) -> RoutingDecision:
    """Routing decision using only the server's own branch state."""
    decision = RoutingDecision(server_id=server.server_id)
    for owner in server.owners:
        if _owner_may_match(owner, query, config):
            decision.owner_hits.append(owner)
    for child_id in server.child_ids():
        summary = server.child_summaries.get(child_id)
        if summary is None or summary.is_expired(now):
            continue
        if summary.may_match(query):
            decision.redirect_ids.append(child_id)
    return decision


def decide_local(server: Server, query: Query, config: SummaryConfig,
                 now: float = 0.0) -> RoutingDecision:
    """Owners-only decision: evaluate locally attached owners, no fan-out."""
    decision = RoutingDecision(server_id=server.server_id)
    for owner in server.owners:
        if _owner_may_match(owner, query, config):
            decision.owner_hits.append(owner)
    return decision


def decide_start(server: Server, query: Query, config: SummaryConfig,
                 now: float = 0.0) -> RoutingDecision:
    """Routing decision at the search's entry point.

    Adds the overlay's sibling / ancestor-sibling branches to the full
    fan-out. Ancestors are handled specially: their branch summaries
    contain this server's own branch, so redirecting into them would
    duplicate the descent — but their *locally attached* owners are not
    inside any sibling branch, so matching ancestors are queried in
    owners-only mode. Together this covers the whole hierarchy exactly
    once.
    """
    decision = decide_descent(server, query, config, now)
    ancestors = set(server.root_path[:-1])
    for src_id, summary in server.replicated_summaries.items():
        if src_id in ancestors:
            continue  # handled below via their local summaries
        if summary.is_expired(now):
            continue
        if summary.may_match(query):
            decision.redirect_ids.append(src_id)
    for src_id, summary in server.replicated_local_summaries.items():
        if summary.is_expired(now):
            continue
        if summary.may_match(query):
            decision.owners_only_ids.append(src_id)
    return decision


def scope_candidates(server: Server) -> List[int]:
    """Ancestor ids (nearest first) a client may pick as a wider scope.

    Section III-C: each ancestor (or its siblings) is one level higher in
    the hierarchy, providing more resources at the cost of a longer search
    path; the client chooses how wide a scope to search.
    """
    return [a.server_id for a in server.ancestors()]
