"""Replication overlay: summary replication and start-anywhere routing."""

from .replication import (
    ReplicationOverlay,
    ReplicationReport,
    coverage_ids,
    replication_sources,
)
from .routing import (
    RoutingDecision,
    decide_descent,
    decide_local,
    decide_start,
    scope_candidates,
)

__all__ = [
    "ReplicationOverlay",
    "ReplicationReport",
    "replication_sources",
    "coverage_ids",
    "RoutingDecision",
    "decide_start",
    "decide_local",
    "decide_descent",
    "scope_candidates",
]
