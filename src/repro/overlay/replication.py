"""Replication overlay (Section III-C).

Each server replicates the branch summaries of its **siblings**, its
**ancestors**, and its **ancestors' siblings** — chosen so the summaries
held locally (together with the server's own children/owner summaries)
cover the entire hierarchy, letting a search start at any server.

Replication piggybacks on the hierarchy: a server's branch summary is
propagated down its own branch, and its parent forwards it to its siblings
which propagate it to their descendants. Each replicated summary therefore
reaches each holder across one tree edge per round; we account one message
of the summary's encoded size per (holder, replicated summary) pair, which
reproduces the paper's ``O(k·n·log n)`` replication message term.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Set

from ..sim.metrics import UPDATE, MetricsCollector
from ..summaries.config import SummaryConfig
from ..telemetry.core import Telemetry
from ..summaries.summary import ResourceSummary
from ..hierarchy.join import Hierarchy
from ..hierarchy.node import Server

_HEADER_BYTES = 16


def replication_sources(server: Server) -> List[Server]:
    """The servers whose branch summaries *server* must replicate.

    Ordered: own siblings, then (ancestor, ancestor's siblings) from the
    nearest ancestor up to the root. For the node ``D1`` of the paper's
    Figure 2 this yields ``[D2, C1, C2, B1, B2, A]``.
    """
    out: List[Server] = []
    out.extend(server.siblings())
    for anc in server.ancestors():
        out.append(anc)
        out.extend(anc.siblings())
    return out


def coverage_ids(server: Server) -> Set[int]:
    """All server ids covered by *server*'s local + replicated summaries.

    Own branch, sibling branches, and ancestor-sibling branches partition
    the hierarchy, so this must equal the full membership — the invariant
    the overlay is designed around. Ancestor summaries overlap this cover
    (they include the server's own branch) and add no new ids.
    """
    covered: Set[int] = {s.server_id for s in server.iter_subtree()}
    for src in replication_sources(server):
        covered.update(s.server_id for s in src.iter_subtree())
    return covered


@dataclass
class ReplicationReport:
    """Outcome of one overlay replication round."""

    replication_bytes: int
    messages: int
    #: delta propagation: full summary sends vs keep-alive refreshes
    full_sends: int = 0
    keepalive_sends: int = 0


class ReplicationOverlay:
    """Maintains replicated summaries across a hierarchy."""

    def __init__(self, hierarchy: Hierarchy, config: SummaryConfig):
        self.hierarchy = hierarchy
        self.config = config
        # last shipped fingerprint per (holder, source, table) for deltas
        self._last_fp: Dict[tuple, bytes] = {}

    def replicate_round(
        self,
        now: float = 0.0,
        metrics: Optional[MetricsCollector] = None,
        *,
        delta: bool = False,
        telemetry: Optional[Telemetry] = None,
    ) -> ReplicationReport:
        """Refresh every server's replicated summaries from current state.

        Must run after an aggregation round so branch summaries are fresh.
        With ``delta=True``, a replica whose source summary is unchanged
        since the last round costs only a keep-alive header.
        """
        span = (
            telemetry.span("update.replicate", delta=delta)
            if telemetry is not None
            else None
        )
        prof = telemetry.profiler if telemetry is not None else None
        wall_t0 = perf_counter() if prof is not None else 0.0
        # Compute each server's branch and local summaries once.
        branch: Dict[int, Optional[ResourceSummary]] = {}
        local: Dict[int, Optional[ResourceSummary]] = {}
        for server in self.hierarchy:
            branch[server.server_id] = server.branch_summary(self.config, now)
            local[server.server_id] = server.local_summary(self.config, now)

        total_bytes = 0
        messages = 0
        full_sends = 0
        keepalive_sends = 0
        # Fingerprints computed once per source per round.
        fp_cache: Dict[tuple, bytes] = {}

        def fp_of(table: str, src_id: int, summary: ResourceSummary) -> bytes:
            key = (table, src_id)
            fp = fp_cache.get(key)
            if fp is None:
                fp = summary.fingerprint()
                fp_cache[key] = fp
            return fp

        def ship(server: Server, table: str, src_id: int,
                 summary: ResourceSummary, target: Dict[int, ResourceSummary]) -> None:
            nonlocal total_bytes, messages, full_sends, keepalive_sends
            target[src_id] = summary
            size = _HEADER_BYTES
            key = (server.server_id, src_id, table)
            if delta:
                fp = fp_of(table, src_id, summary)
                if self._last_fp.get(key) == fp:
                    keepalive_sends += 1
                else:
                    size += summary.encoded_size()
                    full_sends += 1
                self._last_fp[key] = fp
            else:
                size += summary.encoded_size()
                full_sends += 1
            total_bytes += size
            messages += 1
            if metrics is not None:
                # The holder receives the replicated summary.
                metrics.record_message(
                    UPDATE, size, server=server.server_id, phase="replicate"
                )

        for server in self.hierarchy:
            server.replicated_summaries.clear()
            server.replicated_local_summaries.clear()
            for src in replication_sources(server):
                summary = branch.get(src.server_id)
                if summary is None:
                    continue
                ship(server, "branch", src.server_id, summary,
                     server.replicated_summaries)
            # Ancestors additionally ship their local-owner summaries
            # (piggybacked on the same downward propagation) so a start
            # server can tell whether the ancestor itself holds data.
            for anc in server.ancestors():
                summary = local.get(anc.server_id)
                if summary is None:
                    continue
                ship(server, "local", anc.server_id, summary,
                     server.replicated_local_summaries)
        if prof is not None:
            prof.add("update.replicate", perf_counter() - wall_t0)
        if span is not None:
            span.annotate(
                bytes=total_bytes, messages=messages,
                full_sends=full_sends, keepalive_sends=keepalive_sends,
            )
            span.close()
        return ReplicationReport(
            replication_bytes=total_bytes,
            messages=messages,
            full_sends=full_sends,
            keepalive_sends=keepalive_sends,
        )

    def check_coverage(self) -> None:
        """Assert the whole-hierarchy coverage invariant for every server."""
        all_ids = {s.server_id for s in self.hierarchy}
        for server in self.hierarchy:
            covered = coverage_ids(server)
            missing = all_ids - covered
            assert not missing, (
                f"server {server.server_id} overlay does not cover {sorted(missing)}"
            )

    def per_node_message_counts(self) -> Dict[int, int]:
        """Replication messages received per node per round (paper eq. 4)."""
        return {
            s.server_id: len(replication_sources(s)) for s in self.hierarchy
        }
