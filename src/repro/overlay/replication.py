"""Replication overlay (Section III-C).

Each server replicates the branch summaries of its **siblings**, its
**ancestors**, and its **ancestors' siblings** — chosen so the summaries
held locally (together with the server's own children/owner summaries)
cover the entire hierarchy, letting a search start at any server.

Replication piggybacks on the hierarchy: a server's branch summary is
propagated down its own branch, and its parent forwards it to its siblings
which propagate it to their descendants. Each replicated summary therefore
reaches each holder across one tree edge per round; we account one message
of the summary's encoded size per (holder, replicated summary) pair, which
reproduces the paper's ``O(k·n·log n)`` replication message term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..sim.metrics import UPDATE, MetricsCollector
from ..summaries.config import SummaryConfig
from ..telemetry.core import Telemetry
from ..summaries.summary import ResourceSummary
from ..hierarchy.join import Hierarchy
from ..hierarchy.node import Server

_HEADER_BYTES = 16


def replication_sources(server: Server) -> List[Server]:
    """The servers whose branch summaries *server* must replicate.

    Ordered: own siblings, then (ancestor, ancestor's siblings) from the
    nearest ancestor up to the root. For the node ``D1`` of the paper's
    Figure 2 this yields ``[D2, C1, C2, B1, B2, A]``.
    """
    out: List[Server] = []
    out.extend(server.siblings())
    for anc in server.ancestors():
        out.append(anc)
        out.extend(anc.siblings())
    return out


def replication_audience(server: Server) -> List[Server]:
    """The servers that replicate *server*'s branch summary (push set).

    Exact inverse of :func:`replication_sources`: ``server`` is a source
    for its own siblings, for every server in its subtree (it is their
    ancestor), and for every server in a sibling's subtree (it is one of
    their ancestors' siblings). Equivalently: everything under
    ``server``'s parent except ``server`` itself, plus ``server``'s own
    descendants.
    """
    out: List[Server] = [s for s in server.iter_subtree() if s is not server]
    for sib in server.siblings():
        out.extend(sib.iter_subtree())
    return out


def coverage_ids(server: Server) -> Set[int]:
    """All server ids covered by *server*'s local + replicated summaries.

    Own branch, sibling branches, and ancestor-sibling branches partition
    the hierarchy, so this must equal the full membership — the invariant
    the overlay is designed around. Ancestor summaries overlap this cover
    (they include the server's own branch) and add no new ids.
    """
    covered: Set[int] = {s.server_id for s in server.iter_subtree()}
    for src in replication_sources(server):
        covered.update(s.server_id for s in src.iter_subtree())
    return covered


@dataclass
class ReplicationReport:
    """Outcome of one overlay replication round."""

    replication_bytes: int
    messages: int
    #: delta propagation: full summary sends vs keep-alive refreshes
    full_sends: int = 0
    keepalive_sends: int = 0


class ReplicationOverlay:
    """Maintains replicated summaries across a hierarchy."""

    def __init__(self, hierarchy: Hierarchy, config: SummaryConfig):
        self.hierarchy = hierarchy
        self.config = config
        # last shipped fingerprint per (holder, source, table) for deltas
        self._last_fp: Dict[tuple, bytes] = {}

    def replicate_round(
        self,
        now: float = 0.0,
        metrics: Optional[MetricsCollector] = None,
        *,
        delta: bool = False,
        telemetry: Optional[Telemetry] = None,
    ) -> ReplicationReport:
        """Refresh every server's replicated summaries from current state.

        Must run after an aggregation round so branch summaries are fresh.
        With ``delta=True``, a replica whose source summary is unchanged
        since the last round costs only a keep-alive header.
        """
        span = (
            telemetry.span("update.replicate", delta=delta)
            if telemetry is not None
            else None
        )
        prof = telemetry.profiler if telemetry is not None else None
        if prof is not None:
            prof.enter("update.replicate")
        # Compute each server's branch and local summaries once.
        branch: Dict[int, Optional[ResourceSummary]] = {}
        local: Dict[int, Optional[ResourceSummary]] = {}
        for server in self.hierarchy:
            branch[server.server_id] = server.branch_summary(self.config, now)
            local[server.server_id] = server.local_summary(self.config, now)

        total_bytes = 0
        messages = 0
        full_sends = 0
        keepalive_sends = 0
        # Fingerprints computed once per source per round.
        fp_cache: Dict[tuple, bytes] = {}

        def fp_of(table: str, src_id: int, summary: ResourceSummary) -> bytes:
            key = (table, src_id)
            fp = fp_cache.get(key)
            if fp is None:
                fp = summary.fingerprint()
                fp_cache[key] = fp
            return fp

        def ship(server: Server, table: str, src_id: int,
                 summary: ResourceSummary, target: Dict[int, ResourceSummary]) -> None:
            nonlocal total_bytes, messages, full_sends, keepalive_sends
            target[src_id] = summary
            size = _HEADER_BYTES
            key = (server.server_id, src_id, table)
            if delta:
                fp = fp_of(table, src_id, summary)
                if self._last_fp.get(key) == fp:
                    keepalive_sends += 1
                else:
                    size += summary.encoded_size()
                    full_sends += 1
                self._last_fp[key] = fp
            else:
                size += summary.encoded_size()
                full_sends += 1
            total_bytes += size
            messages += 1
            if metrics is not None:
                # The holder receives the replicated summary.
                metrics.record_message(
                    UPDATE, size, server=server.server_id, phase="replicate"
                )

        for server in self.hierarchy:
            server.replicated_summaries.clear()
            server.replicated_local_summaries.clear()
            for src in replication_sources(server):
                summary = branch.get(src.server_id)
                if summary is None:
                    continue
                ship(server, "branch", src.server_id, summary,
                     server.replicated_summaries)
            # Ancestors additionally ship their local-owner summaries
            # (piggybacked on the same downward propagation) so a start
            # server can tell whether the ancestor itself holds data.
            for anc in server.ancestors():
                summary = local.get(anc.server_id)
                if summary is None:
                    continue
                ship(server, "local", anc.server_id, summary,
                     server.replicated_local_summaries)
        if prof is not None:
            prof.exit()
        if span is not None:
            span.annotate(
                bytes=total_bytes, messages=messages,
                full_sends=full_sends, keepalive_sends=keepalive_sends,
            )
            span.close()
        return ReplicationReport(
            replication_bytes=total_bytes,
            messages=messages,
            full_sends=full_sends,
            keepalive_sends=keepalive_sends,
        )

    def check_coverage(self) -> None:
        """Assert the whole-hierarchy coverage invariant for every server."""
        all_ids = {s.server_id for s in self.hierarchy}
        for server in self.hierarchy:
            covered = coverage_ids(server)
            missing = all_ids - covered
            assert not missing, (
                f"server {server.server_id} overlay does not cover {sorted(missing)}"
            )

    def per_node_message_counts(self) -> Dict[int, int]:
        """Replication messages received per node per round (paper eq. 4)."""
        return {
            s.server_id: len(replication_sources(s)) for s in self.hierarchy
        }


class ReplicaPusher:
    """Per-server actor: pushes this server's summaries to its holders.

    The event-driven counterpart of :meth:`ReplicationOverlay.
    replicate_round`, inverted: instead of every holder pulling from all
    its sources in one synchronous pass, each *source* pushes its branch
    summary to :func:`replication_audience` and its local-owner summary
    to its descendants, through real network messages installed at
    delivery time. Delta state lives in the overlay's shared
    ``(holder, source, table) -> fingerprint`` map so synchronous rounds
    and pushed epochs stay coherent; ``refresh_after`` forces a periodic
    full re-send per holder (soft-state anti-entropy under loss).
    """

    __slots__ = ("server", "overlay", "delta", "refresh_after",
                 "_last_full_at")

    def __init__(
        self,
        server: Server,
        overlay: ReplicationOverlay,
        *,
        delta: bool = False,
        refresh_after: Optional[float] = None,
    ):
        self.server = server
        self.overlay = overlay
        self.delta = delta
        self.refresh_after = (
            refresh_after
            if refresh_after is not None
            else overlay.config.ttl
        )
        # (holder_id, table) -> time of the last full send to that holder
        self._last_full_at: Dict[tuple, float] = {}

    def build_updates(self, now: float, *, force_full: bool = False) -> List[tuple]:
        """One epoch's pushes from this source: ``[(holder_id, update, size)]``.

        Payload objects are shared across holders receiving the same
        content (installation never mutates them), so an epoch allocates
        O(1) payloads per source, not per message. Mutates the shared
        delta fingerprint map — a push counts as sent even if lost.
        """
        from ..hierarchy.aggregation import SummaryUpdate

        server = self.server
        if not server.alive:
            return []
        config = self.overlay.config
        out: List[tuple] = []
        last_fp = self.overlay._last_fp
        sid = server.server_id

        def push_table(table: str, dest_table: str, summary, holders) -> None:
            if summary is None:
                return
            fp = summary.fingerprint()
            full_size = _HEADER_BYTES + summary.encoded_size()
            full = SummaryUpdate(dest_table, sid, summary, fp)
            keepalive = SummaryUpdate(dest_table, sid, None, fp)
            for holder in holders:
                if not holder.alive:
                    continue
                key = (holder.server_id, sid, table)
                full_key = (holder.server_id, table)
                stale_full = (
                    now - self._last_full_at.get(full_key, float("-inf"))
                ) >= self.refresh_after
                send_keepalive = (
                    self.delta
                    and not force_full
                    and not stale_full
                    and last_fp.get(key) == fp
                )
                last_fp[key] = fp
                if send_keepalive:
                    out.append((holder.server_id, keepalive, _HEADER_BYTES))
                else:
                    self._last_full_at[full_key] = now
                    out.append((holder.server_id, full, full_size))

        branch = server.branch_summary(config, now)
        push_table(
            "branch", "replica",
            branch.refreshed(now) if branch is not None else None,
            replication_audience(server),
        )
        push_table(
            "local", "replica_local",
            server.local_summary(config, now),
            [s for s in server.iter_subtree() if s is not server],
        )
        return out
