"""Chord-style greedy routing on the identifier circle.

Servers occupy dense integer ids on a circle of size ``n``; each server
keeps fingers to the servers at clockwise distances ``1, 2, 4, ...``.
Greedy routing repeatedly takes the largest finger not overshooting the
destination, so the hop sequence follows the binary decomposition of the
clockwise distance and the hop count is its popcount — the classic
O(log n) bound the paper assumes for record registration and query
routing.
"""

from __future__ import annotations

from typing import List

import numpy as np


class ChordRouter:
    """Finger-table routing over ``n`` dense ids."""

    def __init__(self, num_servers: int):
        if num_servers < 1:
            raise ValueError("num_servers must be >= 1")
        self.num_servers = int(num_servers)

    def distance(self, src: int, dst: int) -> int:
        """Clockwise distance from *src* to *dst*."""
        self._check(src)
        self._check(dst)
        return (dst - src) % self.num_servers

    def hops(self, src: int, dst: int) -> int:
        """Number of greedy finger hops from *src* to *dst*."""
        return int(bin(self.distance(src, dst)).count("1"))

    def hops_vector(self, src: int, dsts: np.ndarray) -> np.ndarray:
        """Vectorized hop counts from *src* to many destinations."""
        self._check(src)
        dist = (np.asarray(dsts, dtype=np.int64) - src) % self.num_servers
        return popcount(dist)

    def path(self, src: int, dst: int) -> List[int]:
        """The intermediate servers visited, ending at *dst*.

        Empty when ``src == dst``. Each element is the node after one
        greedy finger jump; consecutive elements are one network hop
        apart, which is what the latency simulation charges.
        """
        dist = self.distance(src, dst)
        out: List[int] = []
        current = src
        while dist > 0:
            jump = 1 << (dist.bit_length() - 1)
            current = (current + jump) % self.num_servers
            out.append(current)
            dist -= jump
        return out

    def _check(self, i: int) -> None:
        if not (0 <= i < self.num_servers):
            raise IndexError(f"server {i} out of range [0, {self.num_servers})")


def popcount(values: np.ndarray) -> np.ndarray:
    """Vectorized population count for non-negative int64 arrays."""
    v = np.asarray(values, dtype=np.uint64)
    count = np.zeros(v.shape, dtype=np.int64)
    while v.any():
        count += (v & np.uint64(1)).astype(np.int64)
        v >>= np.uint64(1)
    return count
