"""Locality-preserving hashing for the SWORD rings.

SWORD (Oppenheimer et al., HPDC 2005 — the paper's DHT-based comparison
point) organizes servers into one DHT ring per searchable attribute, using
a locality-preserving hash: a range of attribute values maps to a
contiguous segment of the ring, so a range query is answered by walking
the servers of that segment.

We model all rings as sub-rings of a single identifier circle (footnote 1
of the paper): ``n`` servers sit at dense integer ids ``0..n-1``; the
sub-ring for attribute ``j`` consists of the servers with ``id % r == j``.
A value ``v`` in [0, 1] of attribute ``j`` maps to the ``floor(v * n_j)``-th
member of sub-ring ``j``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


class LocalityHash:
    """Maps (attribute index, value) to responsible servers."""

    def __init__(self, num_servers: int, num_attributes: int):
        if num_servers < 1:
            raise ValueError("num_servers must be >= 1")
        if num_attributes < 1:
            raise ValueError("num_attributes must be >= 1")
        if num_servers < num_attributes:
            raise ValueError(
                f"need at least one server per ring: "
                f"{num_servers} servers < {num_attributes} attributes"
            )
        self.num_servers = int(num_servers)
        self.num_attributes = int(num_attributes)
        self._members: List[np.ndarray] = [
            np.arange(j, self.num_servers, self.num_attributes, dtype=np.int64)
            for j in range(self.num_attributes)
        ]

    def ring_of_server(self, server: int) -> int:
        return server % self.num_attributes

    def members(self, ring: int) -> np.ndarray:
        """Server ids in *ring*, in ring order."""
        self._check_ring(ring)
        return self._members[ring]

    def ring_size(self, ring: int) -> int:
        return int(self._members[ring].shape[0])

    def responsible(self, ring: int, values) -> np.ndarray:
        """Server id(s) responsible for value(s) in [0, 1] on *ring*."""
        self._check_ring(ring)
        members = self._members[ring]
        vals = np.clip(np.asarray(values, dtype=np.float64), 0.0, 1.0)
        idx = np.minimum(
            (vals * members.shape[0]).astype(np.int64), members.shape[0] - 1
        )
        return members[idx]

    def segment(self, ring: int, lo: float, hi: float) -> np.ndarray:
        """The contiguous servers responsible for range [lo, hi] on *ring*."""
        if lo > hi:
            raise ValueError(f"invalid range [{lo}, {hi}]")
        self._check_ring(ring)
        members = self._members[ring]
        m = members.shape[0]
        first = min(int(np.clip(lo, 0.0, 1.0) * m), m - 1)
        last = min(int(np.clip(hi, 0.0, 1.0) * m), m - 1)
        return members[first : last + 1]

    def _check_ring(self, ring: int) -> None:
        if not (0 <= ring < self.num_attributes):
            raise IndexError(
                f"ring {ring} out of range [0, {self.num_attributes})"
            )
