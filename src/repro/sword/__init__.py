"""SWORD: the DHT-based resource discovery baseline."""

from .hashing import LocalityHash
from .ring import ChordRouter, popcount
from .system import SwordConfig, SwordQueryOutcome, SwordSystem

__all__ = [
    "LocalityHash",
    "ChordRouter",
    "popcount",
    "SwordConfig",
    "SwordSystem",
    "SwordQueryOutcome",
]
