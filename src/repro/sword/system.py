"""The SWORD baseline system.

A DHT-based resource discovery design (Section IV): every resource record
is registered in one ring per searchable attribute (``r`` replicas per
record, each routed over O(log n) hops). A multi-dimensional range query
is resolved in a single ring — routed to the start of the segment
responsible for the queried range, then walked sequentially through the
segment's servers, each of which filters its locally stored records
against *all* query dimensions.

Record registration traffic is computed exactly (vectorized hop counts ×
record size) rather than event-by-event: a single 320-node epoch re-routes
2.5M record replicas, and the byte total is what the experiments need.
Query execution walks the actual finger paths and segment chains over the
same delay space the ROADS simulation uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..net.coordinates import DelaySpace
from ..query.predicate import RangePredicate
from ..query.query import Query
from ..records.store import RecordStore
from ..sim.rng import SeedSequenceFactory
from .hashing import LocalityHash
from .ring import ChordRouter, popcount

#: per-record registration header (record id, owner, ring)
_RECORD_HEADER_BYTES = 16
#: per-hop processing delay, matching the ROADS network default
_PROCESSING_DELAY = 0.0005


@dataclass(frozen=True)
class SwordConfig:
    """Parameters of a simulated SWORD deployment."""

    num_nodes: int = 320
    records_per_node: int = 500
    record_interval: float = 6.0  # the paper's t_r
    ring_strategy: str = "first"  # which query attribute picks the ring
    #: per-record local search time at a segment server. The query walks
    #: the segment *sequentially*, and each server scans its stored
    #: records (K·N·r/n of them) against all dimensions before forwarding
    #: — this serial scan time is part of the paper's SWORD latency.
    search_seconds_per_record: float = 5e-6
    delay_scale_ms: float = 100.0
    delay_base_ms: float = 10.0
    delay_jitter_ms: float = 5.0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.record_interval <= 0:
            raise ValueError("record_interval must be positive")
        if self.ring_strategy not in ("first", "narrowest"):
            raise ValueError(f"unknown ring strategy {self.ring_strategy!r}")
        if self.search_seconds_per_record < 0:
            raise ValueError("search_seconds_per_record must be >= 0")


@dataclass
class SwordQueryOutcome:
    """Everything measured about one SWORD query."""

    query: Query
    client_node: int
    ring_attribute: str
    #: finger-path servers then segment servers, in visit order
    route: List[int] = field(default_factory=list)
    segment: List[int] = field(default_factory=list)
    #: per visited segment server: (server, arrival time, local match count)
    segment_hits: List[Tuple[int, float, int]] = field(default_factory=list)
    latency: float = 0.0
    query_bytes: int = 0
    query_messages: int = 0
    matched_rows: Optional[np.ndarray] = None

    @property
    def servers_contacted(self) -> int:
        return len(set(self.route) | set(self.segment))

    @property
    def total_matches(self) -> int:
        return sum(c for _, _, c in self.segment_hits)


class SwordSystem:
    """A simulated SWORD federation over the same workload as ROADS."""

    def __init__(
        self,
        config: SwordConfig,
        stores: Sequence[RecordStore],
    ):
        n = config.num_nodes
        if len(stores) != n:
            raise ValueError(
                f"config.num_nodes={n} but {len(stores)} stores supplied"
            )
        self.config = config
        self.schema = stores[0].schema
        self.attributes = [a.name for a in self.schema.numeric_attributes]
        r = len(self.attributes)
        seeds = SeedSequenceFactory(config.seed)
        self.delay_space = DelaySpace(
            n,
            seeds.generator("delay-space"),
            scale_ms=config.delay_scale_ms,
            base_ms=config.delay_base_ms,
            jitter_ms=config.delay_jitter_ms,
        )
        self.hash = LocalityHash(n, r)
        self.router = ChordRouter(n)

        # Global record matrix: one row per record across the federation.
        mats = [np.asarray(s.numeric_matrix, dtype=np.float64) for s in stores]
        self.matrix = np.concatenate(mats, axis=0)
        self.owner_of_row = np.concatenate(
            [np.full(len(s), i, dtype=np.int64) for i, s in enumerate(stores)]
        )
        self.record_size_bytes = self.schema.record_size_bytes + _RECORD_HEADER_BYTES

        # Registration: ring j's responsible server per row.
        self._dest: Dict[int, np.ndarray] = {}
        self._rows_by_server: Dict[int, np.ndarray] = {}
        for j in range(r):
            col = self.matrix[:, self._column(j)]
            self._dest[j] = self.hash.responsible(j, col)
        for server in range(n):
            j = self.hash.ring_of_server(server)
            self._rows_by_server[server] = np.flatnonzero(
                self._dest[j] == server
            )

    def _column(self, ring: int) -> int:
        """Matrix column index for the ring's attribute."""
        return self.schema.numeric_position(self.attributes[ring])

    def _ring_of_attribute(self, name: str) -> int:
        try:
            return self.attributes.index(name)
        except ValueError:
            raise KeyError(f"no ring for attribute {name!r}") from None

    # -- storage / registration overhead ------------------------------------------
    def rows_stored_at(self, server: int) -> np.ndarray:
        """Row indices of records stored at *server* (its ring only)."""
        return self._rows_by_server[server]

    def storage_bytes_by_server(self) -> Dict[int, int]:
        return {
            s: len(rows) * self.record_size_bytes
            for s, rows in self._rows_by_server.items()
        }

    def registration_bytes_per_epoch(self) -> int:
        """Bytes to (re-)register every record in every ring once.

        Each replica travels its full O(log n) finger path, re-transmitted
        at every hop — the SWORD update-overhead model of equation (2).
        """
        total_hops = 0
        for j in range(len(self.attributes)):
            dist = (self._dest[j] - self.owner_of_row) % self.config.num_nodes
            total_hops += int(popcount(dist).sum())
        return total_hops * self.record_size_bytes

    def update_overhead(self, window_seconds: float) -> int:
        """Total update bytes over *window_seconds* (records refresh every t_r)."""
        epochs = max(1, int(round(window_seconds / self.config.record_interval)))
        return self.registration_bytes_per_epoch() * epochs

    # -- query execution ----------------------------------------------------------
    def _choose_ring(self, query: Query) -> RangePredicate:
        ranges = query.range_predicates()
        if not ranges:
            raise ValueError(
                "SWORD resolves queries in an attribute ring; the query "
                "needs at least one range predicate"
            )
        if self.config.ring_strategy == "narrowest":
            return min(ranges, key=lambda p: p.length)
        return ranges[0]

    def _hop_latency(self, a: int, b: int) -> float:
        return self.delay_space.latency(a, b) + _PROCESSING_DELAY

    def execute_query(
        self,
        query: Query,
        client_node: int,
        *,
        collect_rows: bool = False,
    ) -> SwordQueryOutcome:
        """Route and resolve one query; purely sequential, so latencies
        accumulate along the single forwarding chain."""
        pred = self._choose_ring(query)
        ring = self._ring_of_attribute(pred.attribute)
        segment = [int(s) for s in self.hash.segment(ring, pred.lo, pred.hi)]
        outcome = SwordQueryOutcome(
            query=query,
            client_node=client_node,
            ring_attribute=pred.attribute,
            segment=segment,
        )
        # Finger-route from the client's node to the segment head.
        t = 0.0
        current = client_node
        for nxt in self.router.path(client_node, segment[0]):
            t += self._hop_latency(current, nxt)
            outcome.query_bytes += query.size_bytes
            outcome.query_messages += 1
            outcome.route.append(nxt)
            current = nxt
        if current != segment[0]:  # client hosts the segment head itself
            outcome.route.append(segment[0])
        # Walk the segment sequentially; each server filters locally.
        matched: List[np.ndarray] = []
        for server in segment:
            if server != current:
                t += self._hop_latency(current, server)
                outcome.query_bytes += query.size_bytes
                outcome.query_messages += 1
                current = server
            rows = self._rows_by_server[server]
            count, row_ids = self._local_matches(query, rows, collect_rows)
            outcome.segment_hits.append((server, t, count))
            if collect_rows and row_ids is not None:
                matched.append(row_ids)
            # Local scan blocks the sequential forwarding chain.
            t += rows.size * self.config.search_seconds_per_record
        # Latency is measured until the query *reaches* the last server;
        # that server's own scan is not part of it.
        outcome.latency = outcome.segment_hits[-1][1] if outcome.segment_hits else t
        if collect_rows:
            outcome.matched_rows = (
                np.concatenate(matched) if matched else np.empty(0, dtype=np.int64)
            )
        return outcome

    def _local_matches(
        self, query: Query, rows: np.ndarray, collect: bool
    ) -> Tuple[int, Optional[np.ndarray]]:
        if rows.size == 0:
            return 0, (np.empty(0, dtype=np.int64) if collect else None)
        mask = np.ones(rows.size, dtype=bool)
        for p in query.predicates:
            if not isinstance(p, RangePredicate):
                raise ValueError(
                    "this SWORD model indexes numeric attributes only"
                )
            col = self.matrix[rows, self.schema.numeric_position(p.attribute)]
            mask &= (col >= p.lo) & (col <= p.hi)
        count = int(mask.sum())
        return count, (rows[mask] if collect else None)

    def execute_queries(
        self, queries: Sequence[Query], client_nodes: Sequence[int]
    ) -> List[SwordQueryOutcome]:
        return [
            self.execute_query(q, int(c)) for q, c in zip(queries, client_nodes)
        ]
