"""Attribute model for resource records.

A resource in ROADS is described by attribute/value pairs, e.g.::

    {type=camera, encoding=MPEG2, rate=100Kbps, resolution=640x480}

Attributes are typed: numeric attributes (float or int) support range
predicates and are summarized with histograms, while categorical attributes
(including free strings, which the paper treats as enumerable values)
support equality predicates and are summarized with value sets or Bloom
filters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple


class AttributeType(enum.Enum):
    """The wire/search type of an attribute."""

    FLOAT = "float"
    INT = "int"
    CATEGORICAL = "categorical"
    STRING = "string"

    @property
    def is_numeric(self) -> bool:
        return self in (AttributeType.FLOAT, AttributeType.INT)

    @property
    def is_categorical(self) -> bool:
        return self in (AttributeType.CATEGORICAL, AttributeType.STRING)


@dataclass(frozen=True)
class AttributeSpec:
    """Declaration of one searchable attribute.

    Parameters
    ----------
    name:
        Attribute name, unique within a schema.
    type:
        The :class:`AttributeType`.
    bounds:
        For numeric attributes, the closed value domain ``(lo, hi)``.
        The paper's analysis normalizes numeric attributes to the unit
        range; generated workloads follow that convention but the library
        accepts arbitrary finite bounds.
    categories:
        For categorical attributes, the (optional) known universe of
        values. When provided, values are validated against it.
    size_bytes:
        Wire size of one value of this attribute. The paper's analysis
        assigns each attribute value a size of 1 unit; the simulator
        accounts overhead in bytes, so this defaults to 8 (a double /
        pointer-sized token).
    """

    name: str
    type: AttributeType = AttributeType.FLOAT
    bounds: Tuple[float, float] = (0.0, 1.0)
    categories: Optional[Tuple[str, ...]] = None
    size_bytes: int = 8

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")
        lo, hi = self.bounds
        if not (lo < hi):
            raise ValueError(
                f"attribute {self.name!r}: bounds must satisfy lo < hi, got {self.bounds}"
            )
        if self.size_bytes <= 0:
            raise ValueError(f"attribute {self.name!r}: size_bytes must be positive")
        if self.categories is not None and self.type.is_numeric:
            raise ValueError(
                f"attribute {self.name!r}: numeric attributes cannot declare categories"
            )

    @property
    def is_numeric(self) -> bool:
        return self.type.is_numeric

    @property
    def is_categorical(self) -> bool:
        return self.type.is_categorical

    def validate_value(self, value) -> None:
        """Raise ``ValueError`` if *value* is not admissible for this attribute."""
        if self.is_numeric:
            try:
                v = float(value)
            except (TypeError, ValueError):
                raise ValueError(
                    f"attribute {self.name!r}: expected numeric value, got {value!r}"
                ) from None
            lo, hi = self.bounds
            if not (lo <= v <= hi):
                raise ValueError(
                    f"attribute {self.name!r}: value {v} outside bounds [{lo}, {hi}]"
                )
        else:
            if not isinstance(value, str):
                raise ValueError(
                    f"attribute {self.name!r}: expected string value, got {value!r}"
                )
            if self.categories is not None and value not in self.categories:
                raise ValueError(
                    f"attribute {self.name!r}: value {value!r} not in declared categories"
                )


def numeric(name: str, lo: float = 0.0, hi: float = 1.0, *, size_bytes: int = 8) -> AttributeSpec:
    """Convenience constructor for a float attribute with bounds."""
    return AttributeSpec(name=name, type=AttributeType.FLOAT, bounds=(lo, hi), size_bytes=size_bytes)


def integer(name: str, lo: float, hi: float, *, size_bytes: int = 8) -> AttributeSpec:
    """Convenience constructor for an int attribute with bounds."""
    return AttributeSpec(name=name, type=AttributeType.INT, bounds=(lo, hi), size_bytes=size_bytes)


def categorical(name: str, categories: Sequence[str] = (), *, size_bytes: int = 8) -> AttributeSpec:
    """Convenience constructor for a categorical attribute.

    An empty *categories* sequence leaves the universe open.
    """
    cats: Optional[Tuple[str, ...]] = tuple(categories) if categories else None
    return AttributeSpec(
        name=name, type=AttributeType.CATEGORICAL, categories=cats, size_bytes=size_bytes
    )
