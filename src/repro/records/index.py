"""Sorted-column indexes for record stores.

The paper's prototype attaches a DB2 database to every server; real
backends answer range predicates from indexes rather than scans. A
:class:`SortedIndex` keeps one argsort per numeric column and answers
``lo <= x <= hi`` with two binary searches, returning either a count
(O(log n)) or the matching row ids (O(log n + k)).

:class:`IndexedStore` wraps a :class:`~repro.records.store.RecordStore`
with indexes over all (or selected) numeric attributes and evaluates
conjunctive queries index-first: the most selective indexed predicate
supplies the candidate rows, the remaining predicates filter them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..query.predicate import EqualsPredicate, RangePredicate
from ..query.query import Query
from .store import RecordStore


class SortedIndex:
    """Binary-search index over one numeric column."""

    def __init__(self, values: np.ndarray):
        values = np.asarray(values, dtype=np.float64)
        self._order = np.argsort(values, kind="stable")
        self._sorted = values[self._order]

    def __len__(self) -> int:
        return int(self._sorted.shape[0])

    def count_range(self, lo: float, hi: float) -> int:
        """How many values lie in [lo, hi] — two binary searches."""
        left = int(np.searchsorted(self._sorted, lo, side="left"))
        right = int(np.searchsorted(self._sorted, hi, side="right"))
        return max(0, right - left)

    def rows_in_range(self, lo: float, hi: float) -> np.ndarray:
        """Row ids (original order) of values in [lo, hi]."""
        left = int(np.searchsorted(self._sorted, lo, side="left"))
        right = int(np.searchsorted(self._sorted, hi, side="right"))
        return self._order[left:right]

    def min_value(self) -> float:
        return float(self._sorted[0]) if len(self) else np.nan

    def max_value(self) -> float:
        return float(self._sorted[-1]) if len(self) else np.nan


class IndexedStore:
    """A record store with sorted indexes over its numeric attributes.

    Indexes are built eagerly; call :meth:`rebuild` after mutating the
    underlying store (dynamic records invalidate them).
    """

    def __init__(
        self,
        store: RecordStore,
        attributes: Optional[Sequence[str]] = None,
    ):
        self.store = store
        names = (
            list(attributes)
            if attributes is not None
            else [a.name for a in store.schema.numeric_attributes]
        )
        for name in names:
            if not store.schema[name].is_numeric:
                raise ValueError(f"cannot index categorical attribute {name!r}")
        self._indexed_names = names
        self._indexes: Dict[str, SortedIndex] = {}
        self.rebuild()

    def rebuild(self) -> None:
        """Re-derive every index from the current store contents."""
        self._indexes = {
            name: SortedIndex(self.store.numeric_column(name))
            for name in self._indexed_names
        }

    def index_for(self, name: str) -> SortedIndex:
        try:
            return self._indexes[name]
        except KeyError:
            raise KeyError(f"attribute {name!r} is not indexed") from None

    @property
    def indexed_attributes(self) -> List[str]:
        return list(self._indexed_names)

    # -- query evaluation ----------------------------------------------------------
    def _split(self, query: Query) -> Tuple[List[RangePredicate], list]:
        indexed, rest = [], []
        for p in query.predicates:
            if isinstance(p, RangePredicate) and p.attribute in self._indexes:
                indexed.append(p)
            else:
                rest.append(p)
        return indexed, rest

    def candidate_rows(self, query: Query) -> Optional[np.ndarray]:
        """Rows surviving the most selective indexed predicate.

        ``None`` when no predicate is indexed (falls back to a scan).
        """
        indexed, _ = self._split(query)
        if not indexed:
            return None
        best = min(
            indexed,
            key=lambda p: self._indexes[p.attribute].count_range(p.lo, p.hi),
        )
        return self._indexes[best.attribute].rows_in_range(best.lo, best.hi)

    def match_rows(self, query: Query) -> np.ndarray:
        """Exact matching row ids, index-first then filtered."""
        rows = self.candidate_rows(query)
        if rows is None:
            return np.flatnonzero(query.mask(self.store))
        if rows.size == 0:
            return rows
        mask = np.ones(rows.size, dtype=bool)
        matrix = self.store.numeric_matrix
        for p in query.predicates:
            if isinstance(p, RangePredicate):
                col = matrix[rows, self.store.schema.numeric_position(p.attribute)]
                mask &= (col >= p.lo) & (col <= p.hi)
            else:
                assert isinstance(p, EqualsPredicate)
                codes = self.store.categorical_codes(p.attribute)[rows]
                vocab = dict(
                    (v, i) for i, v in enumerate(self.store.vocabulary(p.attribute))
                )
                code = vocab.get(p.value, -1)
                mask &= codes == code
        return rows[mask]

    def match_count(self, query: Query) -> int:
        return int(self.match_rows(query).size)

    def estimated_count(self, query: Query) -> int:
        """Cheap upper bound: min over indexed dims of the range count."""
        indexed, _ = self._split(query)
        if not indexed:
            return len(self.store)
        return min(
            self._indexes[p.attribute].count_range(p.lo, p.hi)
            for p in indexed
        )
