"""Vectorized record storage.

A :class:`RecordStore` holds a set of records under one schema, with the
numeric partition in a single ``float64`` matrix and each categorical
partition as an integer code column plus a vocabulary. All matching is
vectorized; the evaluation-scale stores (hundreds of thousands of records,
Section V prototype) are searched without Python-level loops, per the
scientific-Python optimization guidance.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .record import ResourceRecord, Value
from .schema import Schema


class RecordStore:
    """A columnar, appendable collection of resource records."""

    def __init__(self, schema: Schema, owner: Optional[str] = None):
        self._schema = schema
        self._owner = owner
        n_num = len(schema.numeric_attributes)
        n_cat = len(schema.categorical_attributes)
        self._numeric = np.empty((0, n_num), dtype=np.float64)
        self._cat_codes = np.empty((0, n_cat), dtype=np.int32)
        # Per categorical column: value -> code and code -> value tables.
        self._vocab: List[Dict[str, int]] = [dict() for _ in range(n_cat)]
        self._rvocab: List[List[str]] = [[] for _ in range(n_cat)]

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        schema: Schema,
        records: Iterable[ResourceRecord],
        owner: Optional[str] = None,
    ) -> "RecordStore":
        store = cls(schema, owner=owner)
        store.extend(records)
        return store

    @classmethod
    def from_arrays(
        cls,
        schema: Schema,
        numeric: np.ndarray,
        categorical: Optional[Sequence[Sequence[str]]] = None,
        owner: Optional[str] = None,
    ) -> "RecordStore":
        """Bulk-build a store from column data.

        Parameters
        ----------
        numeric:
            Array of shape ``(n_records, n_numeric_attributes)`` with columns
            ordered as ``schema.numeric_attributes``.
        categorical:
            One string sequence per categorical attribute (ordered as
            ``schema.categorical_attributes``), each of length ``n_records``.
        """
        store = cls(schema, owner=owner)
        numeric = np.asarray(numeric, dtype=np.float64)
        if numeric.ndim != 2 or numeric.shape[1] != len(schema.numeric_attributes):
            raise ValueError(
                f"numeric must have shape (n, {len(schema.numeric_attributes)}), "
                f"got {numeric.shape}"
            )
        n = numeric.shape[0]
        n_cat = len(schema.categorical_attributes)
        cats = list(categorical) if categorical is not None else []
        if len(cats) != n_cat:
            raise ValueError(f"expected {n_cat} categorical columns, got {len(cats)}")
        codes = np.empty((n, n_cat), dtype=np.int32)
        for j, col in enumerate(cats):
            if len(col) != n:
                raise ValueError(
                    f"categorical column {j} has length {len(col)}, expected {n}"
                )
            codes[:, j] = store._encode_column(j, col)
        store._numeric = numeric.copy()
        store._cat_codes = codes
        return store

    def _encode_column(self, j: int, values: Sequence[str]) -> np.ndarray:
        vocab = self._vocab[j]
        rvocab = self._rvocab[j]
        out = np.empty(len(values), dtype=np.int32)
        for i, v in enumerate(values):
            code = vocab.get(v)
            if code is None:
                code = len(rvocab)
                vocab[v] = code
                rvocab.append(v)
            out[i] = code
        return out

    # -- mutation ----------------------------------------------------------------
    def append(self, record: ResourceRecord) -> None:
        if record.schema != self._schema:
            raise ValueError("record schema does not match store schema")
        self.extend([record])

    def extend(self, records: Iterable[ResourceRecord]) -> None:
        recs = list(records)
        if not recs:
            return
        num_rows = np.empty(
            (len(recs), len(self._schema.numeric_attributes)), dtype=np.float64
        )
        cat_rows = np.empty(
            (len(recs), len(self._schema.categorical_attributes)), dtype=np.int32
        )
        num_specs = self._schema.numeric_attributes
        cat_specs = self._schema.categorical_attributes
        for i, rec in enumerate(recs):
            if rec.schema != self._schema:
                raise ValueError("record schema does not match store schema")
            for j, spec in enumerate(num_specs):
                num_rows[i, j] = rec[spec.name]
            for j, spec in enumerate(cat_specs):
                cat_rows[i, j] = self._encode_column(j, [rec[spec.name]])[0]
        self._numeric = np.concatenate([self._numeric, num_rows], axis=0)
        self._cat_codes = np.concatenate([self._cat_codes, cat_rows], axis=0)

    def update_numeric(self, row: int, name: str, value: float) -> None:
        """In-place update of one numeric value (dynamic resources)."""
        spec = self._schema[name]
        spec.validate_value(value)
        self._numeric[row, self._schema.numeric_position(name)] = float(value)

    def clear(self) -> None:
        self._numeric = self._numeric[:0]
        self._cat_codes = self._cat_codes[:0]

    # -- inspection ----------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def owner(self) -> Optional[str]:
        return self._owner

    def __len__(self) -> int:
        return self._numeric.shape[0]

    @property
    def size_bytes(self) -> int:
        """Wire size of all stored records."""
        return len(self) * self._schema.record_size_bytes

    @property
    def numeric_matrix(self) -> np.ndarray:
        """The numeric partition, shape ``(n_records, n_numeric)``.

        Columns are ordered as ``schema.numeric_attributes``. Treat as
        read-only; use :meth:`update_numeric` for mutation.
        """
        return self._numeric

    def numeric_column(self, name: str) -> np.ndarray:
        """Read-only view of one numeric attribute's values."""
        col = self._numeric[:, self._schema.numeric_position(name)]
        col.flags.writeable = False if col.base is None else col.flags.writeable
        return col

    def categorical_column(self, name: str) -> List[str]:
        """Decoded values of one categorical attribute."""
        j = self._schema.categorical_position(name)
        rvocab = self._rvocab[j]
        return [rvocab[c] for c in self._cat_codes[:, j]]

    def categorical_codes(self, name: str) -> np.ndarray:
        return self._cat_codes[:, self._schema.categorical_position(name)]

    def vocabulary(self, name: str) -> Tuple[str, ...]:
        """Distinct values seen for one categorical attribute."""
        return tuple(self._rvocab[self._schema.categorical_position(name)])

    def record_at(self, row: int) -> ResourceRecord:
        values: Dict[str, Value] = {}
        for spec in self._schema.numeric_attributes:
            values[spec.name] = float(
                self._numeric[row, self._schema.numeric_position(spec.name)]
            )
        for spec in self._schema.categorical_attributes:
            j = self._schema.categorical_position(spec.name)
            values[spec.name] = self._rvocab[j][self._cat_codes[row, j]]
        return ResourceRecord(self._schema, values, owner=self._owner)

    def iter_records(self) -> Iterator[ResourceRecord]:
        for i in range(len(self)):
            yield self.record_at(i)

    # -- vectorized matching ---------------------------------------------------
    def mask_range(self, name: str, lo: float, hi: float) -> np.ndarray:
        """Boolean mask of rows whose *name* value lies in ``[lo, hi]``."""
        col = self._numeric[:, self._schema.numeric_position(name)]
        return (col >= lo) & (col <= hi)

    def mask_equals(self, name: str, value: str) -> np.ndarray:
        """Boolean mask of rows whose categorical *name* equals *value*."""
        j = self._schema.categorical_position(name)
        code = self._vocab[j].get(value)
        if code is None:
            return np.zeros(len(self), dtype=bool)
        return self._cat_codes[:, j] == code

    def select(self, mask: np.ndarray) -> "RecordStore":
        """New store containing only rows where *mask* is true."""
        out = RecordStore(self._schema, owner=self._owner)
        out._numeric = self._numeric[mask]
        out._cat_codes = self._cat_codes[mask]
        out._vocab = [dict(v) for v in self._vocab]
        out._rvocab = [list(v) for v in self._rvocab]
        return out

    def merged_with(self, other: "RecordStore") -> "RecordStore":
        """New store with the union of both stores' records."""
        if other._schema != self._schema:
            raise ValueError("cannot merge stores with different schemas")
        out = RecordStore(self._schema, owner=self._owner)
        out._numeric = np.concatenate([self._numeric, other._numeric], axis=0)
        out._vocab = [dict(v) for v in self._vocab]
        out._rvocab = [list(v) for v in self._rvocab]
        # Re-encode other's categorical codes into this store's vocabularies.
        n_cat = len(self._schema.categorical_attributes)
        recoded = np.empty_like(other._cat_codes)
        for j in range(n_cat):
            col = [other._rvocab[j][c] for c in other._cat_codes[:, j]]
            vocab = out._vocab[j]
            rvocab = out._rvocab[j]
            for i, v in enumerate(col):
                code = vocab.get(v)
                if code is None:
                    code = len(rvocab)
                    vocab[v] = code
                    rvocab.append(v)
                recoded[i, j] = code
        out._cat_codes = np.concatenate([self._cat_codes, recoded], axis=0)
        return out
