"""Single resource records.

:class:`ResourceRecord` is the user-facing, dict-like representation of one
resource. Bulk storage and matching use :class:`~repro.records.store.RecordStore`,
which keeps columns in NumPy arrays; records are converted at the edges.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Union

from .schema import Schema

Value = Union[float, int, str]


class ResourceRecord(Mapping):
    """One resource described by attribute/value pairs under a schema.

    Behaves as an immutable mapping from attribute name to value. Values
    are validated against the schema at construction time.
    """

    __slots__ = ("_schema", "_values", "_owner")

    def __init__(
        self,
        schema: Schema,
        values: Mapping[str, Value],
        owner: Optional[str] = None,
    ):
        missing = [a.name for a in schema if a.name not in values]
        if missing:
            raise ValueError(f"record missing attributes: {missing}")
        extra = [k for k in values if k not in schema]
        if extra:
            raise ValueError(f"record has attributes not in schema: {extra}")
        normalized: Dict[str, Value] = {}
        for spec in schema:
            v = values[spec.name]
            spec.validate_value(v)
            if spec.is_numeric:
                v = float(v)
            normalized[spec.name] = v
        self._schema = schema
        self._values = normalized
        self._owner = owner

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def owner(self) -> Optional[str]:
        """Identifier of the resource owner that published this record."""
        return self._owner

    def __getitem__(self, name: str) -> Value:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ResourceRecord)
            and self._schema == other._schema
            and self._values == other._values
        )

    def __hash__(self) -> int:
        return hash((self._schema, tuple(sorted(self._values.items()))))

    def __repr__(self) -> str:
        pairs = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        return f"ResourceRecord({pairs})"

    @property
    def size_bytes(self) -> int:
        """Wire size of this record."""
        return self._schema.record_size_bytes

    def with_owner(self, owner: str) -> "ResourceRecord":
        """Return a copy tagged with *owner*."""
        return ResourceRecord(self._schema, self._values, owner=owner)
