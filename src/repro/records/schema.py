"""Record schemas.

The paper assumes all federation participants agree on a common schema
(schema mapping is out of scope, Section II). A :class:`Schema` is an
ordered collection of :class:`~repro.records.attribute.AttributeSpec`,
split into numeric and categorical partitions so record blocks can store
each partition in a contiguous NumPy array.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from .attribute import AttributeSpec, AttributeType, categorical, numeric


class Schema:
    """An ordered, immutable set of attribute declarations."""

    def __init__(self, attributes: Iterable[AttributeSpec]):
        attrs = tuple(attributes)
        if not attrs:
            raise ValueError("schema must declare at least one attribute")
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate attribute names in schema: {dupes}")
        self._attributes: Tuple[AttributeSpec, ...] = attrs
        self._by_name: Dict[str, AttributeSpec] = {a.name: a for a in attrs}
        self._numeric: Tuple[AttributeSpec, ...] = tuple(a for a in attrs if a.is_numeric)
        self._categorical: Tuple[AttributeSpec, ...] = tuple(
            a for a in attrs if a.is_categorical
        )
        self._numeric_index: Dict[str, int] = {
            a.name: i for i, a in enumerate(self._numeric)
        }
        self._categorical_index: Dict[str, int] = {
            a.name: i for i, a in enumerate(self._categorical)
        }

    # -- basic container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[AttributeSpec]:
        return iter(self._attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> AttributeSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"schema has no attribute {name!r}") from None

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        return f"Schema({[a.name for a in self._attributes]})"

    # -- partitions ---------------------------------------------------------------
    @property
    def attributes(self) -> Tuple[AttributeSpec, ...]:
        return self._attributes

    @property
    def names(self) -> List[str]:
        return [a.name for a in self._attributes]

    @property
    def numeric_attributes(self) -> Tuple[AttributeSpec, ...]:
        return self._numeric

    @property
    def categorical_attributes(self) -> Tuple[AttributeSpec, ...]:
        return self._categorical

    def numeric_position(self, name: str) -> int:
        """Column index of *name* within the numeric partition."""
        spec = self[name]
        if not spec.is_numeric:
            raise ValueError(f"attribute {name!r} is not numeric")
        return self._numeric_index[name]

    def categorical_position(self, name: str) -> int:
        """Column index of *name* within the categorical partition."""
        spec = self[name]
        if not spec.is_categorical:
            raise ValueError(f"attribute {name!r} is not categorical")
        return self._categorical_index[name]

    # -- sizing -------------------------------------------------------------------
    @property
    def record_size_bytes(self) -> int:
        """Wire size of one full record under this schema."""
        return sum(a.size_bytes for a in self._attributes)

    # -- constructors -------------------------------------------------------------
    @staticmethod
    def uniform_numeric(count: int, prefix: str = "attr") -> "Schema":
        """A schema of *count* unit-range float attributes.

        This matches the analysis model of Section IV, where every record
        has ``r`` numeric attributes on the unit range.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        return Schema(numeric(f"{prefix}{i}") for i in range(count))


def stream_processing_schema() -> Schema:
    """A System-S-flavoured example schema (cameras / codecs / rates).

    Mirrors the paper's motivating example of federated stream-processing
    sites sharing sensor data sources.
    """
    return Schema(
        [
            categorical("type", ("camera", "microphone", "gps", "temperature")),
            categorical("encoding", ("MPEG2", "MPEG4", "H264", "PCM", "JSON")),
            numeric("rate_kbps", 0.0, 10_000.0),
            numeric("resolution_x", 0.0, 4096.0),
            numeric("resolution_y", 0.0, 2160.0),
            numeric("uptime", 0.0, 1.0),
            numeric("cost", 0.0, 100.0),
        ]
    )


def prototype_record_schema(numeric_per_kind: int = 36) -> Schema:
    """A 120-attribute mixed schema like the paper's prototype records.

    Section V: the testbed stored records with "120 attributes, including
    integer, double, timestamp, string, categorical types". This builds
    ``3 * numeric_per_kind`` numeric attributes (integers, doubles, and
    timestamps — timestamps are seconds-since-epoch doubles) plus twelve
    categorical/string attributes, totalling 120 at the default width.
    """
    if numeric_per_kind < 1:
        raise ValueError("numeric_per_kind must be >= 1")
    attrs = []
    for i in range(numeric_per_kind):
        attrs.append(AttributeSpec(f"int{i}", AttributeType.INT, (0.0, 1e6)))
    for i in range(numeric_per_kind):
        attrs.append(numeric(f"dbl{i}", 0.0, 1.0))
    for i in range(numeric_per_kind):
        # timestamps within a two-year window
        attrs.append(numeric(f"ts{i}", 1.1e9, 1.17e9))
    for i in range(6):
        attrs.append(
            categorical(f"cat{i}", tuple(f"c{i}v{j}" for j in range(8)))
        )
    for i in range(6):
        attrs.append(AttributeSpec(f"str{i}", AttributeType.STRING))
    return Schema(attrs)


def compute_resource_schema() -> Schema:
    """A grid/compute-marketplace example schema (CPUs, memory, storage)."""
    return Schema(
        [
            categorical("arch", ("x86_64", "ppc64", "arm64")),
            categorical("os", ("linux", "aix", "solaris")),
            numeric("cpus", 1.0, 512.0),
            numeric("clock_ghz", 0.5, 5.0),
            numeric("memory_gb", 0.25, 4096.0),
            numeric("disk_gb", 1.0, 1_000_000.0),
            numeric("load", 0.0, 1.0),
            numeric("net_mbps", 1.0, 100_000.0),
        ]
    )
