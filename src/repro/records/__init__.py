"""Resource record model: attributes, schemas, records, columnar stores."""

from .index import IndexedStore, SortedIndex
from .attribute import AttributeSpec, AttributeType, categorical, integer, numeric
from .record import ResourceRecord
from .schema import (
    Schema,
    compute_resource_schema,
    prototype_record_schema,
    stream_processing_schema,
)
from .store import RecordStore

__all__ = [
    "AttributeSpec",
    "AttributeType",
    "categorical",
    "integer",
    "numeric",
    "ResourceRecord",
    "Schema",
    "RecordStore",
    "IndexedStore",
    "SortedIndex",
    "stream_processing_schema",
    "compute_resource_schema",
    "prototype_record_schema",
]
