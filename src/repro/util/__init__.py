"""Shared utilities."""

from .validation import (
    require_in_unit_interval,
    require_permutation,
    require_positive,
)

__all__ = [
    "require_positive",
    "require_in_unit_interval",
    "require_permutation",
]
