"""Small shared validation helpers."""

from __future__ import annotations

from typing import Sequence


def require_positive(name: str, value) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def require_in_unit_interval(name: str, value: float) -> None:
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value}")


def require_permutation(name: str, values: Sequence[int], n: int) -> None:
    if sorted(values) != list(range(n)):
        raise ValueError(f"{name} must be a permutation of 0..{n - 1}")
