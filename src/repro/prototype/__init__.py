"""Prototype benchmarking substrate (Figure 11's testbed, simulated)."""

from .backend import BackendCostModel, RecordBackend, SearchResult
from .response import (
    CentralResponder,
    ResponseOutcome,
    RoadsResponder,
    SwordResponder,
    summarize_responses,
)

__all__ = [
    "BackendCostModel",
    "RecordBackend",
    "SearchResult",
    "RoadsResponder",
    "CentralResponder",
    "SwordResponder",
    "ResponseOutcome",
    "summarize_responses",
]
