"""Total response time measurement (prototype benchmark, Figure 11).

Response time = time from the client sending a query until it has
received **all** matching records. For ROADS the query fans out through
the hierarchy/overlay; each owner with matching data searches its backend
and streams results back — owners work in parallel, so the client's
response time is the maximum over owners of

    (query arrival at owner) + (search + retrieval at owner)
    + (owner -> client latency) + (result transfer time).

The central repository answers in one round trip, but a single machine
searches the whole federation's records and serializes all retrieval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..central.system import CentralSystem
from ..query.query import Query
from ..roads.search import SearchRequest
from ..roads.system import RoadsSystem
from ..sword.system import SwordSystem
from .backend import BackendCostModel, RecordBackend


@dataclass
class ResponseOutcome:
    """Total response time of one query under one design."""

    query: Query
    response_seconds: float
    forwarding_seconds: float
    server_seconds: float  # max (ROADS) / total (central) backend time
    match_count: int


class RoadsResponder:
    """Measures ROADS total response time using per-owner backends."""

    def __init__(
        self,
        system: RoadsSystem,
        cost_model: Optional[BackendCostModel] = None,
    ):
        self.system = system
        self.cost_model = cost_model if cost_model is not None else BackendCostModel()
        self._backends: Dict[str, RecordBackend] = {}
        for server in system.hierarchy:
            for owner in server.owners:
                self._backends[owner.owner_id] = RecordBackend(
                    owner.origin, self.cost_model
                )

    def respond(self, query: Query, client_node: Optional[int] = None) -> ResponseOutcome:
        outcome = self.system.search(
            SearchRequest(query, client_node=client_node)
        ).outcome
        client = outcome.client_node
        completion = 0.0
        worst_server = 0.0
        matches = 0
        for hit in outcome.owner_hits:
            backend = self._backends[hit.owner_id]
            result = backend.search(query)
            matches += result.match_count
            return_latency = self.system.network.latency(hit.server_id, client)
            done = (
                (hit.arrival_time - outcome.started_at)
                + result.server_seconds
                + return_latency
                + self.cost_model.transfer_seconds(result.result_bytes)
            )
            completion = max(completion, done)
            worst_server = max(worst_server, result.server_seconds)
        # Even a no-match query costs its forwarding time.
        completion = max(completion, outcome.latency)
        return ResponseOutcome(
            query=query,
            response_seconds=completion,
            forwarding_seconds=outcome.latency,
            server_seconds=worst_server,
            match_count=matches,
        )


class CentralResponder:
    """Measures central-repository total response time."""

    def __init__(
        self,
        system: CentralSystem,
        cost_model: Optional[BackendCostModel] = None,
    ):
        self.system = system
        self.cost_model = cost_model if cost_model is not None else BackendCostModel()
        self._backend = RecordBackend(system.store, self.cost_model)

    def respond(self, query: Query, client_node: int) -> ResponseOutcome:
        outcome = self.system.execute_query(query, client_node)
        result = self._backend.search(query)
        response = (
            outcome.round_trip
            + result.server_seconds
            + self.cost_model.transfer_seconds(result.result_bytes)
        )
        return ResponseOutcome(
            query=query,
            response_seconds=response,
            forwarding_seconds=outcome.round_trip,
            server_seconds=result.server_seconds,
            match_count=result.match_count,
        )


class SwordResponder:
    """Measures SWORD total response time (not in the paper's Figure 11,
    provided for three-way comparisons).

    The segment is walked sequentially, but each segment server can
    stream its matching records back to the client as soon as it has
    searched — so the response completes at the *latest* of
    (arrival + search + retrieval + return) over the segment.
    """

    def __init__(
        self,
        system: SwordSystem,
        cost_model: Optional[BackendCostModel] = None,
    ):
        self.system = system
        self.cost_model = cost_model if cost_model is not None else BackendCostModel()
        self.record_bytes = system.schema.record_size_bytes

    def respond(self, query: Query, client_node: int) -> ResponseOutcome:
        outcome = self.system.execute_query(query, client_node)
        completion = outcome.latency
        worst_server = 0.0
        matches = 0
        for server, arrival, count in outcome.segment_hits:
            matches += count
            server_seconds = self.cost_model.retrieval_seconds(count)
            return_latency = self.system.delay_space.latency(server, client_node)
            done = (
                arrival
                + server_seconds
                + return_latency
                + self.cost_model.transfer_seconds(count * self.record_bytes)
            )
            completion = max(completion, done)
            worst_server = max(worst_server, server_seconds)
        return ResponseOutcome(
            query=query,
            response_seconds=completion,
            forwarding_seconds=outcome.latency,
            server_seconds=worst_server,
            match_count=matches,
        )


def summarize_responses(
    outcomes: Sequence[ResponseOutcome],
) -> Dict[str, float]:
    """Mean and 90th-percentile response time (the figure's two series)."""
    times = np.array([o.response_seconds for o in outcomes], dtype=float)
    return {
        "mean_seconds": float(times.mean()) if times.size else 0.0,
        "p90_seconds": float(np.percentile(times, 90)) if times.size else 0.0,
        "queries": int(times.size),
        "mean_matches": (
            float(np.mean([o.match_count for o in outcomes])) if outcomes else 0.0
        ),
    }
