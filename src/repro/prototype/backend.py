"""In-memory record backend standing in for the prototype's DB2 store.

The paper's prototype benchmark (Section V, Figure 11) measures *total
response time*: network latency plus the time servers take to search
their local record stores and return all matching records. Their testbed
attached a DB2 database to every server; we substitute an indexed
in-memory columnar store whose search cost is **actually measured** (a
real vectorized scan) and whose per-record retrieval/serialization cost
is an explicit, calibratable constant — preserving exactly the effect the
figure demonstrates: response time is dominated by record retrieval,
which ROADS parallelizes across servers while the central repository
serializes on one machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..query.query import Query
from ..records.store import RecordStore


@dataclass(frozen=True)
class BackendCostModel:
    """Calibration of the storage backend's costs.

    ``per_record_retrieval_seconds`` models fetching + serializing one
    matching record out of the backing store (the paper's JDBC/DB2 path;
    2008-era per-row ODBC/JDBC retrieval sat in the hundreds of
    microseconds). At 200 µs/record, a 3%-selectivity query over a
    160k-record federation costs ~1 s of serial retrieval at a central
    repository, matching the figure's regime.
    ``bandwidth_bytes_per_second`` models the result return channel.
    """

    per_record_retrieval_seconds: float = 200e-6
    bandwidth_bytes_per_second: float = 10e6
    fixed_overhead_seconds: float = 0.002

    def __post_init__(self) -> None:
        if self.per_record_retrieval_seconds < 0:
            raise ValueError("per_record_retrieval_seconds must be >= 0")
        if self.bandwidth_bytes_per_second <= 0:
            raise ValueError("bandwidth_bytes_per_second must be positive")
        if self.fixed_overhead_seconds < 0:
            raise ValueError("fixed_overhead_seconds must be >= 0")

    def retrieval_seconds(self, match_count: int) -> float:
        return self.fixed_overhead_seconds + match_count * self.per_record_retrieval_seconds

    def transfer_seconds(self, result_bytes: int) -> float:
        return result_bytes / self.bandwidth_bytes_per_second


@dataclass
class SearchResult:
    """One backend search: what matched and what it cost."""

    match_count: int
    search_seconds: float  # measured wall time of the scan
    retrieval_seconds: float  # modelled per-record retrieval cost
    result_bytes: int

    @property
    def server_seconds(self) -> float:
        """Total time the server is busy answering."""
        return self.search_seconds + self.retrieval_seconds


class RecordBackend:
    """A server's attached record store with measured search cost.

    Two execution modes, both timed for real:

    * ``indexed=False`` — a full vectorized scan (the baseline);
    * ``indexed=True`` — sorted-column indexes answer the most selective
      range predicate with binary search, remaining predicates filter
      the candidates (what an actual DB2-style backend would do).
    """

    def __init__(
        self,
        store: RecordStore,
        cost_model: Optional[BackendCostModel] = None,
        *,
        indexed: bool = False,
    ):
        self.store = store
        self.cost_model = cost_model if cost_model is not None else BackendCostModel()
        self.indexed = indexed
        self._index = None
        if indexed:
            from ..records.index import IndexedStore

            self._index = IndexedStore(store)

    def __len__(self) -> int:
        return len(self.store)

    def reindex(self) -> None:
        """Rebuild indexes after the underlying records changed."""
        if self._index is not None:
            self._index.rebuild()

    def search(self, query: Query) -> SearchResult:
        """Evaluate *query*; the scan/index probe is timed for real."""
        t0 = time.perf_counter()
        if self._index is not None:
            count = self._index.match_count(query)
        else:
            count = int(query.mask(self.store).sum())
        search_seconds = time.perf_counter() - t0
        result_bytes = count * self.store.schema.record_size_bytes
        return SearchResult(
            match_count=count,
            search_seconds=search_seconds,
            retrieval_seconds=self.cost_model.retrieval_seconds(count),
            result_bytes=result_bytes,
        )
