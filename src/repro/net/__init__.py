"""Simulated wide-area network: delay space and message transport."""

from .coordinates import DELAY_SPACE_DIMENSIONS, DelaySpace
from .transport import Message, Network

__all__ = ["DelaySpace", "DELAY_SPACE_DIMENSIONS", "Network", "Message"]
