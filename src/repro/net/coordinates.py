"""Synthesized Internet delay space.

The paper simulates pairwise Internet latencies with the 5-dimensional
synthesized coordinate system of Zhang et al. [12] ("Measurement-based
analysis, modeling, and synthesis of the Internet delay space", IMC 2006).
We reproduce the same mechanism: each node is embedded at a point in a
5-D Euclidean space and the one-way delay between two nodes is an affine
function of their Euclidean distance, plus an optional deterministic
per-pair jitter. Defaults are calibrated so one-way delays average
roughly 100 ms, matching the paper's per-hop scale (its ~800 ms ROADS
query latencies over 3–5 hierarchy levels of client redirection).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: dimensionality of the synthesized coordinate space (paper ref [12])
DELAY_SPACE_DIMENSIONS = 5


class DelaySpace:
    """Euclidean coordinate embedding yielding pairwise one-way delays."""

    def __init__(
        self,
        num_nodes: int,
        rng: np.random.Generator,
        *,
        dimensions: int = DELAY_SPACE_DIMENSIONS,
        scale_ms: float = 100.0,
        base_ms: float = 10.0,
        jitter_ms: float = 5.0,
    ):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if dimensions <= 0:
            raise ValueError("dimensions must be positive")
        if scale_ms < 0 or base_ms < 0 or jitter_ms < 0:
            raise ValueError("delay parameters must be non-negative")
        self.num_nodes = int(num_nodes)
        self.dimensions = int(dimensions)
        self.scale_ms = float(scale_ms)
        self.base_ms = float(base_ms)
        self.jitter_ms = float(jitter_ms)
        self.coordinates = rng.random((self.num_nodes, self.dimensions))
        # Deterministic per-pair jitter from a symmetric random matrix.
        if jitter_ms > 0:
            raw = rng.random((self.num_nodes, self.num_nodes))
            self._jitter = (raw + raw.T) / 2.0 * jitter_ms
        else:
            self._jitter = None

    def latency_ms(self, a: int, b: int) -> float:
        """One-way delay between nodes *a* and *b* in milliseconds.

        Symmetric, zero on the diagonal, strictly positive off it.
        """
        self._check(a)
        self._check(b)
        if a == b:
            return 0.0
        dist = float(np.linalg.norm(self.coordinates[a] - self.coordinates[b]))
        jitter = float(self._jitter[a, b]) if self._jitter is not None else 0.0
        return self.base_ms + self.scale_ms * dist + jitter

    def latency(self, a: int, b: int) -> float:
        """One-way delay in seconds (the simulator's clock unit)."""
        return self.latency_ms(a, b) / 1000.0

    def _check(self, i: int) -> None:
        if not (0 <= i < self.num_nodes):
            raise IndexError(f"node index {i} out of range [0, {self.num_nodes})")

    def matrix_ms(self) -> np.ndarray:
        """Full pairwise one-way delay matrix in milliseconds."""
        diff = self.coordinates[:, None, :] - self.coordinates[None, :, :]
        dist = np.sqrt((diff * diff).sum(axis=2))
        out = self.base_ms + self.scale_ms * dist
        if self._jitter is not None:
            out = out + self._jitter
        np.fill_diagonal(out, 0.0)
        return out

    def mean_latency_ms(self) -> float:
        """Average off-diagonal one-way delay."""
        m = self.matrix_ms()
        n = self.num_nodes
        if n == 1:
            return 0.0
        return float((m.sum()) / (n * (n - 1)))

    def nearest(self, node: int, candidates) -> int:
        """The candidate with the smallest delay from *node*."""
        cands = list(candidates)
        if not cands:
            raise ValueError("candidates must be non-empty")
        lats = [self.latency_ms(node, c) for c in cands]
        return cands[int(np.argmin(lats))]
