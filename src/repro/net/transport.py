"""Message transport over the simulated network.

The :class:`Network` binds a :class:`~repro.sim.engine.Simulator`, a
:class:`~repro.net.coordinates.DelaySpace` and a
:class:`~repro.sim.metrics.MetricsCollector`. Sending a message schedules
its delivery callback after the pairwise one-way delay and accounts its
size under the given traffic category. Failed nodes silently drop inbound
messages (the sender learns of failures only via missing heartbeats, as in
the paper's maintenance protocol).

Each message is attributed to its destination server and the sender's
protocol ``phase`` in the per-server metrics registry; when a
:class:`~repro.telemetry.Telemetry` recorder is attached, sends, losses,
drops and deliveries additionally emit structured events (deliveries as
``net.transit`` spans covering the in-flight interval).

Nodes may additionally carry a :class:`ServiceConfig` — a single-server
bounded FIFO queue in front of the handler — so that offered load turns
into queueing delay and, past the queue bound, shed messages. This is
the serving plane's contention model: without it (the default), message
handling is instantaneous and concurrency is free.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional, Set, Tuple

from ..sim.engine import Simulator
from ..sim.metrics import MetricsCollector
from ..telemetry.core import Telemetry
from ..telemetry.tracing import TraceContext


#: update-plane message kinds (Sections III-B/III-D): a *full* message
#: carries an encoded summary; a *keep-alive* carries only a fingerprint
#: header that refreshes the receiver's matching soft state. They are
#: distinct on the wire so the delta-propagation saving is observable.
SUMMARY_FULL = "summary-full"
SUMMARY_KEEPALIVE = "summary-keepalive"

UPDATE_KINDS = (SUMMARY_FULL, SUMMARY_KEEPALIVE)

#: shared empty tag dict for untraced messages (never mutated)
_NO_TAGS: Dict[str, object] = {}


@dataclass(frozen=True)
class ServiceConfig:
    """Server-side service model for one node (the serving plane).

    Without a service model (the default everywhere) a delivered message
    invokes its handler instantly — infinite capacity, the historical
    behaviour. With one, the node is a single server with a bounded FIFO
    queue: each inbound message occupies the server for ``service_time``
    seconds before its handler runs, at most ``queue_limit`` further
    messages wait, and overflow is **shed** — the terminal
    ``on_dropped`` hook fires with reason ``"shed"`` and, when the
    sender asked for notification (``on_rejected``), a small reject
    notice of ``reject_bytes`` travels back so the sender can retry with
    backoff. Saturation therefore shows up exactly as the paper's root
    bottleneck predicts: queueing delay first, then shed load.
    """

    #: seconds of exclusive server time each inbound message costs
    service_time: float = 0.001
    #: messages allowed to wait behind the one in service (None = no cap)
    queue_limit: Optional[int] = None
    #: size of the reject notice returned when a message is shed
    reject_bytes: int = 16

    def __post_init__(self) -> None:
        if self.service_time <= 0:
            raise ValueError(
                f"service_time must be positive, got {self.service_time}"
            )
        if self.queue_limit is not None and self.queue_limit < 0:
            raise ValueError(
                f"queue_limit must be >= 0, got {self.queue_limit}"
            )
        if self.reject_bytes < 0:
            raise ValueError(
                f"reject_bytes must be >= 0, got {self.reject_bytes}"
            )


class _ServiceQueue:
    """Single-server FIFO queue in front of one node's message handler."""

    __slots__ = (
        "net", "node", "config", "waiting", "busy",
        "served", "shed", "max_depth", "busy_seconds",
    )

    def __init__(self, net: "Network", node: int, config: ServiceConfig):
        self.net = net
        self.node = node
        self.config = config
        self.waiting: Deque[Tuple] = deque()
        self.busy = False
        self.served = 0
        self.shed = 0
        self.max_depth = 0
        self.busy_seconds = 0.0

    @property
    def depth(self) -> int:
        """Messages in the system: waiting plus the one in service."""
        return len(self.waiting) + (1 if self.busy else 0)

    def offer(self, msg: Message, run, on_dropped) -> bool:
        """Admit a delivered message (queue or serve) or shed it."""
        cfg = self.config
        tel = self.net.telemetry
        now = self.net.sim.now
        if self.busy:
            if (
                cfg.queue_limit is not None
                and len(self.waiting) >= cfg.queue_limit
            ):
                self.shed += 1
                return False
            # The queue-wait hop gets its own forked context so the
            # wait span slots between the transit span and the serve
            # span in the causal tree.
            wait_ctx = tel.fork(msg.trace) if tel is not None else None
            self.waiting.append((msg, run, on_dropped, now, wait_ctx))
        else:
            self.busy = True
            serve_ctx = tel.fork(msg.trace) if tel is not None else None
            self.net.sim.schedule(
                cfg.service_time,
                lambda: self._finish(msg, run, on_dropped, serve_ctx, now),
                self._label(msg),
            )
        depth = self.depth
        if depth > self.max_depth:
            self.max_depth = depth
        self.net.metrics.registry.observe(
            "service.queue_depth", float(depth), server=self.node
        )
        return True

    def _finish(
        self, msg: Message, run, on_dropped, ctx, started: float
    ) -> None:
        self.busy_seconds += self.config.service_time
        net = self.net
        tel = net.telemetry
        if net.is_failed(self.node):
            # The node died while the message was queued or in service.
            net.dropped += 1
            if tel is not None:
                tel.event(
                    "net.drop", src=msg.src, dst=msg.dst,
                    category=msg.category, kind=msg.kind,
                    msg_id=msg.msg_id, reason="receiver_failed",
                    **(ctx.tags() if ctx is not None else {}),
                )
            if on_dropped is not None:
                on_dropped(msg, "receiver_failed")
        else:
            self.served += 1
            if tel is not None and ctx is not None:
                tel.emit_span(
                    "service.serve", started, net.sim.now,
                    server=self.node, category=msg.category,
                    kind=msg.kind, msg_id=msg.msg_id, **ctx.tags(),
                )
            run(msg, ctx if ctx is not None else msg.trace)
        if self.waiting:
            nxt_msg, nxt_run, nxt_dropped, enqueued, wait_ctx = (
                self.waiting.popleft()
            )
            now = net.sim.now
            net.metrics.registry.observe(
                "service.queue_delay", now - enqueued, server=self.node
            )
            if tel is not None and wait_ctx is not None:
                tel.emit_span(
                    "service.wait", enqueued, now,
                    server=self.node, category=nxt_msg.category,
                    kind=nxt_msg.kind, msg_id=nxt_msg.msg_id,
                    depth=len(self.waiting), **wait_ctx.tags(),
                )
            serve_ctx = tel.fork(wait_ctx) if tel is not None else None
            net.sim.schedule(
                self.config.service_time,
                lambda: self._finish(
                    nxt_msg, nxt_run, nxt_dropped, serve_ctx, now
                ),
                self._label(nxt_msg),
            )
        else:
            self.busy = False

    def _label(self, msg: "Message") -> Optional[str]:
        """Profiling label for a service-completion event (None unprofiled)."""
        if self.net._profiler is None:
            return None
        return "service.serve:" + (msg.kind or msg.category)


@dataclass(frozen=True)
class Message:
    """An in-flight message between two node indices."""

    src: int
    dst: int
    category: str
    size_bytes: int
    payload: Any = None
    msg_id: int = 0
    #: protocol message kind; dispatches to a kind handler when set
    kind: str = ""
    #: causal trace coordinates propagated across this hop (None when
    #: the sender is untraced or telemetry is disabled)
    trace: Optional[TraceContext] = None


class Network:
    """Latency-accurate, loss-free (except node failure) message fabric."""

    def __init__(
        self,
        sim: Simulator,
        delay_space,
        metrics: Optional[MetricsCollector] = None,
        *,
        processing_delay: float = 0.0005,
        loss_rate: float = 0.0,
        rng=None,
        telemetry: Optional[Telemetry] = None,
    ):
        """
        Parameters
        ----------
        processing_delay:
            Fixed per-message handling time at the receiver in seconds,
            modelling (cheap) summary evaluation / forwarding decisions.
        loss_rate:
            Probability that any individual message is silently lost in
            transit (failure injection for robustness tests). Requires
            *rng* when non-zero.
        telemetry:
            Optional structured-event recorder; ``None`` disables event
            emission entirely (the per-server metrics registry inside
            *metrics* is always maintained).
        """
        if not (0.0 <= loss_rate < 1.0):
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if loss_rate > 0 and rng is None:
            raise ValueError("loss_rate > 0 requires an rng")
        self.sim = sim
        self.delay_space = delay_space
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.processing_delay = processing_delay
        self.loss_rate = loss_rate
        self.telemetry = telemetry
        # Wall-clock profiler reference cached at construction (attach a
        # profiler to the telemetry recorder *before* building); None
        # keeps the per-message hot path to a single attribute check.
        self._profiler = telemetry.profiler if telemetry is not None else None
        self._rng = rng
        self._handlers: Dict[int, Callable[[Message], None]] = {}
        # Per-kind handlers: one protocol object owns a message kind for
        # every node (e.g. the update plane installs summaries at
        # delivery time). Resolution order at delivery: an explicit
        # ``on_delivery`` callback, then the kind handler, then the
        # destination node's registered handler.
        self._kind_handlers: Dict[str, Callable[[Message], None]] = {}
        # Batch kind handlers: a plane that can install a whole
        # same-kind, same-destination delivery group in one call (e.g.
        # stacked summary installs) registers one here; ``send_many``
        # delivery groups dispatch through it instead of per message.
        self._kind_batch_handlers: Dict[str, Callable[[list], None]] = {}
        self._failed: Set[int] = set()
        # Per-node server-side service queues (None entry = infinite
        # capacity, the default); see :class:`ServiceConfig`.
        self._service: Dict[int, _ServiceQueue] = {}
        self.dropped = 0
        self.lost = 0
        #: messages shed by saturated service queues (all nodes)
        self.shed = 0
        #: messages that hit the wire (sender alive at send time)
        self.sent = 0
        #: handler invocations (post queue/service when configured)
        self.delivered = 0
        #: handler invocations per message kind (category when kindless);
        #: always maintained — the time-series plane samples it as the
        #: dispatch-mix gauge family and it never touches the simulation
        self.delivered_by_kind: Dict[str, int] = {}
        #: causal context of the delivery currently being handled; valid
        #: only for the duration of a handler call — receivers fork it
        #: for the sends they make in response.
        self.delivery_trace: Optional[TraceContext] = None
        # Message ids are per-network so independently built systems are
        # reproducible (a module-level counter would leak state between
        # builds and break id-based assertions across test orderings).
        self._msg_counter = itertools.count()

    # -- membership ----------------------------------------------------------------
    def register(self, node: int, handler: Callable[[Message], None]) -> None:
        """Install the inbound-message handler for *node*."""
        self._handlers[node] = handler

    def unregister(self, node: int) -> None:
        self._handlers.pop(node, None)

    def register_kind(
        self, kind: str, handler: Callable[[Message], None]
    ) -> None:
        """Install the handler for all messages of protocol *kind*."""
        if not kind:
            raise ValueError("kind must be a non-empty string")
        self._kind_handlers[kind] = handler

    def unregister_kind(self, kind: str) -> None:
        self._kind_handlers.pop(kind, None)

    def register_kind_batch(
        self, kind: str, handler: Callable[[list], None]
    ) -> None:
        """Install the batch handler for delivery groups of *kind*.

        The handler receives the full list of same-kind messages
        arriving at one destination at one instant (a ``send_many``
        delivery group). Per-message accounting — ``delivered``
        counters, dispatch-mix gauges, profiler census — is performed by
        the network before the single handler call; the handler reads
        each message's causal context from ``msg.trace`` (the shared
        :attr:`delivery_trace` is not set for batch dispatch).
        """
        if not kind:
            raise ValueError("kind must be a non-empty string")
        self._kind_batch_handlers[kind] = handler

    def unregister_kind_batch(self, kind: str) -> None:
        self._kind_batch_handlers.pop(kind, None)

    def fail_node(self, node: int) -> None:
        """Mark *node* failed: all inbound messages are dropped."""
        self._failed.add(node)
        if self.telemetry is not None:
            self.telemetry.event("net.node_failed", server=node)

    def recover_node(self, node: int) -> None:
        self._failed.discard(node)
        if self.telemetry is not None:
            self.telemetry.event("net.node_recovered", server=node)

    def is_failed(self, node: int) -> bool:
        return node in self._failed

    # -- server-side service model --------------------------------------------------
    def set_service(self, node: int, config: Optional[ServiceConfig]) -> None:
        """Install (or, with ``None``, remove) *node*'s service model.

        Any queued messages of a previous model are discarded, so
        configure servers before offering load.
        """
        if config is None:
            self._service.pop(node, None)
        else:
            self._service[node] = _ServiceQueue(self, node, config)

    def service_config(self, node: int) -> Optional[ServiceConfig]:
        svc = self._service.get(node)
        return svc.config if svc is not None else None

    def service_stats(self, node: int) -> Dict[str, float]:
        """Service-queue counters for *node* (zeros when unconfigured)."""
        svc = self._service.get(node)
        if svc is None:
            return {
                "served": 0.0, "shed": 0.0, "depth": 0.0,
                "waiting": 0.0, "max_depth": 0.0, "busy_seconds": 0.0,
            }
        return {
            "served": float(svc.served),
            "shed": float(svc.shed),
            "depth": float(svc.depth),
            "waiting": float(len(svc.waiting)),
            "max_depth": float(svc.max_depth),
            "busy_seconds": svc.busy_seconds,
        }

    # -- sending ----------------------------------------------------------------
    def latency(self, a: int, b: int) -> float:
        return self.delay_space.latency(a, b)

    def send(
        self,
        src: int,
        dst: int,
        category: str,
        size_bytes: int,
        payload: Any = None,
        on_delivery: Optional[Callable[[Message], None]] = None,
        phase: str = "",
        kind: str = "",
        on_dropped: Optional[Callable[[Message, str], None]] = None,
        on_rejected: Optional[Callable[[Message], None]] = None,
        trace: Optional[TraceContext] = None,
    ) -> Message:
        """Send a message; returns the :class:`Message` descriptor.

        Traffic is accounted at send time (the bytes hit the wire whether
        or not the destination is alive) and attributed to the receiving
        node under *phase*. Delivery invokes *on_delivery* when given,
        else the handler registered for the message *kind*, else the
        destination's registered handler. *on_dropped* is the terminal
        failure hook: it fires exactly once, with a reason of
        ``"sender_failed"``, ``"lost"``, ``"receiver_failed"`` or
        ``"shed"``, when the message will never reach a handler —
        protocol actors use it to keep in-flight accounting exact under
        loss. *on_rejected* opts into explicit load-shed notification:
        when the destination's service queue sheds the message, a reject
        notice travels back and *on_rejected* fires at the sender one
        one-way delay later (the notice itself is delivered reliably).
        *trace* rides on the message so every event of this hop (send,
        transit, wait, serve, loss, shed) lands in the sender's causal
        tree; during handler execution the receiver finds the hop's
        context in :attr:`delivery_trace` to fork for downstream sends.
        """
        prof = self._profiler
        if prof is None:
            return self._send(src, dst, category, size_bytes, payload,
                              on_delivery, phase, kind, on_dropped,
                              on_rejected, trace)
        prof.enter("net.send")
        try:
            return self._send(src, dst, category, size_bytes, payload,
                              on_delivery, phase, kind, on_dropped,
                              on_rejected, trace)
        finally:
            prof.exit()

    def _send(
        self,
        src: int,
        dst: int,
        category: str,
        size_bytes: int,
        payload: Any = None,
        on_delivery: Optional[Callable[[Message], None]] = None,
        phase: str = "",
        kind: str = "",
        on_dropped: Optional[Callable[[Message, str], None]] = None,
        on_rejected: Optional[Callable[[Message], None]] = None,
        trace: Optional[TraceContext] = None,
    ) -> Message:
        msg = Message(src=src, dst=dst, category=category,
                      size_bytes=int(size_bytes), payload=payload,
                      msg_id=next(self._msg_counter), kind=kind,
                      trace=trace)
        ctags = trace.tags() if trace is not None else _NO_TAGS
        self.metrics.record_message(
            category, msg.size_bytes, server=dst, phase=phase
        )
        tel = self.telemetry
        if src in self._failed:
            # A failed node cannot transmit; bytes were not actually sent.
            self.metrics.uncount_message(
                category, msg.size_bytes, server=dst, phase=phase
            )
            self.dropped += 1
            if tel is not None:
                tel.event("net.drop", src=src, dst=dst, category=category,
                          phase=phase, kind=kind, msg_id=msg.msg_id,
                          reason="sender_failed", **ctags)
            if on_dropped is not None:
                on_dropped(msg, "sender_failed")
            return msg
        self.sent += 1
        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            self.lost += 1
            if tel is not None:
                tel.event("net.loss", src=src, dst=dst, category=category,
                          phase=phase, kind=kind, msg_id=msg.msg_id,
                          bytes=msg.size_bytes, **ctags)
            if on_dropped is not None:
                on_dropped(msg, "lost")
            return msg  # bytes were sent; the message never arrives
        if tel is not None:
            tel.event("net.send", src=src, dst=dst, category=category,
                      phase=phase, bytes=msg.size_bytes, msg_id=msg.msg_id,
                      **ctags)
        delay = self.delay_space.latency(src, dst) + self.processing_delay
        sent_at = self.sim.now

        def deliver() -> None:
            if msg.dst in self._failed:
                self.dropped += 1
                if tel is not None:
                    tel.event("net.drop", src=src, dst=dst,
                              category=category, phase=phase, kind=kind,
                              msg_id=msg.msg_id, reason="receiver_failed",
                              **ctags)
                if on_dropped is not None:
                    on_dropped(msg, "receiver_failed")
                return
            if tel is not None:
                tel.emit_span("net.transit", sent_at, self.sim.now,
                              src=src, server=dst, category=category,
                              phase=phase, kind=kind, msg_id=msg.msg_id,
                              bytes=msg.size_bytes, **ctags)
            handler = on_delivery
            if handler is None and kind:
                handler = self._kind_handlers.get(kind)
            if handler is None:
                handler = self._handlers.get(msg.dst)
            if handler is None:
                return
            svc = self._service.get(msg.dst)
            if svc is None:
                self._invoke(handler, msg, msg.trace)
                return
            if svc.offer(
                msg, lambda m, c: self._invoke(handler, m, c), on_dropped
            ):
                return
            # Shed: the service queue is full. Terminal for this message;
            # a sender that asked for notification hears back explicitly.
            self.shed += 1
            if tel is not None:
                tel.event("net.shed", src=src, dst=dst, category=category,
                          phase=phase, kind=kind, msg_id=msg.msg_id,
                          depth=svc.depth, **ctags)
            if on_rejected is not None:
                self.metrics.record_message(
                    category, svc.config.reject_bytes,
                    server=src, phase="reject",
                )
                back = self.delay_space.latency(dst, src) + self.processing_delay
                self.sim.schedule(
                    back, lambda: on_rejected(msg),
                    None if self._profiler is None else "net.reject",
                )
            if on_dropped is not None:
                on_dropped(msg, "shed")

        # The event label names the delivery frame by message kind so
        # the profiler's call-path tree splits dispatch time per
        # protocol; computed only under a profiler (None otherwise).
        self.sim.schedule(
            delay, deliver,
            None if self._profiler is None
            else "net.deliver:" + (kind or category),
        )
        return msg

    def send_many(
        self,
        src: int,
        requests,
        category: str,
        *,
        phase: str = "",
        on_dropped: Optional[Callable[[Message, str], None]] = None,
    ) -> "list[Message]":
        """Send a batch of messages from *src* in one call.

        *requests* is a sequence of ``(dst, size_bytes, payload, kind,
        trace)`` tuples, processed in order: per-message disposition
        (sender-failure, loss draws, telemetry events, ``on_dropped``)
        is identical to issuing :meth:`send` once per request — loss RNG
        draws happen in request order — but the per-message overheads are
        amortized: traffic is accounted per destination group, one
        profiler frame covers the whole batch, and all surviving
        messages bound for the same ``(dst, kind)`` share **one**
        delivery event (they arrive at the same instant anyway, and
        their handler invocations were already adjacent in the
        per-message schedule). When the destination's kind has a batch
        handler (:meth:`register_kind_batch`) and no service queue is
        configured, the group is installed with a single vectorized
        handler call; otherwise delivery falls back to per-message
        dispatch in order. ``on_delivery``/``on_rejected`` hooks are not
        supported here — use :meth:`send` for those.
        """
        prof = self._profiler
        if prof is None:
            return self._send_many(src, requests, category, phase, on_dropped)
        prof.enter("net.send")
        try:
            return self._send_many(src, requests, category, phase, on_dropped)
        finally:
            prof.exit()

    def _send_many(
        self,
        src: int,
        requests,
        category: str,
        phase: str,
        on_dropped: Optional[Callable[[Message, str], None]],
    ) -> "list[Message]":
        tel = self.telemetry
        msgs: list = []
        counter = self._msg_counter
        if src in self._failed:
            # A failed node cannot transmit. Mirror the per-message path
            # exactly (record + roll back) so the registry grows the same
            # zeroed entries it historically did.
            for dst, size_bytes, payload, kind, trace in requests:
                msg = Message(src=src, dst=dst, category=category,
                              size_bytes=int(size_bytes), payload=payload,
                              msg_id=next(counter), kind=kind, trace=trace)
                msgs.append(msg)
                self.metrics.record_message(
                    category, msg.size_bytes, server=dst, phase=phase
                )
                self.metrics.uncount_message(
                    category, msg.size_bytes, server=dst, phase=phase
                )
                self.dropped += 1
                if tel is not None:
                    ctags = trace.tags() if trace is not None else _NO_TAGS
                    tel.event("net.drop", src=src, dst=dst, category=category,
                              phase=phase, kind=kind, msg_id=msg.msg_id,
                              reason="sender_failed", **ctags)
                if on_dropped is not None:
                    on_dropped(msg, "sender_failed")
            return msgs
        loss_rate = self.loss_rate
        rng = self._rng
        # (dst, kind) -> [total_bytes, count, [surviving messages]]
        groups: Dict[Tuple[int, str], list] = {}
        for dst, size_bytes, payload, kind, trace in requests:
            msg = Message(src=src, dst=dst, category=category,
                          size_bytes=int(size_bytes), payload=payload,
                          msg_id=next(counter), kind=kind, trace=trace)
            msgs.append(msg)
            self.sent += 1
            acc = groups.get((dst, kind))
            if acc is None:
                acc = groups[(dst, kind)] = [0, 0, []]
            acc[0] += msg.size_bytes
            acc[1] += 1
            if loss_rate > 0 and rng.random() < loss_rate:
                self.lost += 1
                if tel is not None:
                    ctags = trace.tags() if trace is not None else _NO_TAGS
                    tel.event("net.loss", src=src, dst=dst, category=category,
                              phase=phase, kind=kind, msg_id=msg.msg_id,
                              bytes=msg.size_bytes, **ctags)
                if on_dropped is not None:
                    on_dropped(msg, "lost")
                continue  # bytes were sent; the message never arrives
            if tel is not None:
                ctags = trace.tags() if trace is not None else _NO_TAGS
                tel.event("net.send", src=src, dst=dst, category=category,
                          phase=phase, bytes=msg.size_bytes,
                          msg_id=msg.msg_id, **ctags)
            acc[2].append(msg)
        sent_at = self.sim.now
        for (dst, kind), (total_bytes, count, group) in groups.items():
            self.metrics.record_messages(
                category, total_bytes, count, server=dst, phase=phase
            )
            if not group:
                continue
            delay = self.delay_space.latency(src, dst) + self.processing_delay
            self.sim.schedule(
                delay,
                self._batch_deliverer(src, dst, kind, category, phase,
                                      group, sent_at, on_dropped),
                None if self._profiler is None
                else "net.deliver:" + (kind or category),
            )
        return msgs

    def _batch_deliverer(
        self, src, dst, kind, category, phase, group, sent_at, on_dropped
    ):
        def deliver_batch() -> None:
            tel = self.telemetry
            if dst in self._failed:
                for msg in group:
                    self.dropped += 1
                    if tel is not None:
                        ctags = (msg.trace.tags() if msg.trace is not None
                                 else _NO_TAGS)
                        tel.event("net.drop", src=src, dst=dst,
                                  category=category, phase=phase, kind=kind,
                                  msg_id=msg.msg_id, reason="receiver_failed",
                                  **ctags)
                    if on_dropped is not None:
                        on_dropped(msg, "receiver_failed")
                return
            if tel is not None:
                now = self.sim.now
                for msg in group:
                    ctags = (msg.trace.tags() if msg.trace is not None
                             else _NO_TAGS)
                    tel.emit_span("net.transit", sent_at, now,
                                  src=src, server=dst, category=category,
                                  phase=phase, kind=kind, msg_id=msg.msg_id,
                                  bytes=msg.size_bytes, **ctags)
            svc = self._service.get(dst)
            if svc is None and kind:
                batch_handler = self._kind_batch_handlers.get(kind)
                if batch_handler is not None:
                    self._invoke_batch(batch_handler, group)
                    return
            handler = self._kind_handlers.get(kind) if kind else None
            if handler is None:
                handler = self._handlers.get(dst)
            if handler is None:
                return
            if svc is None:
                for msg in group:
                    self._invoke(handler, msg, msg.trace)
                return
            for msg in group:
                if svc.offer(
                    msg, lambda m, c: self._invoke(handler, m, c), on_dropped
                ):
                    continue
                self.shed += 1
                if tel is not None:
                    ctags = (msg.trace.tags() if msg.trace is not None
                             else _NO_TAGS)
                    tel.event("net.shed", src=src, dst=dst, category=category,
                              phase=phase, kind=kind, msg_id=msg.msg_id,
                              depth=svc.depth, **ctags)
                if on_dropped is not None:
                    on_dropped(msg, "shed")

        return deliver_batch

    def counters(self) -> Dict[str, int]:
        """One snapshot of the network-level message dispositions.

        ``sent`` counts messages that actually hit the wire (a failed
        sender never transmits); ``delivered`` counts handler
        invocations. ``sent - delivered`` at quiescence equals
        ``lost + shed`` plus receiver-failed drops plus handlerless
        deliveries.
        """
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "lost": self.lost,
            "dropped": self.dropped,
            "shed": self.shed,
        }

    def _invoke_batch(
        self, handler: Callable[[list], None], group: "list[Message]"
    ) -> None:
        """Dispatch one same-kind delivery group with a single handler call.

        Per-message accounting is preserved exactly: the ``delivered``
        counter, the dispatch-mix gauge and the profiler census advance
        once per message; only the handler invocation (and its
        ``net.deliver`` frame) is amortized across the group.
        """
        n = len(group)
        self.delivered += n
        mix = group[0].kind or group[0].category
        by_kind = self.delivered_by_kind
        by_kind[mix] = by_kind.get(mix, 0) + n
        prof = self._profiler
        if prof is None:
            handler(group)
            return
        census = prof.census
        for msg in group:
            census(mix, msg.dst)
        prof.enter("net.deliver")
        try:
            handler(group)
        finally:
            prof.exit()

    def _invoke(
        self,
        handler: Callable[[Message], None],
        msg: Message,
        ctx: Optional[TraceContext] = None,
    ) -> None:
        self.delivered += 1
        mix = msg.kind or msg.category
        by_kind = self.delivered_by_kind
        by_kind[mix] = by_kind.get(mix, 0) + 1
        self.delivery_trace = ctx if ctx is not None else msg.trace
        prof = self._profiler
        try:
            if prof is None:
                handler(msg)
                return
            prof.census(mix, msg.dst)
            prof.enter("net.deliver")
            try:
                handler(msg)
            finally:
                prof.exit()
        finally:
            self.delivery_trace = None
