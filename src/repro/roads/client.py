"""Client-driven query execution over the simulated network.

The search protocol (Sections III-A and III-C) is client-driven: the
client sends the query to a start server; the server evaluates it against
all summaries it holds and *redirects* the client; the client then queries
the redirected servers, which redirect it further down their branches,
until the query has reached every server whose summaries match.

Latency is measured exactly as in the paper: from query initiation until
the query reaches the **last server it needs to contact** (record
retrieval time is excluded here; the prototype benchmark adds it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from ..net.transport import Message, Network
from ..query.query import Query
from ..records.store import RecordStore
from ..sim.engine import Simulator
from ..sim.metrics import QUERY
from ..summaries.config import SummaryConfig
from ..telemetry.core import Telemetry
from ..telemetry.events import TraceEvent
from ..telemetry.tracing import TraceContext
from ..hierarchy.join import Hierarchy
from ..hierarchy.node import AttachedOwner, Server
from ..overlay.routing import (
    RoutingDecision,
    decide_descent,
    decide_local,
    decide_start,
)
from .policy import PolicyTable

#: acknowledgement size when an owner returns only a match count
_ACK_BYTES = 16


@dataclass
class OwnerHit:
    """A resource owner whose data matched (per its summaries) a query."""

    owner_id: str
    server_id: int
    arrival_time: float
    match_count: int
    records: Optional[RecordStore] = None
    false_positive: bool = False


@dataclass
class QueryOutcome:
    """Everything measured about one query execution."""

    query: Query
    start_server: int
    client_node: int
    started_at: float = 0.0
    #: per-server time the query message arrived
    arrivals: Dict[int, float] = field(default_factory=dict)
    owner_hits: List[OwnerHit] = field(default_factory=list)
    query_bytes: int = 0
    query_messages: int = 0
    completed: bool = False
    timed_out_servers: Set[int] = field(default_factory=set)
    #: servers that load-shed every attempt (client gave up after retries)
    shed_servers: Set[int] = field(default_factory=set)
    #: individual contact attempts rejected by a saturated server
    rejections: int = 0
    #: optional structured event log (:class:`TraceEvent` entries)
    trace_events: List[TraceEvent] = field(default_factory=list)
    #: causal trace this execution recorded under (0 = untraced)
    trace_id: int = 0
    #: span id of this execution's ``search`` root span (0 = untraced);
    #: widening searches share one trace_id across scopes, so tests and
    #: the CLI locate each round's subtree through this id
    root_span_id: int = 0

    @property
    def trace(self) -> List[TraceEvent]:
        """Back-compat view of :attr:`trace_events`.

        Each entry unpacks and indexes like the historical
        ``(sim time, event, subject, detail)`` tuple.
        """
        return self.trace_events

    def format_trace(self) -> str:
        """Human-readable rendering of the event trace."""
        lines = []
        for t, event, subject, detail in self.trace_events:
            rel = (t - self.started_at) * 1000
            lines.append(f"{rel:8.1f} ms  {event:<9} {subject} {detail}")
        return "\n".join(lines)

    @property
    def latency(self) -> float:
        """Seconds until the query reached the last contacted server."""
        if not self.arrivals:
            return 0.0
        return max(self.arrivals.values()) - self.started_at

    @property
    def servers_contacted(self) -> int:
        return len(self.arrivals)

    @property
    def total_matches(self) -> int:
        return sum(h.match_count for h in self.owner_hits)

    def matched_records(self) -> Optional[RecordStore]:
        """Union of returned record stores (when records were collected)."""
        stores = [h.records for h in self.owner_hits if h.records is not None]
        if not stores:
            return None
        out = stores[0]
        for s in stores[1:]:
            out = out.merged_with(s)
        return out


class QueryExecution:
    """One client's interaction for one query."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        hierarchy: Hierarchy,
        summary_config: SummaryConfig,
        policies: PolicyTable,
        query: Query,
        client_node: int,
        start_server_id: int,
        *,
        collect_records: bool = False,
        timeout: float = 5.0,
        retries: int = 1,
        backoff_base: float = 0.0,
        backoff_factor: float = 2.0,
        first_k: Optional[int] = None,
        trace: bool = False,
        telemetry: Optional[Telemetry] = None,
        on_complete: Optional[Callable[[QueryOutcome], None]] = None,
        trace_parent: Optional[TraceContext] = None,
        quality=None,
    ):
        self.sim = sim
        self.network = network
        self.hierarchy = hierarchy
        self.summary_config = summary_config
        self.policies = policies
        self.query = query
        self.client_node = client_node
        self.collect_records = collect_records
        self.timeout = timeout
        #: how many times a timed-out contact is retried before the
        #: client gives up on that server (lossy networks lose single
        #: messages far more often than whole servers)
        self.retries = retries
        #: wait before the first re-attempt; each further re-attempt
        #: multiplies it by ``backoff_factor``. Zero (the default)
        #: retries immediately — the historical behaviour.
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        #: invoked exactly once, with the outcome, when the query has
        #: fully resolved — the serving plane's completion hook
        self.on_complete = on_complete
        #: stop issuing new contacts once this many matches are in hand
        #: (best-effort early termination; in-flight contacts complete)
        self.first_k = first_k
        self._tracing = trace
        self._telemetry = telemetry
        #: causal parent the root context forks from (a widening search
        #: passes its umbrella context so all rounds share one trace)
        self._trace_parent = trace_parent
        #: the system's shadow-oracle quality plane, when attached; used
        #: only for the ground-truthed owner false-positive verdict
        self._quality = quality
        self._root_ctx: Optional[TraceContext] = None
        self.outcome = QueryOutcome(
            query=query, start_server=start_server_id, client_node=client_node
        )
        self._outstanding = 0
        self._contacted: Set[int] = set()
        self._answered_owners: Set[str] = set()
        self._done = False

    def _trace(
        self, event: str, subject, detail="",
        ctx: Optional[TraceContext] = None,
    ) -> None:
        if self._tracing:
            self.outcome.trace_events.append(
                TraceEvent(self.sim.now, event, str(subject), str(detail))
            )
        if self._telemetry is not None:
            self._telemetry.event(
                f"query.{event}", subject=str(subject), detail=str(detail),
                **(ctx.tags() if ctx is not None else {}),
            )

    def _fork(
        self, ctx: Optional[TraceContext], **baggage
    ) -> Optional[TraceContext]:
        tel = self._telemetry
        if tel is None:
            return None
        return tel.fork(ctx, **baggage)

    # -- driving ----------------------------------------------------------------
    #: entry modes for the first contacted server: ``"start"`` fans out
    #: over everything the server's summaries cover (hierarchy + overlay
    #: replicas); ``"descent"`` stays within its branch (scoped search /
    #: no-overlay root entry); ``"local"`` asks only its attached owners.
    ENTRY_MODES = ("start", "descent", "local")

    def start(self, *, mode: str = "start") -> "QueryExecution":
        """Issue the first contact; the simulator drives the rest."""
        if mode not in self.ENTRY_MODES:
            raise ValueError(
                f"mode must be one of {self.ENTRY_MODES}, got {mode!r}"
            )
        self.outcome.started_at = self.sim.now
        tel = self._telemetry
        if tel is not None:
            if self._trace_parent is not None:
                self._root_ctx = tel.fork(self._trace_parent)
            else:
                self._root_ctx = tel.new_trace()
        if self._root_ctx is not None:
            self.outcome.trace_id = self._root_ctx.trace_id
            self.outcome.root_span_id = self._root_ctx.span_id
        self._contact(self.outcome.start_server, mode=mode)
        return self

    @property
    def done(self) -> bool:
        """Whether the query has fully resolved (fan-out and timeouts)."""
        return self._done

    def run(self, *, mode: str = "start") -> QueryOutcome:
        """Start and run the simulator until this query completes."""
        self.start(mode=mode)
        # Events from other activity may interleave; loop until done.
        while not self._done and self.sim.step():
            pass
        return self.outcome

    # -- internals ----------------------------------------------------------------
    def _account(self, size_bytes: int) -> None:
        self.outcome.query_bytes += size_bytes
        self.outcome.query_messages += 1

    def _retry_delay(self, next_attempt: int) -> float:
        """Exponential backoff before re-attempt *next_attempt* (>= 2)."""
        if next_attempt <= 1 or self.backoff_base <= 0:
            return 0.0
        return self.backoff_base * self.backoff_factor ** (next_attempt - 2)

    def _contact(
        self,
        server_id: int,
        *,
        mode: str,
        parent_ctx: Optional[TraceContext] = None,
    ) -> None:
        if server_id in self._contacted:
            return
        self._contacted.add(server_id)
        self._outstanding += 1
        # The contact context spans every attempt at this server; the
        # first contact forks from the search root, a redirected contact
        # from the delivery of the response that named this server.
        ctx = self._fork(
            parent_ctx if parent_ctx is not None else self._root_ctx
        )
        state = {"replied": False, "attempts": 0, "first_at": None}

        def close_contact(terminal: str = "") -> None:
            tel = self._telemetry
            if tel is not None and ctx is not None:
                tags = ctx.tags()
                tags.update(
                    server=server_id, mode=mode, attempts=state["attempts"]
                )
                if terminal:
                    tags["terminal"] = terminal
                tel.emit_span(
                    "query.contact", state["first_at"], self.sim.now, **tags
                )

        def attempt() -> None:
            state["attempts"] += 1
            if state["first_at"] is None:
                state["first_at"] = self.sim.now
            msg_ctx = self._fork(ctx)
            self._trace(
                "send",
                f"server {server_id}",
                f"mode={mode} try={state['attempts']}",
            )
            self._account(self.query.size_bytes)
            self.network.send(
                self.client_node,
                server_id,
                QUERY,
                self.query.size_bytes,
                payload=self.query,
                on_delivery=lambda msg: self._at_server(server_id, mode, state),
                phase="forward",
                kind="query",
                on_rejected=rejected,
                trace=msg_ctx,
            )
            state["timeout_event"] = self.sim.schedule(
                self.timeout, expire, "query.timeout"
            )

        def retry_or_give_up(terminal: str) -> None:
            if state["attempts"] <= self.retries:
                self._trace("retry", f"server {server_id}", ctx=self._fork(ctx))
                delay = self._retry_delay(state["attempts"] + 1)
                if delay > 0:
                    self.sim.schedule(delay, lambda: (
                        attempt() if not state["replied"] else None
                    ), "query.retry")
                else:
                    attempt()
                return
            state["replied"] = True
            if terminal == "shed":
                self.outcome.shed_servers.add(server_id)
            else:
                self.outcome.timed_out_servers.add(server_id)
            self._trace(terminal, f"server {server_id}", ctx=self._fork(ctx))
            close_contact(terminal)
            self._finish_one()

        def expire() -> None:
            if state["replied"]:
                return
            retry_or_give_up("timeout")

        def rejected(msg: Message) -> None:
            # The server load-shed this attempt and said so: back off and
            # retry (the timeout timer for the dead attempt is cancelled).
            if state["replied"]:
                return
            self.outcome.rejections += 1
            ev = state.get("timeout_event")
            if ev is not None:
                ev.cancel()
            # The reject notice parents to the shed attempt's message
            # context, so the tree shows which attempt bounced.
            self._trace(
                "rejected", f"server {server_id}", ctx=self._fork(msg.trace)
            )
            retry_or_give_up("shed")

        state["close_contact"] = close_contact
        attempt()

    def _get_server(self, server_id: int) -> Optional[Server]:
        try:
            server = self.hierarchy.get(server_id)
        except KeyError:
            return None
        return server if server.alive else None

    def _at_server(self, server_id: int, mode: str, state: Dict) -> None:
        server = self._get_server(server_id)
        if server is None:
            return  # silent; the client-side timeout reclaims the slot
        dctx = self.network.delivery_trace
        first_arrival = server_id not in self.outcome.arrivals
        self.outcome.arrivals.setdefault(server_id, self.sim.now)
        # Only the first arrival is a causal-tree leaf; a duplicate
        # delivery (retry after a lost response) must not mint a later
        # ``query.arrive`` or the critical path would overshoot the
        # reported latency.
        self._trace(
            "arrive", f"server {server_id}",
            ctx=self._fork(dctx) if first_arrival else None,
        )
        decide = {
            "start": decide_start,
            "descent": decide_descent,
            "local": decide_local,
        }[mode]
        decision = decide(server, self.query, self.summary_config, self.sim.now)
        tel = self._telemetry
        if tel is not None:
            mctx = self._fork(dctx)
            tel.event(
                "server.match", server=server_id, mode=mode,
                redirects=len(decision.redirect_ids),
                owner_hits=len(decision.owner_hits),
                owners_only=len(decision.owners_only_ids),
                **(mctx.tags() if mctx is not None else {}),
            )
        for owner in decision.owner_hits:
            self._evaluate_owner(owner, server_id, dctx)
        self._account(decision.response_size_bytes)
        self.network.send(
            server_id,
            self.client_node,
            QUERY,
            decision.response_size_bytes,
            payload=decision,
            on_delivery=lambda msg: self._on_redirects(decision, state),
            phase="response",
            kind="query-response",
            trace=self._fork(dctx),
        )

    def _evaluate_owner(
        self,
        owner: AttachedOwner,
        server_id: int,
        ctx: Optional[TraceContext] = None,
    ) -> None:
        """The query may have matching data at *owner*.

        Owners co-located with their attachment point (they control the
        server, or no separate node is declared) answer on the spot; a
        guest owner only exported a summary, so the client must send the
        query one hop further to the owner's own node.
        """
        remote = (
            not owner.controls_server
            and owner.node_id is not None
            and owner.node_id != server_id
        )
        if remote:
            self._contact_owner_node(owner, ctx)
            return
        self._record_owner_answer(owner, server_id, self.sim.now, ctx)

    def _record_owner_answer(
        self,
        owner: AttachedOwner,
        at_node: int,
        arrival: float,
        ctx: Optional[TraceContext] = None,
    ) -> None:
        """Apply the owner's local policy and record the hit.

        Idempotent per owner: a retried contact (lost response) must not
        double-count the owner's records.
        """
        if owner.owner_id in self._answered_owners:
            return
        self._answered_owners.add(owner.owner_id)
        answered = self.policies.answer(owner.owner_id, self.query, owner.origin)
        # With the quality plane attached the flag is the oracle verdict:
        # an empty answer is only a false positive when the raw store
        # holds no matching record either (the *summary* lied) — a
        # policy-filtered empty answer was still a justified visit.
        # Detached, the legacy empty-answer semantics are preserved.
        false_positive = (
            self._quality.owner_false_positive(self.query, owner, len(answered))
            if self._quality is not None
            else (len(answered) == 0)
        )
        hit = OwnerHit(
            owner_id=owner.owner_id,
            server_id=at_node,
            arrival_time=arrival,
            match_count=len(answered),
            records=answered if self.collect_records else None,
            false_positive=false_positive,
        )
        self.outcome.owner_hits.append(hit)
        self._trace(
            "owner", owner.owner_id, f"matches={hit.match_count}",
            ctx=self._fork(ctx),
        )

    def _contact_owner_node(
        self,
        owner: AttachedOwner,
        parent_ctx: Optional[TraceContext] = None,
    ) -> None:
        """Forward the query to a guest owner's own node.

        The owner hop rides the same retry policy as server contacts:
        each attempt arms a timeout, a lost query or lost ack triggers
        backoff and re-send, and after ``retries`` re-attempts the
        client gives up and reports the node in ``timed_out_servers`` —
        so a lossy network can no longer strand the whole search on one
        silent guest-owner leg.
        """
        node = owner.node_id
        assert node is not None
        if node in self._contacted:
            return
        self._contacted.add(node)
        self._outstanding += 1
        ctx = self._fork(parent_ctx)
        state = {"replied": False, "attempts": 0, "first_at": None}

        def close_contact(terminal: str = "") -> None:
            tel = self._telemetry
            if tel is not None and ctx is not None:
                tags = ctx.tags()
                tags.update(
                    server=node, mode="owner", owner=owner.owner_id,
                    attempts=state["attempts"],
                )
                if terminal:
                    tags["terminal"] = terminal
                tel.emit_span(
                    "query.contact", state["first_at"], self.sim.now, **tags
                )

        def ack_delivered() -> None:
            # A duplicate ack (slow first ack racing a retry's) must not
            # double-close the contact slot.
            if state["replied"]:
                return
            state["replied"] = True
            ev = state.get("timeout_event")
            if ev is not None:
                ev.cancel()
            close_contact()
            self._finish_one()

        def at_owner(msg: Message) -> None:
            dctx = self.network.delivery_trace
            first_arrival = node not in self.outcome.arrivals
            self.outcome.arrivals.setdefault(node, self.sim.now)
            tel = self._telemetry
            if first_arrival and tel is not None:
                actx = self._fork(dctx)
                tel.event(
                    "query.arrive", subject=f"owner node {node}", detail="",
                    **(actx.tags() if actx is not None else {}),
                )
            self._record_owner_answer(owner, node, self.sim.now, dctx)
            self._account(_ACK_BYTES)
            self.network.send(
                node,
                self.client_node,
                QUERY,
                _ACK_BYTES,
                on_delivery=lambda _msg: ack_delivered(),
                phase="response",
                kind="query-ack",
                trace=self._fork(dctx),
            )

        def attempt() -> None:
            state["attempts"] += 1
            if state["first_at"] is None:
                state["first_at"] = self.sim.now
            msg_ctx = self._fork(ctx)
            self._trace(
                "send",
                f"owner node {node}",
                f"mode=owner try={state['attempts']}",
            )
            self._account(self.query.size_bytes)
            self.network.send(
                self.client_node,
                node,
                QUERY,
                self.query.size_bytes,
                payload=self.query,
                on_delivery=at_owner,
                phase="forward",
                kind="query",
                on_rejected=rejected,
                trace=msg_ctx,
            )
            state["timeout_event"] = self.sim.schedule(
                self.timeout, expire, "query.timeout"
            )

        def retry_or_give_up(terminal: str) -> None:
            if state["attempts"] <= self.retries:
                self._trace(
                    "retry", f"owner node {node}", ctx=self._fork(ctx)
                )
                delay = self._retry_delay(state["attempts"] + 1)
                if delay > 0:
                    self.sim.schedule(delay, lambda: (
                        attempt() if not state["replied"] else None
                    ), "query.retry")
                else:
                    attempt()
                return
            state["replied"] = True
            if terminal == "shed":
                self.outcome.shed_servers.add(node)
            else:
                self.outcome.timed_out_servers.add(node)
            self._trace(terminal, f"owner node {node}", ctx=self._fork(ctx))
            close_contact(terminal)
            self._finish_one()

        def expire() -> None:
            if state["replied"]:
                return
            retry_or_give_up("timeout")

        def rejected(msg: Message) -> None:
            if state["replied"]:
                return
            self.outcome.rejections += 1
            ev = state.get("timeout_event")
            if ev is not None:
                ev.cancel()
            self._trace(
                "rejected", f"owner node {node}", ctx=self._fork(msg.trace)
            )
            retry_or_give_up("shed")

        attempt()

    def _on_redirects(self, decision: RoutingDecision, state: Dict) -> None:
        if state["replied"]:
            return
        state["replied"] = True
        ev = state.get("timeout_event")
        if ev is not None:
            ev.cancel()  # don't let dead timers drag the clock forward
        # Context of the response delivery: redirected contacts fork from
        # it, so the tree shows match -> response transit -> new contact.
        dctx = self.network.delivery_trace
        close_contact = state.get("close_contact")
        if close_contact is not None:
            close_contact()
        if not self._satisfied():
            if decision.redirect_ids or decision.owners_only_ids:
                self._trace(
                    "redirect",
                    f"server {decision.server_id}",
                    f"-> {decision.redirect_ids + decision.owners_only_ids}",
                    ctx=self._fork(dctx),
                )
            for rid in decision.redirect_ids:
                self._contact(rid, mode="descent", parent_ctx=dctx)
            for rid in decision.owners_only_ids:
                self._contact(rid, mode="local", parent_ctx=dctx)
        elif decision.redirect_ids or decision.owners_only_ids:
            self._trace("satisfied", f"server {decision.server_id}",
                        f"skipping {len(decision.redirect_ids)} redirects",
                        ctx=self._fork(dctx))
        self._finish_one()

    def _satisfied(self) -> bool:
        return (
            self.first_k is not None
            and self.outcome.total_matches >= self.first_k
        )

    def _finish_one(self) -> None:
        self._outstanding -= 1
        if self._outstanding == 0 and not self._done:
            self._done = True
            # Completed means the fan-out fully resolved; timed-out and
            # shed servers are reported separately on the outcome.
            self.outcome.completed = True
            tel = self._telemetry
            if tel is not None and self._root_ctx is not None:
                # The root span of this search's causal tree: it opens at
                # query initiation, so the critical path from the last
                # ``query.arrive`` telescopes to the reported latency.
                tel.emit_span(
                    "search", self.outcome.started_at, self.sim.now,
                    client=self.client_node,
                    start_server=self.outcome.start_server,
                    servers=len(self.outcome.arrivals),
                    **self._root_ctx.tags(),
                )
            if self.on_complete is not None:
                self.on_complete(self.outcome)
