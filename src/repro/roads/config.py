"""ROADS system configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..summaries.config import SummaryConfig


@dataclass(frozen=True)
class RoadsConfig:
    """Parameters of a simulated ROADS deployment.

    Defaults follow the paper's evaluation setup (Section V): 320 nodes,
    500 records each, a maximum of 8 children per server, 1000 histogram
    buckets per attribute, 5-D synthesized delay space. Every node is both
    a server and a resource owner controlling that server (so raw records
    stay local and only summaries travel).

    ``summary_interval`` is the paper's ``t_s`` (how often summaries are
    refreshed/propagated) and ``record_interval`` its ``t_r`` (how often
    records change); the analysis uses ``t_r / t_s = 0.1``.
    """

    num_nodes: int = 320
    records_per_node: int = 500
    max_children: int = 8
    summary: SummaryConfig = field(default_factory=SummaryConfig)
    summary_interval: float = 60.0
    record_interval: float = 6.0
    #: delta propagation: unchanged summaries send only a keep-alive
    #: header each epoch instead of the full summary
    delta_updates: bool = False
    # delay space calibration
    delay_scale_ms: float = 100.0
    delay_base_ms: float = 10.0
    delay_jitter_ms: float = 5.0
    #: probability that any individual message is silently lost in
    #: transit (update-plane robustness experiments; 0 disables)
    loss_rate: float = 0.0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.records_per_node < 0:
            raise ValueError("records_per_node must be >= 0")
        if self.max_children < 1:
            raise ValueError("max_children must be >= 1")
        if self.summary_interval <= 0 or self.record_interval <= 0:
            raise ValueError("update intervals must be positive")
        if not (0.0 <= self.loss_rate < 1.0):
            raise ValueError(
                f"loss_rate must be in [0, 1), got {self.loss_rate}"
            )
