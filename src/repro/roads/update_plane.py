"""The event-driven summary update plane.

Historically one call to :meth:`RoadsSystem.refresh` ran bottom-up
aggregation and overlay replication as synchronous in-place passes over
the whole hierarchy: correct byte accounting, but no summary ever
actually crossed the simulated network — a lost update could not make a
summary stale, so the paper's soft-state/TTL story was untestable.

:class:`UpdatePlane` moves both passes onto the message fabric. Every
server is a protocol actor: it periodically exports its branch summary
to its parent and pushes its summaries to its overlay holders through
:meth:`~repro.net.transport.Network.send`, as distinct ``summary-full``
/ ``summary-keepalive`` message kinds. Installation happens at delivery
time at the receiver (:meth:`SummaryUpdate.install`); a lost full send
leaves the receiver silently rejecting the sender's keep-alives until
the held content ages past its TTL — genuine observable staleness — and
the sender's periodic forced full (``refresh_after``) heals it.

Two driving modes:

* :meth:`run_epoch` — one coordinated epoch, drained to quiescence:
  exports are staggered deepest-first so each parent hears all its
  children before it reports upward, making a loss-free epoch
  byte-for-byte identical to the old synchronous rounds (figures and
  committed benchmark baselines still reproduce).
* :meth:`start` — free-running per-server periodic ticks with jitter,
  for experiments that measure propagation lag and staleness under
  message loss.

:meth:`measure_epoch` answers "what would one epoch cost?" without
perturbing any protocol state (summaries, delta fingerprints, owner
exports are snapshot and restored) — the observer effect that used to
make ``update_bytes_per_epoch()`` change subsequent epochs is gone.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

import numpy as np

from ..hierarchy.aggregation import (
    AggregationReport,
    SummaryExporter,
    SummaryUpdate,
    aggregate_round,
    build_owner_export,
    install_batch,
)
from ..hierarchy.join import Hierarchy
from ..hierarchy.node import Server
from ..net.transport import (
    Message,
    Network,
    SUMMARY_FULL,
    SUMMARY_KEEPALIVE,
)
from ..overlay.replication import (
    ReplicaPusher,
    ReplicationOverlay,
    ReplicationReport,
)
from ..sim.engine import PeriodicTask, Simulator
from ..sim.metrics import UPDATE
from ..summaries.config import SummaryConfig
from ..telemetry.core import Telemetry


@dataclass
class UpdateRoundReport:
    """Byte accounting for one summary epoch (t_s)."""

    aggregation: AggregationReport
    replication: ReplicationReport

    @property
    def total_bytes(self) -> int:
        return self.aggregation.total_bytes + self.replication.replication_bytes

    @property
    def total_messages(self) -> int:
        return self.aggregation.messages + self.replication.messages


@dataclass
class PlaneCounters:
    """Cumulative update-plane accounting (epoch reports diff snapshots)."""

    export_bytes: int = 0
    export_messages: int = 0
    aggregation_bytes: int = 0
    aggregation_messages: int = 0
    full_reports: int = 0
    keepalive_reports: int = 0
    replication_bytes: int = 0
    replication_messages: int = 0
    full_sends: int = 0
    keepalive_sends: int = 0
    #: delivery-time outcomes
    installed: int = 0
    refreshed: int = 0
    ignored: int = 0
    #: terminal message dispositions that never reached a handler
    lost: int = 0
    dropped: int = 0
    #: soft-state entries that aged past their TTL and were removed
    expired: int = 0
    #: full-summary install lag (send -> install), streaming moments
    install_lag_sum: float = 0.0
    install_lag_max: float = 0.0
    installs_timed: int = 0


class UpdatePlane:
    """Per-server summary export/replication actors on the simulator."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        hierarchy: Hierarchy,
        overlay: ReplicationOverlay,
        *,
        interval: float = 60.0,
        delta: bool = False,
        refresh_after: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.sim = sim
        self.network = network
        self.hierarchy = hierarchy
        self.overlay = overlay
        self.config: SummaryConfig = overlay.config
        self.interval = interval
        self.delta = delta
        self.refresh_after = (
            refresh_after if refresh_after is not None else self.config.ttl
        )
        self.telemetry = telemetry
        # Cached like Network's: the disabled path stays one attribute test.
        self._profiler = telemetry.profiler if telemetry is not None else None
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.counters = PlaneCounters()
        self.epochs = 0
        self.ticks = 0
        self._exporters: Dict[int, SummaryExporter] = {}
        self._pushers: Dict[int, ReplicaPusher] = {}
        #: messages and scheduled epoch events not yet terminally resolved
        self._inflight = 0
        self._tasks: Dict[int, PeriodicTask] = {}
        network.register_kind(SUMMARY_FULL, self._on_update)
        network.register_kind(SUMMARY_KEEPALIVE, self._on_update)
        # Batched fan-out deliveries (send_many groups) install a whole
        # (destination, tick) group of summaries in one handler call.
        network.register_kind_batch(SUMMARY_FULL, self._on_update_batch)
        network.register_kind_batch(SUMMARY_KEEPALIVE, self._on_update_batch)

    @property
    def inflight(self) -> int:
        """Update messages and epoch events not yet terminally resolved
        (read-only gauge for the time-series plane)."""
        return self._inflight

    # -- actor registry ----------------------------------------------------------
    def _exporter(self, server: Server) -> SummaryExporter:
        ex = self._exporters.get(server.server_id)
        if ex is None or ex.server is not server:
            ex = SummaryExporter(
                server, self.config,
                delta=self.delta, refresh_after=self.refresh_after,
            )
            self._exporters[server.server_id] = ex
        return ex

    def _pusher(self, server: Server) -> ReplicaPusher:
        pu = self._pushers.get(server.server_id)
        if pu is None or pu.server is not server:
            pu = ReplicaPusher(
                server, self.overlay,
                delta=self.delta, refresh_after=self.refresh_after,
            )
            self._pushers[server.server_id] = pu
        return pu

    # -- message plumbing --------------------------------------------------------
    def _send_update(
        self, src: int, dst: int, update: SummaryUpdate, size: int, phase: str
    ) -> None:
        self._inflight += 1
        kind = SUMMARY_KEEPALIVE if update.summary is None else SUMMARY_FULL
        tel = self.telemetry
        # Each update delivery is its own causal root: the interesting
        # tree is short (send -> transit -> install outcome) but it gives
        # stale-summary debugging the exact message that refreshed — or
        # failed to refresh — a receiver's soft state.
        # No baggage: the net.* events already label kind and phase, and
        # baggage keys must not collide with per-event tag names.
        ctx = tel.new_trace() if tel is not None else None
        self.network.send(
            src, dst, UPDATE, size,
            payload=update, phase=phase, kind=kind,
            on_dropped=self._on_dropped,
            trace=ctx,
        )

    def _on_dropped(self, msg: Message, reason: str) -> None:
        self._inflight -= 1
        if reason == "lost":
            self.counters.lost += 1
        else:
            self.counters.dropped += 1

    def _on_update(self, msg: Message) -> None:
        prof = self._profiler
        if prof is None:
            self._install(msg, self.network.delivery_trace)
            return
        prof.enter("update.install")
        try:
            self._install(msg, self.network.delivery_trace)
        finally:
            prof.exit()

    def _on_update_batch(self, msgs: List[Message]) -> None:
        """Install a same-kind ``(destination, tick)`` delivery group.

        One ``update.install`` frame and one hierarchy lookup cover the
        whole group (every message shares the destination); per-message
        outcome accounting is identical to the singleton path (batch
        dispatch leaves the shared ``delivery_trace`` unset, so each
        message's own trace provides the causal parent).
        """
        prof = self._profiler
        if prof is None:
            self._install_group(msgs)
            return
        prof.enter("update.install")
        try:
            self._install_group(msgs)
        finally:
            prof.exit()

    def _install_group(self, msgs: List[Message]) -> None:
        self._inflight -= len(msgs)
        c = self.counters
        try:
            server = self.hierarchy.get(msgs[0].dst)
        except KeyError:
            c.ignored += len(msgs)  # receiver left the federation in flight
            return
        now = self.sim.now
        outcomes = install_batch(server, [m.payload for m in msgs], now)
        tel = self.telemetry
        for msg, outcome in zip(msgs, outcomes):
            if tel is not None:
                dctx = tel.fork(msg.trace)
                tel.event(
                    "update.deliver", server=msg.dst, src=msg.src,
                    kind=msg.kind, msg_id=msg.msg_id, outcome=outcome,
                    **(dctx.tags() if dctx is not None else {}),
                )
            if outcome == "installed":
                c.installed += 1
                summary = msg.payload.summary
                if summary is not None:
                    lag = now - summary.created_at
                    c.install_lag_sum += lag
                    c.installs_timed += 1
                    if lag > c.install_lag_max:
                        c.install_lag_max = lag
            elif outcome == "refreshed":
                c.refreshed += 1
            else:
                c.ignored += 1

    def _install(self, msg: Message, ctx) -> None:
        self._inflight -= 1
        c = self.counters
        try:
            server = self.hierarchy.get(msg.dst)
        except KeyError:
            c.ignored += 1  # receiver left the federation in flight
            return
        update: SummaryUpdate = msg.payload
        outcome = update.install(server, self.sim.now)
        tel = self.telemetry
        if tel is not None:
            dctx = tel.fork(ctx)
            tel.event(
                "update.deliver", server=msg.dst, src=msg.src,
                kind=msg.kind, msg_id=msg.msg_id, outcome=outcome,
                **(dctx.tags() if dctx is not None else {}),
            )
        if outcome == "installed":
            c.installed += 1
            if update.summary is not None:
                lag = self.sim.now - update.summary.created_at
                c.install_lag_sum += lag
                c.installs_timed += 1
                if lag > c.install_lag_max:
                    c.install_lag_max = lag
        elif outcome == "refreshed":
            c.refreshed += 1
        else:
            c.ignored += 1

    # -- per-server protocol steps -------------------------------------------------
    def _export_guest_owners(self, server: Server) -> None:
        """Guest owners re-export their summary to their attachment point."""
        now = self.sim.now
        for owner in server.owners:
            if owner.controls_server:
                continue
            update, size = build_owner_export(owner, self.config, now)
            self.counters.export_bytes += size
            self.counters.export_messages += 1
            src = owner.node_id if owner.node_id is not None else server.server_id
            self._send_update(src, server.server_id, update, size, "export")

    def _export_to_parent(self, server: Server, *, force_full: bool = False) -> None:
        prof = self._profiler
        if prof is not None:
            prof.enter("update.aggregate")
        try:
            built = self._exporter(server).build_update(
                self.sim.now, force_full=force_full
            )
            if built is not None:
                update, size = built
                c = self.counters
                c.aggregation_bytes += size
                c.aggregation_messages += 1
                if update.summary is None and update.fingerprint is not None:
                    c.keepalive_reports += 1
                elif update.summary is not None:
                    c.full_reports += 1
                self._send_update(
                    server.server_id, server.parent.server_id,
                    update, size, "aggregate",
                )
        finally:
            if prof is not None:
                prof.exit()

    def _push_replicas(self, server: Server, *, force_full: bool = False) -> None:
        prof = self._profiler
        if prof is not None:
            prof.enter("update.replicate")
        try:
            pushes = self._pusher(server).build_updates(
                self.sim.now, force_full=force_full
            )
            if not pushes:
                return
            # The whole replica fan-out of this server's tick goes out as
            # one batch: per-message accounting (loss draws in push
            # order, counters, traces) matches the historical one-send-
            # per-push loop exactly, but same-(holder, kind) messages
            # share a delivery event and install as one group.
            c = self.counters
            tel = self.telemetry
            requests = []
            for holder_id, update, size in pushes:
                c.replication_bytes += size
                c.replication_messages += 1
                if update.summary is None:
                    c.keepalive_sends += 1
                    kind = SUMMARY_KEEPALIVE
                else:
                    c.full_sends += 1
                    kind = SUMMARY_FULL
                ctx = tel.new_trace() if tel is not None else None
                requests.append((holder_id, size, update, kind, ctx))
            self._inflight += len(requests)
            self.network.send_many(
                server.server_id, requests, UPDATE,
                phase="replicate", on_dropped=self._on_dropped,
            )
        finally:
            if prof is not None:
                prof.exit()

    # -- coordinated epochs (refresh() compatibility) ------------------------------
    def _schedule(self, delay: float, fn) -> None:
        """Schedule an epoch step, tracked by the in-flight counter."""
        self._inflight += 1

        def step() -> None:
            self._inflight -= 1
            fn()

        self.sim.schedule(
            delay, step,
            None if self._profiler is None else "update.epoch",
        )

    def _cascade_stagger(self) -> float:
        """Per-level slot width: every report lands within one slot.

        At least the worst one-way latency of any parent-child or
        guest-owner-attachment edge plus the receiver processing delay,
        stretched slightly so a level's deliveries strictly precede the
        next level's export events.
        """
        net = self.network
        worst = 0.0
        for server in self.hierarchy:
            sid = server.server_id
            if server.parent is not None:
                lat = net.latency(sid, server.parent.server_id)
                if lat > worst:
                    worst = lat
            for owner in server.owners:
                if not owner.controls_server and owner.node_id is not None:
                    lat = net.latency(owner.node_id, sid)
                    if lat > worst:
                        worst = lat
        return (worst + net.processing_delay) * 1.001 + 1e-9

    def trigger_epoch(self) -> None:
        """Schedule one coordinated epoch: deepest servers export first.

        Guest owners export at slot zero; a server at depth ``d``
        exports (and pushes its replicas) at slot ``max_depth - d + 1``,
        so its children's reports — and therefore exactly the branch
        summary the old synchronous post-order pass would have built —
        have arrived by the time it runs.
        """
        stagger = self._cascade_stagger()
        max_depth = 0
        for server in self.hierarchy:
            if server.alive and server.depth > max_depth:
                max_depth = server.depth
        for server in list(self.hierarchy):
            if any(not o.controls_server for o in server.owners):
                self._schedule(
                    0.0, lambda s=server: self._export_guest_owners(s)
                )
            if not server.alive:
                continue
            slot = (max_depth - server.depth + 1) * stagger

            def act(s: Server = server) -> None:
                self.counters.expired += s.expire_stale_summaries(self.sim.now)
                if s.parent is not None:
                    self._export_to_parent(s)
                self._push_replicas(s)

            self._schedule(slot, act)

    def drain(self) -> None:
        """Step the simulator until every epoch step and message resolves."""
        while self._inflight > 0 and self.sim.step():
            pass

    def run_epoch(self) -> UpdateRoundReport:
        """One epoch, drained to quiescence; returns its byte accounting."""
        before = replace(self.counters)
        t0 = self.sim.now
        self.trigger_epoch()
        self.drain()
        self.epochs += 1
        c = self.counters
        agg = AggregationReport(
            export_bytes=c.export_bytes - before.export_bytes,
            aggregation_bytes=c.aggregation_bytes - before.aggregation_bytes,
            messages=c.aggregation_messages - before.aggregation_messages,
            full_reports=c.full_reports - before.full_reports,
            keepalive_reports=c.keepalive_reports - before.keepalive_reports,
        )
        rep = ReplicationReport(
            replication_bytes=c.replication_bytes - before.replication_bytes,
            messages=c.replication_messages - before.replication_messages,
            full_sends=c.full_sends - before.full_sends,
            keepalive_sends=c.keepalive_sends - before.keepalive_sends,
        )
        tel = self.telemetry
        if tel is not None:
            now = self.sim.now
            tel.emit_span(
                "update.aggregate", t0, now,
                bytes=agg.total_bytes, messages=agg.messages,
                full_reports=agg.full_reports,
                keepalive_reports=agg.keepalive_reports, delta=self.delta,
            )
            tel.emit_span(
                "update.replicate", t0, now,
                bytes=rep.replication_bytes, messages=rep.messages,
                full_sends=rep.full_sends,
                keepalive_sends=rep.keepalive_sends, delta=self.delta,
            )
        return UpdateRoundReport(aggregation=agg, replication=rep)

    # -- free-running mode ---------------------------------------------------------
    def start(self, *, jitter: float = 0.05) -> None:
        """Run every server's update actor periodically (paper's t_s).

        First ticks are spread uniformly over one interval so the plane
        has no global phase; subsequent ticks jitter independently.
        Opt-in: coordinated :meth:`run_epoch` callers never pay for (or
        observe) background traffic they didn't ask for.
        """
        if self._tasks:
            return
        for server in list(self.hierarchy):
            sid = server.server_id
            first = float(self._rng.random()) * self.interval
            self._tasks[sid] = self.sim.schedule_periodic(
                self.interval,
                lambda s=sid: self._tick(s),
                first_delay=first,
                jitter=jitter,
                rng=self._rng,
                label=None if self._profiler is None else "update.tick",
            )

    def stop(self) -> None:
        for task in self._tasks.values():
            task.stop()
        self._tasks.clear()

    def _tick(self, server_id: int) -> None:
        try:
            server = self.hierarchy.get(server_id)
        except KeyError:
            task = self._tasks.pop(server_id, None)
            if task is not None:
                task.stop()
            return
        if not server.alive:
            return
        self.ticks += 1
        self.counters.expired += server.expire_stale_summaries(self.sim.now)
        self._export_guest_owners(server)
        if server.parent is not None:
            self._export_to_parent(server)
        self._push_replicas(server)

    # -- maintenance hooks -----------------------------------------------------------
    def on_rejoin(self, server: Server) -> None:
        """A server re-attached under a new parent: re-export immediately.

        The exporter forgets its previous parent, forcing the next report
        to carry the full branch summary (the new parent holds no state
        for this child), and an export fires right away rather than
        waiting out the current period.
        """
        self._exporter(server).forget_parent()
        if server.parent is not None and server.alive:
            self._schedule(0.0, lambda: (
                self._export_to_parent(server)
                if server.parent is not None and server.alive
                else None
            ))

    def heartbeat_fingerprint(self, server: Server) -> Optional[bytes]:
        """Fingerprint a child piggybacks on its parent heartbeat."""
        return server.last_reported_fingerprint

    def on_heartbeat_fingerprint(
        self, parent: Server, child_id: int, fingerprint: bytes
    ) -> bool:
        """Child heartbeat carried a summary fingerprint: refresh TTL.

        Same acceptance rule as a keep-alive message: the parent's held
        child summary is re-stamped only when the content matches.
        """
        ok = parent.refresh_summary(
            "child", child_id, fingerprint, self.sim.now
        )
        if ok:
            self.counters.refreshed += 1
        return ok

    # -- measurement -----------------------------------------------------------------
    def measure_epoch(self) -> UpdateRoundReport:
        """Cost of one epoch *without* running one.

        Runs the legacy synchronous rounds — whose byte model a drained
        loss-free epoch matches exactly — against a snapshot of all
        protocol soft state, then restores it: summaries, delta
        fingerprints and owner exports are untouched, no messages are
        sent, and the virtual clock does not advance.

        The legacy model has no anti-entropy: when more than
        ``refresh_after`` has passed since a sender's last full send, a
        real epoch forces a full re-send where this measurement counts a
        keep-alive. Within one ``refresh_after`` of the previous epoch
        (the steady state every figure runs in) the two agree exactly.
        """
        now = self.sim.now
        saved = [
            (
                server,
                dict(server.child_summaries),
                dict(server.replicated_summaries),
                dict(server.replicated_local_summaries),
                server.last_reported_fingerprint,
                [(o, o.summary) for o in server.owners],
            )
            for server in self.hierarchy
        ]
        saved_fp = dict(self.overlay._last_fp)
        try:
            agg = aggregate_round(
                self.hierarchy, self.config, now, None, delta=self.delta
            )
            rep = self.overlay.replicate_round(now, None, delta=self.delta)
        finally:
            for server, child, rep_t, rep_local, fp, owners in saved:
                server.child_summaries = child
                server.replicated_summaries = rep_t
                server.replicated_local_summaries = rep_local
                server.last_reported_fingerprint = fp
                for owner, summary in owners:
                    owner.summary = summary
            self.overlay._last_fp = saved_fp
        return UpdateRoundReport(aggregation=agg, replication=rep)

    def staleness_snapshot(
        self, *, stale_after: Optional[float] = None
    ) -> Dict[str, float]:
        """Age statistics over every held soft-state summary, right now.

        ``stale_after`` defaults to 1.5 update intervals: in loss-free
        steady state every entry is refreshed once per interval, so
        anything older has missed at least one update.
        """
        threshold = (
            stale_after if stale_after is not None else 1.5 * self.interval
        )
        ages: List[float] = []
        now = self.sim.now
        for server in self.hierarchy:
            ages.extend(server.summary_ages(now))
        n = len(ages)
        c = self.counters
        return {
            "entries": float(n),
            "age_mean": float(sum(ages) / n) if n else 0.0,
            "age_max": float(max(ages)) if n else 0.0,
            "stale_fraction": (
                float(sum(1 for a in ages if a > threshold) / n) if n else 0.0
            ),
            "expired": float(c.expired),
            "lost": float(c.lost),
            "installed": float(c.installed),
            "refreshed": float(c.refreshed),
            "rejected": float(c.ignored),
            "install_lag_mean": (
                c.install_lag_sum / c.installs_timed if c.installs_timed else 0.0
            ),
            "install_lag_max": c.install_lag_max,
        }
