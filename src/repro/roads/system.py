"""The assembled ROADS system.

:class:`RoadsSystem` wires together every substrate: the simulator, delay
space and network, the federated hierarchy, bottom-up aggregation, the
replication overlay, per-owner sharing policies, and client-driven query
execution. This is the library's primary entry point::

    from repro.roads import RoadsSystem, RoadsConfig, SearchRequest
    from repro.workload import WorkloadConfig, generate_node_stores

    cfg = RoadsConfig(num_nodes=64, records_per_node=100)
    stores = generate_node_stores(WorkloadConfig(num_nodes=64, records_per_node=100))
    system = RoadsSystem.build(cfg, stores)
    result = system.search(SearchRequest(query))
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..net.coordinates import DelaySpace
from ..net.transport import Network, ServiceConfig
from ..query.query import Query
from ..records.store import RecordStore
from ..sim.engine import Simulator
from ..sim.metrics import QUERY, UPDATE, MetricsCollector
from ..sim.rng import SeedSequenceFactory
from ..hierarchy.join import Hierarchy, build_hierarchy
from ..hierarchy.maintenance import MaintenanceConfig, MaintenanceProtocol
from ..hierarchy.node import AttachedOwner, Server
from ..overlay.replication import ReplicationOverlay
from ..telemetry.core import Telemetry
from .client import QueryExecution, QueryOutcome
from .config import RoadsConfig
from .search import PendingSearch, SearchRequest, SearchResult
from .policy import PolicyTable, SharingPolicy
from .update_plane import UpdatePlane, UpdateRoundReport


@dataclass
class GuestOwner:
    """A resource owner without a server of its own (Figure 1, owner D).

    The guest lives at its own network node, attaches to an existing
    server (``attach_to``), and exports only a summary there — keeping
    its detailed records to itself. Queries matching the summary cost the
    client one extra hop to the guest's node.
    """

    store: RecordStore
    attach_to: int
    owner_id: Optional[str] = None


class RoadsSystem:
    """A simulated ROADS federation."""

    def __init__(
        self,
        config: RoadsConfig,
        sim: Simulator,
        network: Network,
        hierarchy: Hierarchy,
        overlay: ReplicationOverlay,
        policies: PolicyTable,
        telemetry: Optional[Telemetry] = None,
    ):
        self.config = config
        self.sim = sim
        self.network = network
        self.hierarchy = hierarchy
        self.overlay = overlay
        self.policies = policies
        self.metrics = network.metrics
        self.telemetry = telemetry
        #: the event-driven summary plane; ``build`` wires one in, and
        #: :meth:`refresh` lazily creates one for hand-assembled systems
        self.update_plane: Optional[UpdatePlane] = None
        self.maintenance: Optional[MaintenanceProtocol] = None
        #: the shadow-oracle quality plane (:meth:`attach_quality`);
        #: strictly read-only — attaching it never perturbs the sim
        self.quality = None
        self._rng = np.random.default_rng(config.seed)
        self.last_update_report: Optional[UpdateRoundReport] = None
        # guest owner -> current attachment server id
        self._guest_attachment: Dict[str, int] = {}
        self._guest_owners: Dict[str, AttachedOwner] = {}

    # -- construction ------------------------------------------------------------
    @classmethod
    def build(
        cls,
        config: RoadsConfig,
        stores: Sequence[RecordStore],
        *,
        join_order: Optional[Sequence[int]] = None,
        guests: Sequence[GuestOwner] = (),
        refresh: bool = True,
        telemetry: Optional[Telemetry] = None,
    ) -> "RoadsSystem":
        """Build a federation of ``len(stores)`` nodes.

        Node ``i`` runs server ``i`` and owns ``stores[i]``, attached to its
        own server (raw records stay local; only summaries travel — the
        paper's evaluation setup). A custom *join_order* permutes the
        incremental joins (the first id becomes the root).

        *guests* are additional resource owners without servers: guest
        ``g`` occupies network node ``num_nodes + g`` and exports only a
        summary to its chosen attachment server.
        """
        n = len(stores)
        if n != config.num_nodes:
            raise ValueError(
                f"config.num_nodes={config.num_nodes} but {n} stores supplied"
            )
        seeds = SeedSequenceFactory(config.seed)
        sim = Simulator()
        delay_space = DelaySpace(
            n + len(guests),
            seeds.generator("delay-space"),
            scale_ms=config.delay_scale_ms,
            base_ms=config.delay_base_ms,
            jitter_ms=config.delay_jitter_ms,
        )
        if telemetry is not None:
            telemetry.bind_clock(lambda: sim.now)
            # Wall-clock profiling: the engine holds its own reference so
            # event dispatch stays a single attribute check when disabled.
            sim.profiler = telemetry.profiler
        network = Network(
            sim, delay_space, MetricsCollector(),
            loss_rate=config.loss_rate,
            rng=(
                seeds.generator("net-loss") if config.loss_rate > 0 else None
            ),
            telemetry=telemetry,
        )
        order = list(join_order) if join_order is not None else list(range(n))
        if sorted(order) != list(range(n)):
            raise ValueError("join_order must be a permutation of node ids")
        servers = [
            Server(i, max_children=config.max_children) for i in order
        ]
        hierarchy = build_hierarchy(servers)
        for i in range(n):
            hierarchy.get(i).attach_owner(
                AttachedOwner(
                    owner_id=f"owner-{i}",
                    origin=stores[i],
                    controls_server=True,
                    node_id=i,
                )
            )
        guest_owners = []
        for g, guest in enumerate(guests):
            if not (0 <= guest.attach_to < n):
                raise ValueError(
                    f"guest {g} attach_to={guest.attach_to} is not a server id"
                )
            owner = AttachedOwner(
                owner_id=guest.owner_id or f"guest-{g}",
                origin=guest.store,
                controls_server=False,
                node_id=n + g,
            )
            hierarchy.get(guest.attach_to).attach_owner(owner)
            guest_owners.append((owner, guest.attach_to))
        overlay = ReplicationOverlay(hierarchy, config.summary)
        system = cls(
            config, sim, network, hierarchy, overlay, PolicyTable(),
            telemetry=telemetry,
        )
        system.update_plane = UpdatePlane(
            sim, network, hierarchy, overlay,
            interval=config.summary_interval,
            delta=config.delta_updates,
            rng=seeds.generator("update-plane"),
            telemetry=telemetry,
        )
        for owner, sid in guest_owners:
            system._guest_owners[owner.owner_id] = owner
            system._guest_attachment[owner.owner_id] = sid
        if refresh:
            system.refresh()
        return system

    # -- guest attachment maintenance ---------------------------------------------
    def reattach_orphaned_guests(self) -> int:
        """Re-home guests whose attachment point died.

        Attachment-point selection "follows a similar process as choosing
        a parent server" (Section III-A); we pick the alive server
        nearest to the guest's own node. Returns how many guests moved.
        Run :meth:`refresh` afterwards so the new summaries propagate.
        """
        moved = 0
        alive_ids = [s.server_id for s in self.hierarchy if s.alive]
        if not alive_ids:
            return 0
        for owner_id, sid in list(self._guest_attachment.items()):
            healthy = (
                sid in self.hierarchy
                and self.hierarchy.get(sid).alive
                and not self.network.is_failed(sid)
            )
            if healthy:
                continue
            owner = self._guest_owners[owner_id]
            # Detach from the dead server if the object still lists us.
            if sid in self.hierarchy:
                self.hierarchy.get(sid).detach_owner(owner_id)
            new_sid = self.network.delay_space.nearest(owner.node_id, alive_ids)
            self.hierarchy.get(new_sid).attach_owner(owner)
            self._guest_attachment[owner_id] = new_sid
            moved += 1
        return moved

    # -- policies ----------------------------------------------------------------
    def set_policy(self, owner_id: str, policy: SharingPolicy) -> None:
        self.policies.set(owner_id, policy)

    # -- updates ----------------------------------------------------------------
    def _plane(self) -> UpdatePlane:
        if self.update_plane is None:
            # Hand-assembled system (tests building the pieces directly):
            # attach a plane with the config's update parameters.
            self.update_plane = UpdatePlane(
                self.sim, self.network, self.hierarchy, self.overlay,
                interval=self.config.summary_interval,
                delta=self.config.delta_updates,
                telemetry=self.telemetry,
            )
        return self.update_plane

    def refresh(self) -> UpdateRoundReport:
        """One summary epoch, driven through the message fabric.

        Compatibility shim over :meth:`UpdatePlane.run_epoch`: triggers a
        coordinated epoch (guest exports, then bottom-up reports deepest
        level first, replica pushes alongside) and drains the simulator
        to quiescence, so callers see the same completed-epoch semantics
        — and, loss-free, the same byte totals — as the old synchronous
        in-place rounds. The virtual clock advances by the epoch's real
        propagation time.
        """
        report = self._plane().run_epoch()
        self.last_update_report = report
        if self.telemetry is not None:
            self.telemetry.event(
                "update.epoch",
                aggregation_bytes=report.aggregation.total_bytes,
                replication_bytes=report.replication.replication_bytes,
            )
        return report

    def update_bytes_per_epoch(self) -> int:
        """Bytes one summary epoch costs (measured, not modelled).

        A pure measurement: protocol soft state (summaries, delta
        fingerprints, owner exports) is snapshot and restored, so asking
        the question does not change what the next epoch sends.
        """
        return self._plane().measure_epoch().total_bytes

    def update_overhead(self, window_seconds: float) -> int:
        """Total update bytes over *window_seconds* of operation.

        Summaries refresh every ``summary_interval`` (t_s); one epoch's
        cost is measured and multiplied by the number of epochs.
        """
        epochs = max(1, int(round(window_seconds / self.config.summary_interval)))
        return self.update_bytes_per_epoch() * epochs

    # -- the serving plane -------------------------------------------------------
    def _resolve_entry(self, request: SearchRequest) -> tuple:
        """(client node, entry server) for one request.

        A missing client is drawn uniformly (the evaluation's default).
        With the replication overlay the search starts at the client's
        own node; without it every query must start at the root. A
        *scope* enters at the scope server; an explicit *start_server*
        forces the entry (consistency with *scope* was already checked
        by :class:`SearchRequest`).
        """
        client = request.client_node
        if client is None:
            client = int(self._rng.integers(0, len(self.hierarchy)))
        if request.scope is not None:
            start = request.scope
        elif request.start_server is not None:
            start = request.start_server
        else:
            start = (
                client
                if request.use_overlay
                else self.hierarchy.root.server_id
            )
        return client, start

    def attach_quality(self, plane=None):
        """Arm the shadow-oracle quality plane on this system.

        Every completed search is then audited against ground truth
        recomputed from the authoritative leaf stores and the resulting
        :class:`~repro.telemetry.quality.QualityReport` rides on the
        :class:`SearchResult`. The audit only reads state, so the
        simulated behaviour stays byte-identical per seed.
        """
        if plane is None:
            from ..telemetry.quality import QualityPlane

            plane = QualityPlane(self)
        self.quality = plane
        return plane

    def _audit_quality(self, request, outcome):
        """Run the oracle audit (if armed) under its own profiler frame."""
        if self.quality is None:
            return None
        tel = self.telemetry
        prof = tel.profiler if tel is not None else None
        if prof is not None:
            prof.enter("quality.audit")
        try:
            return self.quality.audit(request, outcome)
        finally:
            if prof is not None:
                prof.exit()

    def _make_execution(
        self,
        request: SearchRequest,
        client: int,
        start: int,
        on_complete=None,
        trace_parent=None,
    ) -> QueryExecution:
        return QueryExecution(
            self.sim,
            self.network,
            self.hierarchy,
            self.config.summary,
            self.policies,
            request.query,
            client,
            start,
            collect_records=request.collect_records,
            timeout=request.retry.timeout,
            retries=request.retry.retries,
            backoff_base=request.retry.backoff_base,
            backoff_factor=request.retry.backoff_factor,
            first_k=request.first_k,
            trace=request.trace,
            telemetry=self.telemetry,
            on_complete=on_complete,
            trace_parent=trace_parent,
            quality=self.quality,
        )

    def search(
        self, request: SearchRequest, *, trace_parent=None
    ) -> SearchResult:
        """Run one request to completion; the canonical query entry point.

        Drives the shared simulator until the query fully resolves
        (other in-flight activity — update plane, heartbeats — runs
        interleaved). For many concurrent queries use :meth:`submit` or
        :meth:`search_many` with arrival offsets.
        """
        client, start = self._resolve_entry(request)
        execution = self._make_execution(
            request, client, start, trace_parent=trace_parent
        )
        tel = self.telemetry
        prof = tel.profiler if tel is not None else None
        # The query frame opens *around* the dispatch loop the execution
        # drives, so in the call-path tree query-time decomposes into the
        # labeled events processed on this query's behalf.
        if prof is not None:
            prof.enter("query.execute")
        span = (
            tel.span(
                "query.execute",
                client=client,
                start=start,
                overlay=request.use_overlay,
                scope=request.scope,
            )
            if tel is not None
            else None
        )
        submitted = self.sim.now
        try:
            outcome = execution.run(mode=request.entry_mode)
        except BaseException:
            if span is not None:
                span.close()
            raise
        finally:
            if prof is not None:
                prof.exit()
        if span is not None:
            span.annotate(
                servers=outcome.servers_contacted,
                matches=outcome.total_matches,
            )
            span.close()
        self.metrics.registry.observe(
            "query.latency", outcome.latency, server=start
        )
        return SearchResult(
            request=request,
            outcome=outcome,
            submitted_at=submitted,
            finished_at=self.sim.now,
            quality=self._audit_quality(request, outcome),
        )

    def submit(
        self,
        request: SearchRequest,
        *,
        on_complete=None,
        trace_parent=None,
    ) -> PendingSearch:
        """Start a query **without** driving the simulator (non-blocking).

        The serving-plane primitive: the first contact goes out now, and
        the query resolves as the shared dispatcher is driven — by a
        surrounding :meth:`search_many`, a
        :class:`~repro.roads.load.LoadGenerator`, or a manual
        ``sim.step()`` loop — interleaved with every other in-flight
        query, the free-running update plane and maintenance traffic.
        *on_complete* (if given) fires with the :class:`SearchResult`
        the moment the query fully resolves.
        """
        client, start = self._resolve_entry(request)
        pending = PendingSearch(request=request)
        submitted = self.sim.now

        def finish(outcome: QueryOutcome) -> None:
            result = SearchResult(
                request=request,
                outcome=outcome,
                submitted_at=submitted,
                finished_at=self.sim.now,
                quality=self._audit_quality(request, outcome),
            )
            pending.result = result
            self.metrics.registry.observe(
                "query.latency", outcome.latency, server=start
            )
            if self.telemetry is not None:
                self.telemetry.emit_span(
                    "query.execute", submitted, self.sim.now,
                    client=client, start=start,
                    overlay=request.use_overlay, scope=request.scope,
                    servers=outcome.servers_contacted,
                    matches=outcome.total_matches,
                    shed=len(outcome.shed_servers),
                )
            if on_complete is not None:
                on_complete(result)

        execution = self._make_execution(
            request, client, start, on_complete=finish,
            trace_parent=trace_parent,
        )
        pending.execution = execution
        execution.start(mode=request.entry_mode)
        return pending

    def search_many(
        self,
        requests: Sequence[SearchRequest],
        *,
        arrivals: Optional[Sequence[float]] = None,
    ) -> List[SearchResult]:
        """Serve a batch of requests; results in request order.

        Without *arrivals*, requests run back-to-back (each drained to
        completion before the next starts — the legacy sequential
        semantics, bit-identical to the old ``execute_queries``). With
        *arrivals* — per-request submission offsets in seconds from now
        — all queries are multiplexed concurrently over the shared
        dispatcher and the simulator is driven until every one resolves.
        """
        requests = list(requests)
        if arrivals is None:
            return [self.search(r) for r in requests]
        offsets = [float(a) for a in arrivals]
        if len(offsets) != len(requests):
            raise ValueError(
                f"{len(requests)} requests but {len(offsets)} arrivals"
            )
        pendings: List[Optional[PendingSearch]] = [None] * len(requests)
        for i, (req, at) in enumerate(zip(requests, offsets)):
            def launch(i=i, req=req) -> None:
                pendings[i] = self.submit(req)

            self.sim.schedule(at, launch, "query.submit")
        while (
            any(p is None or not p.done for p in pendings) and self.sim.step()
        ):
            pass
        return [p.result for p in pendings]

    def widening(
        self, request: SearchRequest, *, min_matches: int = 1
    ) -> List[SearchResult]:
        """Scope-controlled search: own branch first, then each ancestor.

        Every scope reuses the request's client (one user widening one
        search, Section III-C). Returns the results of every scope
        tried, stopping at the first with at least *min_matches* matches
        (the last result is the successful one, or the widest scope if
        none sufficed).
        """
        from ..overlay.routing import scope_candidates

        if request.client_node is None:
            raise ValueError(
                "widening requires an explicit client_node: every scope "
                "of one widening search is issued by the same client"
            )
        start = self.hierarchy.get(request.client_node)
        scopes = [request.client_node] + scope_candidates(start)
        # One umbrella context for the whole widening search: every
        # scope's ``search`` root forks from it, so all rounds (and their
        # retries and rejects) reconstruct as a single causal tree.
        tel = self.telemetry
        umbrella = (
            tel.new_trace(widening=request.client_node)
            if tel is not None
            else None
        )
        started_at = self.sim.now
        results: List[SearchResult] = []
        for scope in scopes:
            results.append(
                self.search(
                    replace(request, scope=scope, start_server=None),
                    trace_parent=umbrella,
                )
            )
            if results[-1].outcome.total_matches >= min_matches:
                break
        if tel is not None and umbrella is not None:
            tel.emit_span(
                "search.widening", started_at, self.sim.now,
                client=request.client_node, scopes=len(results),
                matches=results[-1].outcome.total_matches,
                **umbrella.tags(),
            )
        return results

    def enable_service(
        self,
        config: ServiceConfig,
        *,
        nodes: Optional[Sequence[int]] = None,
    ) -> None:
        """Install the server-side service model on every server.

        Gives each server (or just *nodes*) a single-server bounded
        queue per :class:`~repro.net.transport.ServiceConfig`, so
        offered load turns into queueing delay and shed messages — the
        contention the root-bottleneck experiments measure.
        """
        ids = (
            list(nodes)
            if nodes is not None
            else [s.server_id for s in self.hierarchy]
        )
        for sid in ids:
            self.network.set_service(sid, config)

    # -- deprecated query shims --------------------------------------------------
    def execute_query(
        self,
        query: Query,
        *,
        start_server: Optional[int] = None,
        client_node: Optional[int] = None,
        collect_records: bool = False,
        use_overlay: bool = True,
        scope: Optional[int] = None,
        first_k: Optional[int] = None,
        trace: bool = False,
    ) -> QueryOutcome:
        """Deprecated: use :meth:`search` with a :class:`SearchRequest`.

        Kwargs map 1:1 onto the request; same seed, same outcome.
        """
        warnings.warn(
            "RoadsSystem.execute_query is deprecated; use "
            "RoadsSystem.search(SearchRequest(...))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.search(
            SearchRequest(
                query,
                client_node=client_node,
                scope=scope,
                start_server=start_server,
                first_k=first_k,
                use_overlay=use_overlay,
                collect_records=collect_records,
                trace=trace,
            )
        ).outcome

    def widening_search(
        self,
        query: Query,
        client_node: int,
        *,
        min_matches: int = 1,
        collect_records: bool = False,
    ) -> List[QueryOutcome]:
        """Deprecated: use :meth:`widening` with a :class:`SearchRequest`."""
        warnings.warn(
            "RoadsSystem.widening_search is deprecated; use "
            "RoadsSystem.widening(SearchRequest(...), min_matches=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        results = self.widening(
            SearchRequest(
                query,
                client_node=client_node,
                collect_records=collect_records,
            ),
            min_matches=min_matches,
        )
        return [r.outcome for r in results]

    def execute_queries(
        self,
        queries: Sequence[Query],
        *,
        client_nodes: Optional[Sequence[int]] = None,
        collect_records: bool = False,
        use_overlay: bool = True,
    ) -> List[QueryOutcome]:
        """Deprecated: use :meth:`search_many` with :class:`SearchRequest`\\ s."""
        warnings.warn(
            "RoadsSystem.execute_queries is deprecated; use "
            "RoadsSystem.search_many([SearchRequest(...), ...])",
            DeprecationWarning,
            stacklevel=2,
        )
        requests = [
            SearchRequest(
                q,
                client_node=(
                    int(client_nodes[i]) if client_nodes is not None else None
                ),
                collect_records=collect_records,
                use_overlay=use_overlay,
            )
            for i, q in enumerate(queries)
        ]
        return [r.outcome for r in self.search_many(requests)]

    # -- maintenance ----------------------------------------------------------------
    def enable_maintenance(
        self, config: MaintenanceConfig = MaintenanceConfig()
    ) -> MaintenanceProtocol:
        if self.maintenance is None:
            self.maintenance = MaintenanceProtocol(
                self.sim, self.network, self.hierarchy, config,
                telemetry=self.telemetry,
                update_plane=self._plane(),
            )
        return self.maintenance

    # -- storage accounting ----------------------------------------------------------
    def storage_bytes_by_server(self) -> Dict[int, int]:
        """Summary bytes held per server (Table I's ROADS column).

        Excludes raw records owners keep on servers they control — those
        never left the owner; Table I compares *exported/replicated* state.
        """
        out: Dict[int, int] = {}
        for server in self.hierarchy:
            total = 0
            for o in server.owners:
                if not o.controls_server and o.summary is not None:
                    total += o.summary.encoded_size()
            for s in server.child_summaries.values():
                total += s.encoded_size()
            for s in server.replicated_summaries.values():
                total += s.encoded_size()
            for s in server.replicated_local_summaries.values():
                total += s.encoded_size()
            out[server.server_id] = total
        return out

    @property
    def levels(self) -> int:
        return self.hierarchy.levels
