"""Voluntary-sharing policies.

The defining requirement of ROADS (Section II): a resource owner retains
final control over which resource records are returned for a given query
and to whom. Queries carry a ``requester`` identity; when a query reaches
an owner, the owner evaluates it against its private record store and then
filters the matches through its local policy — presenting different
"views" to different parties.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..query.query import Query
from ..records.store import RecordStore


class SharingPolicy(abc.ABC):
    """Decides which matching records an owner returns to a requester."""

    @abc.abstractmethod
    def filter_matches(
        self, requester: Optional[str], store: RecordStore, mask: np.ndarray
    ) -> np.ndarray:
        """Restrict the boolean match *mask* according to policy.

        The returned mask must be a subset of the input mask (a policy can
        hide records, never fabricate them).
        """

    def answer(self, query: Query, store: RecordStore) -> RecordStore:
        """Matching records visible to ``query.requester``."""
        mask = query.mask(store)
        allowed = self.filter_matches(query.requester, store, mask)
        if allowed.shape != mask.shape or bool((allowed & ~mask).any()):
            raise ValueError(
                f"{type(self).__name__} returned records outside the match set"
            )
        return store.select(allowed)


class OpenPolicy(SharingPolicy):
    """Share every matching record with everyone (the paper's default)."""

    def filter_matches(self, requester, store, mask):
        return mask


class DenyAllPolicy(SharingPolicy):
    """Discoverable but never returns records (summary-only presence)."""

    def filter_matches(self, requester, store, mask):
        return np.zeros_like(mask)


@dataclass
class AllowListPolicy(SharingPolicy):
    """Only requesters on the allow list see any records."""

    allowed_requesters: frozenset = frozenset()

    def filter_matches(self, requester, store, mask):
        if requester in self.allowed_requesters:
            return mask
        return np.zeros_like(mask)


@dataclass
class TieredPolicy(SharingPolicy):
    """Different views for different partner tiers.

    Business partners (Section I's example) may see everything; every
    other requester only sees records additionally satisfying the public
    predicate (e.g. ``cost <= x`` or ``load <= y``), or at most
    ``public_limit`` records.
    """

    partners: frozenset = frozenset()
    public_predicate: Optional[Callable[[RecordStore], np.ndarray]] = None
    public_limit: Optional[int] = None

    def filter_matches(self, requester, store, mask):
        if requester in self.partners:
            return mask
        out = mask.copy()
        if self.public_predicate is not None:
            out &= self.public_predicate(store)
        if self.public_limit is not None and out.sum() > self.public_limit:
            keep = np.flatnonzero(out)[: self.public_limit]
            limited = np.zeros_like(out)
            limited[keep] = True
            out = limited
        return out


@dataclass
class RateLimitPolicy(SharingPolicy):
    """Cap how many records any single query can extract."""

    limit: int = 100

    def filter_matches(self, requester, store, mask):
        if self.limit < 0:
            raise ValueError("limit must be non-negative")
        if mask.sum() <= self.limit:
            return mask
        keep = np.flatnonzero(mask)[: self.limit]
        out = np.zeros_like(mask)
        out[keep] = True
        return out


class PolicyTable:
    """Per-owner policy registry with a configurable default."""

    def __init__(self, default: Optional[SharingPolicy] = None):
        self._default = default if default is not None else OpenPolicy()
        self._by_owner: Dict[str, SharingPolicy] = {}

    def set(self, owner_id: str, policy: SharingPolicy) -> None:
        self._by_owner[owner_id] = policy

    def get(self, owner_id: str) -> SharingPolicy:
        return self._by_owner.get(owner_id, self._default)

    def answer(self, owner_id: str, query: Query, store: RecordStore) -> RecordStore:
        return self.get(owner_id).answer(query, store)
