"""The canonical search API: request and response objects.

Historically :class:`~repro.roads.system.RoadsSystem` exposed a bag of
keyword arguments per query (``execute_query(query, client_node=...,
scope=..., first_k=...)``). The serving plane made that untenable: a
query submitted to an open-loop load generator has to carry *all* of
its parameters — including its timeout/retry policy — as one value that
can be queued, retried and reported on. :class:`SearchRequest` is that
value; :class:`SearchResult` wraps the measured
:class:`~repro.roads.client.QueryOutcome` together with serving-plane
timestamps (submission and completion on the virtual clock).

``RoadsSystem.search(request)`` / ``search_many(requests)`` are the
canonical entry points; the legacy ``execute_query`` /
``execute_queries`` / ``widening_search`` methods survive as thin
deprecated shims over them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..query.query import Query
from .client import QueryOutcome


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side patience: per-contact timeout, retries and backoff.

    ``timeout`` is how long the client waits for a server's response
    before retrying; ``retries`` how many times a timed-out or rejected
    contact is re-sent before the client gives up on that server.
    ``backoff_base`` is the wait before the first retry; each further
    retry multiplies it by ``backoff_factor`` (exponential backoff). The
    default base of ``0`` retries immediately — the historical
    behaviour; load experiments raise it so shed queries back off
    instead of hammering a saturated server.
    """

    timeout: float = 5.0
    retries: int = 1
    backoff_base: float = 0.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_base < 0:
            raise ValueError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def delay_before_attempt(self, attempt: int) -> float:
        """Backoff before re-attempt number *attempt* (2 = first retry)."""
        if attempt <= 1 or self.backoff_base <= 0:
            return 0.0
        return self.backoff_base * self.backoff_factor ** (attempt - 2)


@dataclass(frozen=True)
class SearchRequest:
    """Everything one query submission needs, as a single value.

    *client_node* ``None`` lets the system draw a uniform random client
    (the evaluation's default). *scope* restricts the search to the
    subtree of the given server (Section III-C); *start_server* forces a
    particular entry server — giving both is only allowed when they
    agree, otherwise the request is rejected up front (the legacy API
    silently dropped ``start_server``).
    """

    query: Query
    client_node: Optional[int] = None
    scope: Optional[int] = None
    start_server: Optional[int] = None
    first_k: Optional[int] = None
    use_overlay: bool = True
    collect_records: bool = False
    trace: bool = False
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if (
            self.scope is not None
            and self.start_server is not None
            and self.scope != self.start_server
        ):
            raise ValueError(
                f"scope={self.scope} and start_server={self.start_server} "
                "are inconsistent: a scoped search enters at the scope "
                "server; give one or the other (or the same id)"
            )
        if self.first_k is not None and self.first_k < 1:
            raise ValueError(f"first_k must be >= 1, got {self.first_k}")

    @property
    def entry_mode(self) -> str:
        """Entry mode at the first contacted server.

        Scoped searches and the no-overlay basic hierarchy stay inside
        the entry server's branch (``"descent"``); the overlay's
        start-anywhere entry fans out over everything the server's
        summaries cover (``"start"``).
        """
        return (
            "descent"
            if self.scope is not None or not self.use_overlay
            else "start"
        )


@dataclass(eq=False)
class SearchResult:
    """One served query: the request, its outcome, and serving times.

    Delegates unknown attribute access to the wrapped
    :class:`QueryOutcome`, so ``result.latency`` /
    ``result.total_matches`` / ``result.matched_records()`` all work —
    migration from the outcome-returning legacy API is mechanical.
    """

    request: SearchRequest
    outcome: QueryOutcome
    #: virtual time the request entered the serving plane
    submitted_at: float = 0.0
    #: virtual time the query fully resolved (fan-out and timeouts)
    finished_at: float = 0.0
    #: shadow-oracle verdict (``QualityReport``) when the system has a
    #: quality plane attached; ``None`` otherwise
    quality: Optional[object] = None

    @property
    def client_node(self) -> int:
        return self.outcome.client_node

    @property
    def start_server(self) -> int:
        return self.outcome.start_server

    @property
    def sojourn(self) -> float:
        """Submission-to-resolution time, including retries/backoff."""
        return self.finished_at - self.submitted_at

    @property
    def shed(self) -> bool:
        """True when at least one contact was load-shed past its retries."""
        return bool(self.outcome.shed_servers)

    @property
    def ok(self) -> bool:
        """Fully resolved with no timed-out and no shed servers."""
        return (
            self.outcome.completed
            and not self.outcome.timed_out_servers
            and not self.outcome.shed_servers
        )

    def __getattr__(self, name: str):
        # Only reached for attributes not defined on SearchResult;
        # guard the delegate itself against recursion during unpickling.
        if name.startswith("_") or name == "outcome":
            raise AttributeError(name)
        return getattr(self.outcome, name)


@dataclass(eq=False)
class PendingSearch:
    """Handle for an in-flight query on the serving plane.

    Returned by :meth:`RoadsSystem.submit`; ``result`` is populated (and
    ``done`` flips) when the underlying execution fully resolves as the
    shared simulator is driven.
    """

    request: SearchRequest
    execution: object = None  # the live QueryExecution
    result: Optional[SearchResult] = None

    @property
    def done(self) -> bool:
        return self.result is not None
