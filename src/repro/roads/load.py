"""Open-loop load generation for the concurrent serving plane.

The paper's root-bottleneck claim (Figs. 5/7) is about *contention*:
many clients querying at once, all funnelling through the root when the
replication overlay is off. :class:`LoadGenerator` offers queries to a
:class:`~repro.roads.system.RoadsSystem` open-loop — Poisson arrivals at
a configured rate, regardless of how the system keeps up — so a
saturated server shows up as queueing delay and shed queries rather than
just message counts.

Each arrival draws a query from the pool and a client from the mix, then
``system.submit(...)`` puts it in flight on the shared dispatcher; the
free-running update plane and maintenance heartbeats interleave with the
whole burst. ``run()`` drives the simulator until every offered query
resolves and returns a :class:`LoadReport` with latency percentiles,
goodput and shed counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..query.query import Query
from .search import RetryPolicy, SearchRequest, SearchResult


@dataclass(frozen=True)
class LoadConfig:
    """Shape of one offered-load run.

    ``rate`` is the mean arrival rate in queries per (virtual) second;
    inter-arrival times are exponential, so the offered stream is
    Poisson. ``horizon`` bounds the *arrival* window — queries already
    in flight at the horizon still run to completion.

    ``scope_fraction`` of queries are scoped to the issuing client's own
    server (Section III-C locality); the rest search the federation.
    ``client_nodes`` restricts the client mix to a subset of nodes
    (default: every node, uniform).
    """

    rate: float
    horizon: float
    use_overlay: bool = True
    scope_fraction: float = 0.0
    first_k: Optional[int] = None
    client_nodes: Optional[Sequence[int]] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if not 0.0 <= self.scope_fraction <= 1.0:
            raise ValueError(
                f"scope_fraction must be in [0, 1], got {self.scope_fraction}"
            )


@dataclass
class LoadReport:
    """Everything one load run measured."""

    config: LoadConfig
    results: List[SearchResult]
    #: virtual time the run started / fully drained
    started_at: float = 0.0
    drained_at: float = 0.0

    @property
    def offered(self) -> int:
        return len(self.results)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.results if r.outcome.completed)

    @property
    def ok(self) -> int:
        """Queries that resolved with no timed-out and no shed contact."""
        return sum(1 for r in self.results if r.ok)

    @property
    def shed_queries(self) -> int:
        """Queries where at least one contact was load-shed past retries."""
        return sum(1 for r in self.results if r.shed)

    @property
    def rejections(self) -> int:
        """Total reject notices received across all queries (pre-retry)."""
        return sum(r.outcome.rejections for r in self.results)

    @property
    def goodput(self) -> float:
        """Cleanly-served queries per second of wall (virtual) time."""
        elapsed = self.drained_at - self.started_at
        return self.ok / elapsed if elapsed > 0 else 0.0

    def latencies(self) -> np.ndarray:
        """Client-observed latency of every completed query."""
        return np.array(
            [r.outcome.latency for r in self.results if r.outcome.completed],
            dtype=float,
        )

    def sojourns(self) -> np.ndarray:
        """Submission-to-resolution time of every query (incl. backoff)."""
        return np.array([r.sojourn for r in self.results], dtype=float)

    def latency_percentile(self, pct: float) -> float:
        lats = self.latencies()
        return float(np.percentile(lats, pct)) if len(lats) else math.nan

    def summary(self) -> dict:
        lats = self.latencies()
        return {
            "rate": self.config.rate,
            "offered": self.offered,
            "completed": self.completed,
            "ok": self.ok,
            "shed_queries": self.shed_queries,
            "rejections": self.rejections,
            "goodput": round(self.goodput, 4),
            "latency_p50": (
                round(float(np.percentile(lats, 50)), 6) if len(lats) else None
            ),
            "latency_p95": (
                round(float(np.percentile(lats, 95)), 6) if len(lats) else None
            ),
            "latency_max": (
                round(float(lats.max()), 6) if len(lats) else None
            ),
        }


class LoadGenerator:
    """Offer a Poisson query stream to a system, open-loop.

    Deterministic for a fixed generator: arrival times, query choices
    and client choices are all drawn up front from *rng*, so two runs
    against identically-built systems see the identical offered stream.
    """

    def __init__(
        self,
        system,
        queries: Sequence[Query],
        config: LoadConfig,
        rng: np.random.Generator,
    ):
        if not queries:
            raise ValueError("query pool must not be empty")
        self.system = system
        self.queries = list(queries)
        self.config = config
        self.rng = rng

    def _draw_schedule(self) -> List[SearchRequest]:
        """Pre-draw the full offered stream (arrival order)."""
        cfg = self.config
        clients = (
            list(cfg.client_nodes)
            if cfg.client_nodes is not None
            else list(range(len(self.system.hierarchy)))
        )
        requests: List[SearchRequest] = []
        self._arrivals: List[float] = []
        t = 0.0
        while True:
            t += float(self.rng.exponential(1.0 / cfg.rate))
            if t >= cfg.horizon:
                break
            query = self.queries[int(self.rng.integers(0, len(self.queries)))]
            client = int(clients[int(self.rng.integers(0, len(clients)))])
            scoped = (
                cfg.scope_fraction > 0
                and float(self.rng.random()) < cfg.scope_fraction
            )
            requests.append(
                SearchRequest(
                    query,
                    client_node=client,
                    scope=client if scoped else None,
                    first_k=cfg.first_k,
                    use_overlay=cfg.use_overlay,
                    retry=cfg.retry,
                )
            )
            self._arrivals.append(t)
        return requests

    def run(self) -> LoadReport:
        """Offer the stream, drain the dispatcher, report."""
        requests = self._draw_schedule()
        started = self.system.sim.now
        results = self.system.search_many(requests, arrivals=self._arrivals)
        return LoadReport(
            config=self.config,
            results=results,
            started_at=started,
            drained_at=self.system.sim.now,
        )
