"""ROADS: the paper's primary contribution, assembled."""

from .client import OwnerHit, QueryExecution, QueryOutcome
from .config import RoadsConfig
from .load import LoadConfig, LoadGenerator, LoadReport
from .policy import (
    AllowListPolicy,
    DenyAllPolicy,
    OpenPolicy,
    PolicyTable,
    RateLimitPolicy,
    SharingPolicy,
    TieredPolicy,
)
from .search import PendingSearch, RetryPolicy, SearchRequest, SearchResult
from .system import GuestOwner, RoadsSystem, UpdateRoundReport

__all__ = [
    "RoadsSystem",
    "RoadsConfig",
    "GuestOwner",
    "UpdateRoundReport",
    "SearchRequest",
    "SearchResult",
    "PendingSearch",
    "RetryPolicy",
    "LoadConfig",
    "LoadGenerator",
    "LoadReport",
    "QueryExecution",
    "QueryOutcome",
    "OwnerHit",
    "SharingPolicy",
    "OpenPolicy",
    "DenyAllPolicy",
    "AllowListPolicy",
    "TieredPolicy",
    "RateLimitPolicy",
    "PolicyTable",
]
