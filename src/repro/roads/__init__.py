"""ROADS: the paper's primary contribution, assembled."""

from .client import OwnerHit, QueryExecution, QueryOutcome
from .config import RoadsConfig
from .policy import (
    AllowListPolicy,
    DenyAllPolicy,
    OpenPolicy,
    PolicyTable,
    RateLimitPolicy,
    SharingPolicy,
    TieredPolicy,
)
from .system import GuestOwner, RoadsSystem, UpdateRoundReport

__all__ = [
    "RoadsSystem",
    "RoadsConfig",
    "GuestOwner",
    "UpdateRoundReport",
    "QueryExecution",
    "QueryOutcome",
    "OwnerHit",
    "SharingPolicy",
    "OpenPolicy",
    "DenyAllPolicy",
    "AllowListPolicy",
    "TieredPolicy",
    "RateLimitPolicy",
    "PolicyTable",
]
