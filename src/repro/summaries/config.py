"""Summary construction configuration."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SummaryConfig:
    """How record sets are condensed into summaries.

    Parameters
    ----------
    histogram_buckets:
        Buckets per numeric attribute (the paper's ``m``; evaluation
        default is 1000).
    histogram_encoding:
        ``"dense"`` ships all counters (the paper's constant-size ``m·r``
        summary model — the default); ``"sparse"`` ships only non-empty
        buckets; ``"bitmap"`` ships one occupancy bit per bucket.
    categorical_summary:
        ``"set"`` for explicit value sets, ``"bloom"`` for Bloom filters.
    bloom_bits / bloom_hashes:
        Bloom filter parameters, used when ``categorical_summary="bloom"``.
    multiresolution_levels:
        When > 1, numeric attributes use multi-resolution histograms with
        this many pyramid levels instead of plain histograms.
    ttl:
        Soft-state lifetime of a summary in simulated seconds. Summaries
        older than this are considered stale and dropped by servers
        (Section III-B: data and summaries are soft state with TTLs).
    """

    histogram_buckets: int = 1000
    histogram_encoding: str = "dense"
    categorical_summary: str = "set"
    bloom_bits: int = 1024
    bloom_hashes: int = 4
    multiresolution_levels: int = 1
    ttl: float = 300.0

    def __post_init__(self) -> None:
        if self.histogram_buckets <= 0:
            raise ValueError("histogram_buckets must be positive")
        if self.histogram_encoding not in ("sparse", "dense", "bitmap"):
            raise ValueError(f"unknown histogram encoding {self.histogram_encoding!r}")
        if self.categorical_summary not in ("set", "bloom"):
            raise ValueError(
                f"unknown categorical summary kind {self.categorical_summary!r}"
            )
        if self.bloom_bits <= 0 or self.bloom_hashes <= 0:
            raise ValueError("bloom parameters must be positive")
        if self.multiresolution_levels < 1:
            raise ValueError("multiresolution_levels must be >= 1")
        if self.multiresolution_levels > 1 and self.histogram_buckets % (
            2 ** (self.multiresolution_levels - 1)
        ):
            raise ValueError(
                "histogram_buckets must be divisible by 2^(multiresolution_levels-1)"
            )
        if self.ttl <= 0:
            raise ValueError("ttl must be positive")
