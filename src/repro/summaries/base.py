"""Summary protocol.

An *attribute summary* is a condensed, lossy representation of the values
one attribute takes across a set of resource records (Section III-B). Every
summary type must uphold the **no-false-negative invariant**: if any
summarized value satisfies a predicate, the summary must report a possible
match. False positives are allowed (they only cost extra query forwarding);
false negatives would make matching resources undiscoverable.

Summaries must also be *mergeable* — the bottom-up aggregation combines
children's summaries into a branch summary — and must report their wire
size so the simulator can account update overhead in bytes.
"""

from __future__ import annotations

import abc
from typing import Any

from ..query.predicate import Predicate


class AttributeSummary(abc.ABC):
    """Condensed representation of one attribute's values."""

    @abc.abstractmethod
    def may_match(self, predicate: Predicate) -> bool:
        """Whether any summarized value possibly satisfies *predicate*.

        Must never return ``False`` when a summarized value actually
        matches (no false negatives).
        """

    @abc.abstractmethod
    def merge(self, other: "AttributeSummary") -> "AttributeSummary":
        """A new summary covering both inputs' value sets."""

    def merge_many(self, others) -> "AttributeSummary":
        """A new summary covering this and all of *others*' value sets.

        Semantically a left-fold of :meth:`merge`; concrete summary
        types override it with a single-pass (stacked-array) merge that
        produces bit-identical results without per-operand intermediates.
        """
        out = self
        for other in others:
            out = out.merge(other)
        return out

    @abc.abstractmethod
    def encoded_size(self) -> int:
        """Wire size of this summary in bytes."""

    @property
    @abc.abstractmethod
    def is_empty(self) -> bool:
        """True when no values have been summarized."""

    def copy(self) -> "AttributeSummary":
        """An independent copy (summaries are mutated only via merge)."""
        return self.merge(type(self).empty_like(self))  # pragma: no cover

    @classmethod
    def empty_like(cls, other: "AttributeSummary") -> "AttributeSummary":
        raise NotImplementedError


class SummaryMergeError(ValueError):
    """Raised when two structurally incompatible summaries are merged."""
