"""Value-set summaries for categorical attributes.

The simplest categorical summary enumerates the distinct values present in
the summarized records — acceptable when the number of distinct values is
limited (Section III-B). Merging is set union; equality predicates are
evaluated by membership, which is exact (no false positives either).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from ..query.predicate import EqualsPredicate, Predicate, RangePredicate
from .base import AttributeSummary, SummaryMergeError

_HEADER_BYTES = 8


class ValueSetSummary(AttributeSummary):
    """Explicit enumeration of the distinct categorical values present."""

    __slots__ = ("attribute", "values", "_fp")

    def __init__(self, attribute: str, values: Iterable[str] = ()):
        self.attribute = attribute
        self.values: FrozenSet[str] = frozenset(values)
        self._fp = None

    @classmethod
    def from_values(cls, attribute: str, values: Iterable[str]) -> "ValueSetSummary":
        return cls(attribute, values)

    @property
    def is_empty(self) -> bool:
        return not self.values

    def may_match(self, predicate: Predicate) -> bool:
        if isinstance(predicate, RangePredicate):
            raise TypeError(
                f"value set on {self.attribute!r} cannot evaluate a range on "
                f"numeric attribute {predicate.attribute!r}"
            )
        assert isinstance(predicate, EqualsPredicate)
        return predicate.value in self.values

    def _check_mergeable(self, other: AttributeSummary) -> "ValueSetSummary":
        if not isinstance(other, ValueSetSummary):
            raise SummaryMergeError(
                f"cannot merge ValueSetSummary with {type(other).__name__}"
            )
        if other.attribute != self.attribute:
            raise SummaryMergeError(
                f"cannot merge value sets for {self.attribute!r} and {other.attribute!r}"
            )
        return other

    def merge(self, other: AttributeSummary) -> "ValueSetSummary":
        other = self._check_mergeable(other)
        return ValueSetSummary(self.attribute, self.values | other.values)

    def merge_many(self, others) -> "ValueSetSummary":
        """Single-pass set union over this and all of *others*."""
        return ValueSetSummary(
            self.attribute,
            self.values.union(*(self._check_mergeable(o).values for o in others)),
        )

    def copy(self) -> "ValueSetSummary":
        return ValueSetSummary(self.attribute, self.values)

    def fingerprint(self) -> bytes:
        """Content hash used by delta propagation to skip unchanged sends.

        Cached: the value set is a frozenset, immutable for life.
        """
        if self._fp is not None:
            return self._fp
        import hashlib

        h = hashlib.blake2b(digest_size=16)
        h.update(self.attribute.encode("utf-8"))
        for v in sorted(self.values):
            h.update(v.encode("utf-8") + b"\x00")
        self._fp = h.digest()
        return self._fp

    def encoded_size(self) -> int:
        return _HEADER_BYTES + sum(len(v.encode("utf-8")) + 1 for v in self.values)

    def __contains__(self, value: str) -> bool:
        return value in self.values

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ValueSetSummary)
            and self.attribute == other.attribute
            and self.values == other.values
        )

    def __repr__(self) -> str:
        return f"ValueSetSummary({self.attribute!r}, {sorted(self.values)})"
