"""Histogram summaries for numeric attributes.

A histogram divides the attribute's value domain into ``m`` equal-width
buckets, each counting how many summarized values fall inside. Two
histograms over the same domain merge by adding their counters bucket-wise,
which is exactly how branch summaries are aggregated bottom-up in the
hierarchy. A range predicate ``lo <= x <= hi`` may match iff any bucket
overlapping ``[lo, hi]`` is non-empty.

Wire encoding can be *dense* (all ``m`` counters — the paper's model,
where a summary has constant size ``m·r`` regardless of how many records
it covers), *sparse* (only the non-empty buckets as ``(index, count)``
pairs), or *bitmap* (one occupancy bit per bucket — sufficient for query
evaluation, which only tests bucket non-emptiness). The encoding choice
is an ablation axis (see DESIGN.md §5).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from ..query.predicate import EqualsPredicate, Predicate, RangePredicate
from .base import AttributeSummary, SummaryMergeError

#: bytes per counter in the dense encoding
_DENSE_COUNTER_BYTES = 4
#: bytes per (index, count) pair in the sparse encoding
_SPARSE_ENTRY_BYTES = 8
#: fixed header: attribute id, bucket count, domain bounds
_HEADER_BYTES = 16


class HistogramSummary(AttributeSummary):
    """Equal-width bucket histogram over a bounded numeric domain."""

    __slots__ = ("attribute", "lo", "hi", "counts", "encoding", "_fp")

    def __init__(
        self,
        attribute: str,
        buckets: int,
        bounds: Tuple[float, float] = (0.0, 1.0),
        *,
        encoding: str = "dense",
        counts: Optional[np.ndarray] = None,
    ):
        if buckets <= 0:
            raise ValueError(f"histogram needs at least one bucket, got {buckets}")
        lo, hi = bounds
        if not (lo < hi):
            raise ValueError(f"invalid histogram bounds {bounds}")
        if encoding not in ("dense", "sparse", "bitmap"):
            raise ValueError(f"unknown encoding {encoding!r}")
        self.attribute = attribute
        self.lo = float(lo)
        self.hi = float(hi)
        self.encoding = encoding
        if counts is None:
            self.counts = np.zeros(buckets, dtype=np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
            if counts.shape != (buckets,):
                raise ValueError(
                    f"counts shape {counts.shape} does not match bucket count {buckets}"
                )
            if (counts < 0).any():
                raise ValueError("histogram counts must be non-negative")
            self.counts = counts.copy()
        self._fp = None

    # -- construction ------------------------------------------------------------
    @classmethod
    def from_values(
        cls,
        attribute: str,
        values: Iterable[float],
        buckets: int,
        bounds: Tuple[float, float] = (0.0, 1.0),
        *,
        encoding: str = "dense",
    ) -> "HistogramSummary":
        """Summarize *values*; values are clipped into the domain."""
        h = cls(attribute, buckets, bounds, encoding=encoding)
        h.add_values(values)
        return h

    @classmethod
    def _trusted(
        cls,
        attribute: str,
        bounds: Tuple[float, float],
        encoding: str,
        counts: np.ndarray,
    ) -> "HistogramSummary":
        """Internal constructor for counts already known valid.

        Skips re-validation and the defensive copy of ``__init__`` —
        merge results are freshly allocated arrays the caller owns.
        """
        h = cls.__new__(cls)
        h.attribute = attribute
        h.lo, h.hi = bounds
        h.encoding = encoding
        h.counts = counts
        h._fp = None
        return h

    def add_values(self, values: Iterable[float]) -> None:
        vals = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                          dtype=np.float64)
        if vals.size == 0:
            return
        self._fp = None
        clipped = np.clip(vals, self.lo, self.hi)
        idx = self._bucket_of(clipped)
        np.add.at(self.counts, idx, 1)

    def _bucket_of(self, values: np.ndarray) -> np.ndarray:
        m = self.counts.shape[0]
        span = self.hi - self.lo
        idx = np.floor((values - self.lo) / span * m).astype(np.int64)
        return np.clip(idx, 0, m - 1)

    # -- protocol ----------------------------------------------------------------
    @property
    def buckets(self) -> int:
        return int(self.counts.shape[0])

    @property
    def total(self) -> int:
        """Number of values summarized."""
        return int(self.counts.sum())

    @property
    def is_empty(self) -> bool:
        return not self.counts.any()

    def may_match(self, predicate: Predicate) -> bool:
        if isinstance(predicate, EqualsPredicate):
            raise TypeError(
                f"histogram on {self.attribute!r} cannot evaluate equality on "
                f"categorical attribute {predicate.attribute!r}"
            )
        assert isinstance(predicate, RangePredicate)
        lo = max(predicate.lo, self.lo)
        hi = min(predicate.hi, self.hi)
        if lo > hi:
            return False
        m = self.buckets
        span = self.hi - self.lo
        first = int(np.clip(np.floor((lo - self.lo) / span * m), 0, m - 1))
        last = int(np.clip(np.floor((hi - self.lo) / span * m), 0, m - 1))
        return bool(self.counts[first : last + 1].any())

    def _check_mergeable(self, other: AttributeSummary) -> "HistogramSummary":
        if not isinstance(other, HistogramSummary):
            raise SummaryMergeError(
                f"cannot merge HistogramSummary with {type(other).__name__}"
            )
        if (
            other.buckets != self.buckets
            or other.lo != self.lo
            or other.hi != self.hi
            or other.attribute != self.attribute
        ):
            raise SummaryMergeError(
                f"incompatible histograms for {self.attribute!r}: "
                f"({self.buckets}, [{self.lo}, {self.hi}]) vs "
                f"({other.buckets}, [{other.lo}, {other.hi}]) on {other.attribute!r}"
            )
        return other

    def merge(self, other: AttributeSummary) -> "HistogramSummary":
        other = self._check_mergeable(other)
        return HistogramSummary._trusted(
            self.attribute,
            (self.lo, self.hi),
            self.encoding,
            self.counts + other.counts,
        )

    def merge_many(self, others) -> "HistogramSummary":
        """Bucket-wise sum with *others* in one pass.

        Equivalent to left-folding :meth:`merge` (int64 addition is
        associative) but allocates a single result array instead of one
        intermediate histogram per operand.
        """
        counts = self.counts.copy()
        for o in others:
            counts += self._check_mergeable(o).counts
        return HistogramSummary._trusted(
            self.attribute, (self.lo, self.hi), self.encoding, counts
        )

    def copy(self) -> "HistogramSummary":
        return HistogramSummary._trusted(
            self.attribute,
            (self.lo, self.hi),
            self.encoding,
            self.counts.copy(),
        )

    def encoded_size(self) -> int:
        if self.encoding == "dense":
            return _HEADER_BYTES + self.buckets * _DENSE_COUNTER_BYTES
        if self.encoding == "bitmap":
            return _HEADER_BYTES + (self.buckets + 7) // 8
        nonzero = int(np.count_nonzero(self.counts))
        return _HEADER_BYTES + nonzero * _SPARSE_ENTRY_BYTES

    def fingerprint(self) -> bytes:
        """Content hash used by delta propagation to skip unchanged sends.

        Cached: counts only change through :meth:`add_values` (which
        invalidates) — merges and copies return new instances.
        """
        if self._fp is not None:
            return self._fp
        import hashlib

        h = hashlib.blake2b(digest_size=16)
        h.update(self.attribute.encode("utf-8"))
        h.update(np.int64(self.buckets).tobytes())
        h.update(np.float64((self.lo, self.hi)).tobytes())
        h.update(np.ascontiguousarray(self.counts).tobytes())
        self._fp = h.digest()
        return self._fp

    # -- introspection -------------------------------------------------------------
    def count_in_range(self, lo: float, hi: float) -> int:
        """Upper bound on how many summarized values lie in ``[lo, hi]``.

        Bucket-granular: partial bucket overlap counts the whole bucket,
        so this is an over-estimate — consistent with no-false-negatives.
        """
        lo = max(lo, self.lo)
        hi = min(hi, self.hi)
        if lo > hi:
            return 0
        m = self.buckets
        span = self.hi - self.lo
        first = int(np.clip(np.floor((lo - self.lo) / span * m), 0, m - 1))
        last = int(np.clip(np.floor((hi - self.lo) / span * m), 0, m - 1))
        return int(self.counts[first : last + 1].sum())

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, HistogramSummary)
            and self.attribute == other.attribute
            and self.buckets == other.buckets
            and self.lo == other.lo
            and self.hi == other.hi
            and bool(np.array_equal(self.counts, other.counts))
        )

    def __repr__(self) -> str:
        return (
            f"HistogramSummary({self.attribute!r}, buckets={self.buckets}, "
            f"total={self.total})"
        )
