"""Bloom-filter summaries for categorical attributes.

When the universe of categorical values is large, enumerating them is
wasteful; the paper points to Bloom filters [10] as a more efficient
summary. A Bloom filter admits false positives (harmless: extra query
forwarding) but never false negatives (required for discoverability).
Merging two filters with identical parameters is bitwise OR.

Hashing uses ``blake2b`` with per-index salts, giving ``k`` independent,
deterministic hash functions without any third-party dependency.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable

import numpy as np

from ..query.predicate import EqualsPredicate, Predicate, RangePredicate
from .base import AttributeSummary, SummaryMergeError

_HEADER_BYTES = 12


def optimal_parameters(expected_items: int, false_positive_rate: float):
    """Classic optimal (bits, hashes) for a Bloom filter.

    ``m = -n ln p / (ln 2)^2`` and ``k = m/n ln 2``.
    """
    if expected_items <= 0:
        raise ValueError("expected_items must be positive")
    if not (0.0 < false_positive_rate < 1.0):
        raise ValueError("false_positive_rate must be in (0, 1)")
    m = -expected_items * math.log(false_positive_rate) / (math.log(2) ** 2)
    k = max(1, round(m / expected_items * math.log(2)))
    return max(8, int(math.ceil(m))), int(k)


class BloomFilterSummary(AttributeSummary):
    """Fixed-size bit-array membership summary."""

    __slots__ = ("attribute", "bits", "num_hashes", "_array", "_fp")

    def __init__(self, attribute: str, bits: int = 1024, num_hashes: int = 4):
        if bits <= 0:
            raise ValueError("bits must be positive")
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        self.attribute = attribute
        self.bits = int(bits)
        self.num_hashes = int(num_hashes)
        self._array = np.zeros(self.bits, dtype=bool)
        self._fp = None

    @classmethod
    def from_values(
        cls,
        attribute: str,
        values: Iterable[str],
        bits: int = 1024,
        num_hashes: int = 4,
    ) -> "BloomFilterSummary":
        f = cls(attribute, bits, num_hashes)
        for v in values:
            f.add(v)
        return f

    def _positions(self, value: str) -> np.ndarray:
        out = np.empty(self.num_hashes, dtype=np.int64)
        data = value.encode("utf-8")
        for i in range(self.num_hashes):
            digest = hashlib.blake2b(data, digest_size=8, salt=i.to_bytes(4, "little") + b"roAD").digest()
            out[i] = int.from_bytes(digest, "little") % self.bits
        return out

    def add(self, value: str) -> None:
        self._array[self._positions(value)] = True
        self._fp = None

    def contains(self, value: str) -> bool:
        return bool(self._array[self._positions(value)].all())

    @property
    def is_empty(self) -> bool:
        return not self._array.any()

    @property
    def fill_ratio(self) -> float:
        """Fraction of set bits; drives the false-positive rate."""
        return float(self._array.mean())

    def estimated_false_positive_rate(self) -> float:
        """FPR estimate from the fill ratio: ``fill^k``."""
        return self.fill_ratio ** self.num_hashes

    def may_match(self, predicate: Predicate) -> bool:
        if isinstance(predicate, RangePredicate):
            raise TypeError(
                f"bloom filter on {self.attribute!r} cannot evaluate a range on "
                f"numeric attribute {predicate.attribute!r}"
            )
        assert isinstance(predicate, EqualsPredicate)
        return self.contains(predicate.value)

    def _check_mergeable(self, other: AttributeSummary) -> "BloomFilterSummary":
        if not isinstance(other, BloomFilterSummary):
            raise SummaryMergeError(
                f"cannot merge BloomFilterSummary with {type(other).__name__}"
            )
        if (
            other.attribute != self.attribute
            or other.bits != self.bits
            or other.num_hashes != self.num_hashes
        ):
            raise SummaryMergeError(
                f"incompatible bloom filters for {self.attribute!r}: "
                f"({self.bits} bits, k={self.num_hashes}) vs "
                f"({other.bits} bits, k={other.num_hashes}) on {other.attribute!r}"
            )
        return other

    def merge(self, other: AttributeSummary) -> "BloomFilterSummary":
        other = self._check_mergeable(other)
        merged = BloomFilterSummary(self.attribute, self.bits, self.num_hashes)
        merged._array = self._array | other._array
        return merged

    def merge_many(self, others) -> "BloomFilterSummary":
        """Single-pass bitwise OR over this and all of *others*."""
        array = self._array.copy()
        for o in others:
            array |= self._check_mergeable(o)._array
        merged = BloomFilterSummary(self.attribute, self.bits, self.num_hashes)
        merged._array = array
        return merged

    def copy(self) -> "BloomFilterSummary":
        out = BloomFilterSummary(self.attribute, self.bits, self.num_hashes)
        out._array = self._array.copy()
        return out

    def fingerprint(self) -> bytes:
        """Content hash used by delta propagation to skip unchanged sends.

        Cached: the bit array only changes through :meth:`add` (which
        invalidates) — merges and copies return new instances.
        """
        if self._fp is not None:
            return self._fp
        import hashlib

        h = hashlib.blake2b(digest_size=16)
        h.update(self.attribute.encode("utf-8"))
        h.update(np.int64((self.bits, self.num_hashes)).tobytes())
        h.update(np.packbits(self._array).tobytes())
        self._fp = h.digest()
        return self._fp

    def encoded_size(self) -> int:
        return _HEADER_BYTES + (self.bits + 7) // 8

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, BloomFilterSummary)
            and self.attribute == other.attribute
            and self.bits == other.bits
            and self.num_hashes == other.num_hashes
            and bool(np.array_equal(self._array, other._array))
        )

    def __repr__(self) -> str:
        return (
            f"BloomFilterSummary({self.attribute!r}, bits={self.bits}, "
            f"k={self.num_hashes}, fill={self.fill_ratio:.3f})"
        )
