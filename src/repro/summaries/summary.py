"""Whole-record-set summaries.

A :class:`ResourceSummary` bundles one attribute summary per searchable
attribute of a schema. It is what resource owners export to their
attachment points, what servers aggregate bottom-up into branch summaries,
and what the replication overlay copies across the hierarchy.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from ..query.predicate import EqualsPredicate, RangePredicate
from ..query.query import Query
from ..records.schema import Schema
from ..records.store import RecordStore
from .base import AttributeSummary, SummaryMergeError
from .bloom import BloomFilterSummary
from .config import SummaryConfig
from .histogram import HistogramSummary
from .multires import MultiResolutionHistogram
from .valueset import ValueSetSummary


class ResourceSummary:
    """Per-attribute summaries of a set of resource records.

    Soft state: carries the simulation timestamp at which it was created
    and the configured TTL; servers discard summaries whose TTL expired.
    """

    __slots__ = ("schema", "config", "attributes", "created_at")

    def __init__(
        self,
        schema: Schema,
        config: SummaryConfig,
        attributes: Optional[Dict[str, AttributeSummary]] = None,
        created_at: float = 0.0,
    ):
        self.schema = schema
        self.config = config
        self.created_at = created_at
        if attributes is None:
            attributes = {
                spec.name: _empty_summary(spec.name, spec.bounds, spec.is_numeric, config)
                for spec in schema
            }
        self.attributes = attributes

    # -- construction ------------------------------------------------------------
    @classmethod
    def from_store(
        cls,
        store: RecordStore,
        config: SummaryConfig,
        created_at: float = 0.0,
    ) -> "ResourceSummary":
        """Summarize every searchable attribute of *store*."""
        schema = store.schema
        attrs: Dict[str, AttributeSummary] = {}
        for spec in schema.numeric_attributes:
            values = store.numeric_column(spec.name)
            if config.multiresolution_levels > 1:
                attrs[spec.name] = MultiResolutionHistogram.from_values(
                    spec.name,
                    values,
                    config.histogram_buckets,
                    spec.bounds,
                    config.multiresolution_levels,
                    encoding=config.histogram_encoding,
                )
            else:
                attrs[spec.name] = HistogramSummary.from_values(
                    spec.name,
                    values,
                    config.histogram_buckets,
                    spec.bounds,
                    encoding=config.histogram_encoding,
                )
        for spec in schema.categorical_attributes:
            values = store.categorical_column(spec.name)
            if config.categorical_summary == "bloom":
                attrs[spec.name] = BloomFilterSummary.from_values(
                    spec.name, values, config.bloom_bits, config.bloom_hashes
                )
            else:
                attrs[spec.name] = ValueSetSummary.from_values(spec.name, values)
        return cls(schema, config, attrs, created_at=created_at)

    @classmethod
    def empty(
        cls, schema: Schema, config: SummaryConfig, created_at: float = 0.0
    ) -> "ResourceSummary":
        return cls(schema, config, created_at=created_at)

    # -- protocol ----------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return all(s.is_empty for s in self.attributes.values())

    def may_match(self, query: Query) -> bool:
        """Whether records behind this summary possibly match *query*.

        True only when **every** queried dimension may match — the
        conjunctive evaluation that lets ROADS use all dimensions to
        confine the search scope.
        """
        for pred in query.predicates:
            summ = self.attributes.get(pred.attribute)
            if summ is None:
                raise KeyError(
                    f"summary has no attribute {pred.attribute!r}"
                )
            if not summ.may_match(pred):
                return False
        return True

    def merge(self, other: "ResourceSummary") -> "ResourceSummary":
        """Bucket-wise / union merge, as in bottom-up aggregation."""
        if other.schema != self.schema:
            raise SummaryMergeError("cannot merge summaries with different schemas")
        merged = {
            name: summ.merge(other.attributes[name])
            for name, summ in self.attributes.items()
        }
        return ResourceSummary(
            self.schema,
            self.config,
            merged,
            created_at=min(self.created_at, other.created_at),
        )

    @classmethod
    def merge_many(cls, summaries) -> "ResourceSummary":
        """Merge *summaries* (non-empty sequence) in one stacked pass.

        Bit-identical to left-folding :meth:`merge` — every attribute
        merge is an associative bucket sum / set union — but each
        attribute allocates one result instead of one intermediate per
        operand. This is the vectorized kernel behind branch-summary
        aggregation and batched summary installs.
        """
        summaries = list(summaries)
        if not summaries:
            raise ValueError("merge_many needs at least one summary")
        first = summaries[0]
        if len(summaries) == 1:
            return first
        rest = summaries[1:]
        for s in rest:
            if s.schema != first.schema:
                raise SummaryMergeError(
                    "cannot merge summaries with different schemas"
                )
        merged = {
            name: summ.merge_many([s.attributes[name] for s in rest])
            for name, summ in first.attributes.items()
        }
        return cls(
            first.schema,
            first.config,
            merged,
            created_at=min(s.created_at for s in summaries),
        )

    def copy(self) -> "ResourceSummary":
        return ResourceSummary(
            self.schema,
            self.config,
            {name: s.copy() for name, s in self.attributes.items()},
            created_at=self.created_at,
        )

    def encoded_size(self) -> int:
        """Wire size of the full summary (the paper's ``m*r`` scale)."""
        return sum(s.encoded_size() for s in self.attributes.values())

    def fingerprint(self) -> bytes:
        """Content hash over all attribute summaries (order-independent
        in the schema sense: iterates the schema's declared order)."""
        import hashlib

        h = hashlib.blake2b(digest_size=16)
        for spec in self.schema:
            h.update(self.attributes[spec.name].fingerprint())
        return h.digest()

    # -- soft state ----------------------------------------------------------------
    def is_expired(self, now: float) -> bool:
        return now - self.created_at > self.config.ttl

    def refreshed(self, now: float) -> "ResourceSummary":
        """A same-content summary stamped *now*.

        Shares the attribute summaries instead of deep-copying their
        arrays: attribute summaries are immutable once exported (their
        mutators exist only for construction), so a refresh only needs a
        fresh top-level object with its own ``created_at``.
        """
        return ResourceSummary(
            self.schema, self.config, dict(self.attributes), created_at=now
        )

    # -- estimation ----------------------------------------------------------------
    def estimated_matches(self, query: Query) -> int:
        """Upper-bound match count, the min over numeric dimensions.

        Used by clients to rank which redirected branch to visit first.
        """
        best = np.inf
        for pred in query.predicates:
            summ = self.attributes.get(pred.attribute)
            if isinstance(pred, RangePredicate) and isinstance(summ, HistogramSummary):
                best = min(best, summ.count_in_range(pred.lo, pred.hi))
            elif isinstance(pred, RangePredicate) and isinstance(
                summ, MultiResolutionHistogram
            ):
                best = min(best, summ.level(0).count_in_range(pred.lo, pred.hi))
            elif isinstance(pred, EqualsPredicate) and summ is not None:
                if not summ.may_match(pred):
                    return 0
        if not np.isfinite(best):
            # Only categorical dimensions queried: fall back to total count.
            for summ in self.attributes.values():
                if isinstance(summ, HistogramSummary):
                    return summ.total
                if isinstance(summ, MultiResolutionHistogram):
                    return summ.level(0).total
            return 0
        return int(best)

    def __repr__(self) -> str:
        return (
            f"ResourceSummary({len(self.attributes)} attributes, "
            f"{self.encoded_size()} bytes, t={self.created_at:g})"
        )


def _empty_summary(name, bounds, is_numeric, config: SummaryConfig) -> AttributeSummary:
    if is_numeric:
        if config.multiresolution_levels > 1:
            return MultiResolutionHistogram(
                name,
                config.histogram_buckets,
                bounds,
                config.multiresolution_levels,
                encoding=config.histogram_encoding,
            )
        return HistogramSummary(
            name, config.histogram_buckets, bounds, encoding=config.histogram_encoding
        )
    if config.categorical_summary == "bloom":
        return BloomFilterSummary(name, config.bloom_bits, config.bloom_hashes)
    return ValueSetSummary(name)
