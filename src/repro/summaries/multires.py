"""Multi-resolution histogram summaries.

The paper cites multi-resolution summarization [11] as an alternative
compact structure. A :class:`MultiResolutionHistogram` keeps a pyramid of
histograms whose bucket counts halve level by level; coarse levels cost
fewer bytes on the wire while fine levels answer narrow ranges more
precisely. A node under byte pressure can transmit a coarser level without
violating the no-false-negative invariant (a coarser histogram only widens
possible-match answers).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from ..query.predicate import Predicate
from .base import AttributeSummary, SummaryMergeError
from .histogram import HistogramSummary


def coarsen(histogram: HistogramSummary, factor: int = 2) -> HistogramSummary:
    """Reduce a histogram's resolution by merging adjacent buckets.

    The bucket count must be divisible by *factor*. Counts are summed, so
    the result summarizes exactly the same values at lower resolution.
    """
    if factor <= 1:
        raise ValueError("factor must be >= 2")
    m = histogram.buckets
    if m % factor != 0:
        raise ValueError(f"bucket count {m} not divisible by factor {factor}")
    counts = histogram.counts.reshape(m // factor, factor).sum(axis=1)
    return HistogramSummary(
        histogram.attribute,
        m // factor,
        (histogram.lo, histogram.hi),
        encoding=histogram.encoding,
        counts=counts,
    )


class MultiResolutionHistogram(AttributeSummary):
    """A pyramid of progressively coarser histograms over one attribute.

    Level 0 is the finest. ``levels`` levels are kept, each half the
    resolution of the previous, so the finest bucket count must be
    divisible by ``2**(levels-1)``.
    """

    __slots__ = ("attribute", "_pyramid")

    def __init__(
        self,
        attribute: str,
        buckets: int,
        bounds: Tuple[float, float] = (0.0, 1.0),
        levels: int = 3,
        *,
        encoding: str = "dense",
    ):
        if levels <= 0:
            raise ValueError("levels must be positive")
        if buckets % (2 ** (levels - 1)) != 0:
            raise ValueError(
                f"finest bucket count {buckets} must be divisible by 2^{levels - 1}"
            )
        self.attribute = attribute
        base = HistogramSummary(attribute, buckets, bounds, encoding=encoding)
        self._pyramid: List[HistogramSummary] = [base]
        for _ in range(levels - 1):
            self._pyramid.append(coarsen(self._pyramid[-1]))

    @classmethod
    def from_values(
        cls,
        attribute: str,
        values: Iterable[float],
        buckets: int,
        bounds: Tuple[float, float] = (0.0, 1.0),
        levels: int = 3,
        *,
        encoding: str = "dense",
    ) -> "MultiResolutionHistogram":
        mr = cls(attribute, buckets, bounds, levels, encoding=encoding)
        mr.add_values(values)
        return mr

    def add_values(self, values: Iterable[float]) -> None:
        vals = np.asarray(
            list(values) if not isinstance(values, np.ndarray) else values,
            dtype=np.float64,
        )
        for level in self._pyramid:
            level.add_values(vals)

    @property
    def levels(self) -> int:
        return len(self._pyramid)

    def level(self, i: int) -> HistogramSummary:
        """Histogram at pyramid level *i* (0 = finest)."""
        return self._pyramid[i]

    @property
    def is_empty(self) -> bool:
        return self._pyramid[0].is_empty

    def may_match(self, predicate: Predicate) -> bool:
        # The finest level is the most precise; use it for evaluation.
        return self._pyramid[0].may_match(predicate)

    def merge(self, other: AttributeSummary) -> "MultiResolutionHistogram":
        if not isinstance(other, MultiResolutionHistogram):
            raise SummaryMergeError(
                f"cannot merge MultiResolutionHistogram with {type(other).__name__}"
            )
        if other.levels != self.levels or other.attribute != self.attribute:
            raise SummaryMergeError(
                "incompatible multi-resolution histograms: "
                f"{self.attribute!r}/{self.levels} levels vs "
                f"{other.attribute!r}/{other.levels} levels"
            )
        base = self._pyramid[0]
        merged = MultiResolutionHistogram(
            self.attribute,
            base.buckets,
            (base.lo, base.hi),
            self.levels,
            encoding=base.encoding,
        )
        merged._pyramid = [
            a.merge(b) for a, b in zip(self._pyramid, other._pyramid)
        ]
        return merged

    def merge_many(self, others) -> "MultiResolutionHistogram":
        """Level-wise single-pass merge over this and all of *others*."""
        others = list(others)
        for other in others:
            if not isinstance(other, MultiResolutionHistogram):
                raise SummaryMergeError(
                    "cannot merge MultiResolutionHistogram with "
                    f"{type(other).__name__}"
                )
            if other.levels != self.levels or other.attribute != self.attribute:
                raise SummaryMergeError(
                    "incompatible multi-resolution histograms: "
                    f"{self.attribute!r}/{self.levels} levels vs "
                    f"{other.attribute!r}/{other.levels} levels"
                )
        base = self._pyramid[0]
        merged = MultiResolutionHistogram(
            self.attribute,
            base.buckets,
            (base.lo, base.hi),
            self.levels,
            encoding=base.encoding,
        )
        merged._pyramid = [
            level.merge_many([o._pyramid[i] for o in others])
            for i, level in enumerate(self._pyramid)
        ]
        return merged

    def copy(self) -> "MultiResolutionHistogram":
        base = self._pyramid[0]
        out = MultiResolutionHistogram(
            self.attribute, base.buckets, (base.lo, base.hi), self.levels,
            encoding=base.encoding,
        )
        out._pyramid = [h.copy() for h in self._pyramid]
        return out

    def fingerprint(self) -> bytes:
        """Content hash of the finest level (the others derive from it)."""
        return self._pyramid[0].fingerprint()

    def encoded_size(self) -> int:
        """Wire size when shipping the full pyramid."""
        return sum(h.encoded_size() for h in self._pyramid)

    def size_at_level(self, i: int) -> int:
        """Wire size when shipping only pyramid level *i*."""
        return self._pyramid[i].encoded_size()

    def best_level_within(self, budget_bytes: int) -> int:
        """Finest level whose encoding fits *budget_bytes* (coarsest if none)."""
        for i, h in enumerate(self._pyramid):
            if h.encoded_size() <= budget_bytes:
                return i
        return self.levels - 1

    def __repr__(self) -> str:
        return (
            f"MultiResolutionHistogram({self.attribute!r}, "
            f"finest={self._pyramid[0].buckets}, levels={self.levels})"
        )
