"""Binary wire codecs for summaries.

The simulator accounts summary sizes via ``encoded_size()``; this module
makes those numbers honest by actually encoding summaries to bytes and
decoding them back. Each attribute summary serializes to a tagged frame::

    [1B kind][2B name length][name utf-8][payload...]

Histogram payloads honour the configured encoding (dense counters,
sparse (index, count) pairs, or an occupancy bitmap — the bitmap
round-trips occupancy, i.e. counts collapse to 0/1, which preserves
query-evaluation semantics exactly). A :class:`ResourceSummary` frame
concatenates its attribute frames behind a small header.
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple

import numpy as np

from ..records.schema import Schema
from .base import AttributeSummary
from .bloom import BloomFilterSummary
from .config import SummaryConfig
from .histogram import HistogramSummary
from .summary import ResourceSummary
from .valueset import ValueSetSummary

_KIND_HISTOGRAM = 1
_KIND_VALUESET = 2
_KIND_BLOOM = 3

_ENCODINGS = ("dense", "sparse", "bitmap")


class CodecError(ValueError):
    """Raised on malformed frames."""


def _pack_name(name: str) -> bytes:
    raw = name.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise CodecError(f"attribute name too long: {len(raw)} bytes")
    return struct.pack("<H", len(raw)) + raw


def _unpack_name(buf: bytes, off: int) -> Tuple[str, int]:
    (n,) = struct.unpack_from("<H", buf, off)
    off += 2
    name = buf[off : off + n].decode("utf-8")
    return name, off + n


# -- histogram ----------------------------------------------------------------

def encode_histogram(h: HistogramSummary) -> bytes:
    head = struct.pack(
        "<BB", _KIND_HISTOGRAM, _ENCODINGS.index(h.encoding)
    ) + _pack_name(h.attribute) + struct.pack("<Idd", h.buckets, h.lo, h.hi)
    if h.encoding == "dense":
        counts = h.counts
        if (counts > 0xFFFFFFFF).any():
            raise CodecError("dense counter overflow (>2^32)")
        payload = counts.astype("<u4").tobytes()
    elif h.encoding == "sparse":
        idx = np.flatnonzero(h.counts)
        counts = h.counts[idx]
        if (counts > 0xFFFFFFFF).any() or h.buckets > 0xFFFFFFFF:
            raise CodecError("sparse entry overflow")
        payload = struct.pack("<I", idx.size)
        payload += idx.astype("<u4").tobytes() + counts.astype("<u4").tobytes()
    else:  # bitmap
        payload = np.packbits(h.counts > 0).tobytes()
    return head + payload


def decode_histogram(buf: bytes, off: int = 0) -> Tuple[HistogramSummary, int]:
    kind, enc_idx = struct.unpack_from("<BB", buf, off)
    if kind != _KIND_HISTOGRAM:
        raise CodecError(f"expected histogram frame, got kind {kind}")
    if enc_idx >= len(_ENCODINGS):
        raise CodecError(f"unknown histogram encoding index {enc_idx}")
    off += 2
    name, off = _unpack_name(buf, off)
    buckets, lo, hi = struct.unpack_from("<Idd", buf, off)
    off += struct.calcsize("<Idd")
    encoding = _ENCODINGS[enc_idx]
    if encoding == "dense":
        counts = np.frombuffer(buf, dtype="<u4", count=buckets, offset=off)
        off += buckets * 4
        counts = counts.astype(np.int64)
    elif encoding == "sparse":
        (n_entries,) = struct.unpack_from("<I", buf, off)
        off += 4
        idx = np.frombuffer(buf, dtype="<u4", count=n_entries, offset=off)
        off += n_entries * 4
        vals = np.frombuffer(buf, dtype="<u4", count=n_entries, offset=off)
        off += n_entries * 4
        counts = np.zeros(buckets, dtype=np.int64)
        counts[idx.astype(np.int64)] = vals.astype(np.int64)
    else:  # bitmap: occupancy only
        nbytes = (buckets + 7) // 8
        bits = np.unpackbits(
            np.frombuffer(buf, dtype=np.uint8, count=nbytes, offset=off)
        )[:buckets]
        off += nbytes
        counts = bits.astype(np.int64)
    return (
        HistogramSummary(name, buckets, (lo, hi), encoding=encoding, counts=counts),
        off,
    )


# -- value set ----------------------------------------------------------------

def encode_valueset(s: ValueSetSummary) -> bytes:
    head = struct.pack("<BB", _KIND_VALUESET, 0) + _pack_name(s.attribute)
    values = sorted(s.values)
    payload = struct.pack("<I", len(values))
    for v in values:
        raw = v.encode("utf-8")
        payload += struct.pack("<H", len(raw)) + raw
    return head + payload


def decode_valueset(buf: bytes, off: int = 0) -> Tuple[ValueSetSummary, int]:
    kind, _ = struct.unpack_from("<BB", buf, off)
    if kind != _KIND_VALUESET:
        raise CodecError(f"expected value-set frame, got kind {kind}")
    off += 2
    name, off = _unpack_name(buf, off)
    (n,) = struct.unpack_from("<I", buf, off)
    off += 4
    values = []
    for _ in range(n):
        v, off = _unpack_name(buf, off)
        values.append(v)
    return ValueSetSummary(name, values), off


# -- bloom filter ---------------------------------------------------------------

def encode_bloom(f: BloomFilterSummary) -> bytes:
    head = struct.pack("<BB", _KIND_BLOOM, 0) + _pack_name(f.attribute)
    head += struct.pack("<IH", f.bits, f.num_hashes)
    payload = np.packbits(f._array).tobytes()
    return head + payload


def decode_bloom(buf: bytes, off: int = 0) -> Tuple[BloomFilterSummary, int]:
    kind, _ = struct.unpack_from("<BB", buf, off)
    if kind != _KIND_BLOOM:
        raise CodecError(f"expected bloom frame, got kind {kind}")
    off += 2
    name, off = _unpack_name(buf, off)
    bits, num_hashes = struct.unpack_from("<IH", buf, off)
    off += struct.calcsize("<IH")
    nbytes = (bits + 7) // 8
    arr = np.unpackbits(
        np.frombuffer(buf, dtype=np.uint8, count=nbytes, offset=off)
    )[:bits].astype(bool)
    off += nbytes
    out = BloomFilterSummary(name, bits, num_hashes)
    out._array = arr
    return out, off


# -- dispatch ----------------------------------------------------------------

def encode_attribute(summary: AttributeSummary) -> bytes:
    if isinstance(summary, HistogramSummary):
        return encode_histogram(summary)
    if isinstance(summary, ValueSetSummary):
        return encode_valueset(summary)
    if isinstance(summary, BloomFilterSummary):
        return encode_bloom(summary)
    raise CodecError(
        f"no codec for {type(summary).__name__} "
        "(multi-resolution pyramids ship one level at a time)"
    )


def decode_attribute(buf: bytes, off: int = 0) -> Tuple[AttributeSummary, int]:
    if off >= len(buf):
        raise CodecError("truncated frame")
    kind = buf[off]
    if kind == _KIND_HISTOGRAM:
        return decode_histogram(buf, off)
    if kind == _KIND_VALUESET:
        return decode_valueset(buf, off)
    if kind == _KIND_BLOOM:
        return decode_bloom(buf, off)
    raise CodecError(f"unknown frame kind {kind}")


_MAGIC = b"RSUM"


def encode_summary(summary: ResourceSummary) -> bytes:
    """Serialize a whole :class:`ResourceSummary` to bytes."""
    frames = b"".join(
        encode_attribute(summary.attributes[spec.name])
        for spec in summary.schema
    )
    head = _MAGIC + struct.pack(
        "<dI", summary.created_at, len(summary.attributes)
    )
    return head + frames


def decode_summary(
    buf: bytes, schema: Schema, config: SummaryConfig
) -> ResourceSummary:
    """Reconstruct a :class:`ResourceSummary` produced by
    :func:`encode_summary` against the shared *schema*."""
    if buf[:4] != _MAGIC:
        raise CodecError("bad magic; not a summary frame")
    created_at, n_attrs = struct.unpack_from("<dI", buf, 4)
    off = 4 + struct.calcsize("<dI")
    attrs: Dict[str, AttributeSummary] = {}
    for _ in range(n_attrs):
        summary, off = decode_attribute(buf, off)
        attrs[summary.attribute] = summary
    missing = [s.name for s in schema if s.name not in attrs]
    if missing:
        raise CodecError(f"frame missing attributes {missing}")
    return ResourceSummary(schema, config, attrs, created_at=created_at)
