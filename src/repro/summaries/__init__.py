"""Condensed, mergeable summaries of resource record sets."""

from .base import AttributeSummary, SummaryMergeError
from .bloom import BloomFilterSummary, optimal_parameters
from .config import SummaryConfig
from .histogram import HistogramSummary
from .multires import MultiResolutionHistogram, coarsen
from .summary import ResourceSummary
from .valueset import ValueSetSummary

__all__ = [
    "AttributeSummary",
    "SummaryMergeError",
    "HistogramSummary",
    "ValueSetSummary",
    "BloomFilterSummary",
    "optimal_parameters",
    "MultiResolutionHistogram",
    "coarsen",
    "ResourceSummary",
    "SummaryConfig",
]
