"""repro — a reproduction of ROADS (ICPP 2008).

ROADS is a Replication Overlay Assisted resource Discovery Service for
federated systems (Hao Yang, Fan Ye, Zhen Liu; IBM T.J. Watson). This
package implements the full system and every substrate its evaluation
depends on:

* :mod:`repro.records` — resource records, schemas, columnar stores;
* :mod:`repro.summaries` — histogram / value-set / Bloom-filter /
  multi-resolution summaries with mergeable, no-false-negative semantics;
* :mod:`repro.query` — multi-dimensional range queries and selectivity
  tooling;
* :mod:`repro.sim`, :mod:`repro.net` — discrete-event simulator and a
  5-D synthesized Internet delay space;
* :mod:`repro.hierarchy` — federated hierarchy: balanced join, bottom-up
  aggregation, heartbeat maintenance and root election;
* :mod:`repro.overlay` — the replication overlay and start-anywhere
  query routing;
* :mod:`repro.roads` — the assembled ROADS system with voluntary-sharing
  policies;
* :mod:`repro.sword`, :mod:`repro.central` — the DHT-based and
  central-repository baselines;
* :mod:`repro.workload` — the evaluation's record and query workloads;
* :mod:`repro.analysis` — the Section IV closed-form overhead model;
* :mod:`repro.experiments` — drivers for Table I and Figures 3-11;
* :mod:`repro.prototype` — the Figure 11 response-time substrate.

Quickstart::

    from repro import RoadsConfig, RoadsSystem, SearchRequest
    from repro.workload import WorkloadConfig, generate_node_stores, generate_queries

    wcfg = WorkloadConfig(num_nodes=64, records_per_node=100)
    cfg = RoadsConfig(num_nodes=64, records_per_node=100)
    system = RoadsSystem.build(cfg, generate_node_stores(wcfg))
    result = system.search(SearchRequest(generate_queries(wcfg, num_queries=1)[0]))
    print(result.latency, result.total_matches)
"""

from .records import (
    AttributeSpec,
    AttributeType,
    RecordStore,
    ResourceRecord,
    Schema,
    categorical,
    numeric,
)
from .query import EqualsPredicate, Query, RangePredicate
from .summaries import (
    BloomFilterSummary,
    HistogramSummary,
    ResourceSummary,
    SummaryConfig,
    ValueSetSummary,
)
from .roads import (
    OpenPolicy,
    PolicyTable,
    QueryOutcome,
    RetryPolicy,
    RoadsConfig,
    RoadsSystem,
    SearchRequest,
    SearchResult,
    SharingPolicy,
    TieredPolicy,
)
from .sword import SwordConfig, SwordSystem
from .central import CentralConfig, CentralSystem

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # records
    "AttributeSpec",
    "AttributeType",
    "Schema",
    "ResourceRecord",
    "RecordStore",
    "numeric",
    "categorical",
    # queries
    "Query",
    "RangePredicate",
    "EqualsPredicate",
    # summaries
    "SummaryConfig",
    "ResourceSummary",
    "HistogramSummary",
    "ValueSetSummary",
    "BloomFilterSummary",
    # systems
    "RoadsSystem",
    "RoadsConfig",
    "SearchRequest",
    "SearchResult",
    "RetryPolicy",
    "QueryOutcome",
    "SharingPolicy",
    "OpenPolicy",
    "TieredPolicy",
    "PolicyTable",
    "SwordSystem",
    "SwordConfig",
    "CentralSystem",
    "CentralConfig",
]
