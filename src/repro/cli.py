"""Command-line interface.

``python -m repro <command>`` exposes the library without writing any
code:

* ``selftest`` — build a small federation, verify query exactness and
  the comparative orderings against SWORD and the central repository;
* ``figure <target>`` — regenerate one of the paper's tables/figures
  (``table1``, ``fig3`` … ``fig11``) and optionally save the rows;
* ``telemetry`` — run an instrumented scenario and print per-server
  load tables (root-load share with and without the replication
  overlay), optionally exporting JSONL events, a Chrome trace and a
  Prometheus metrics snapshot;
* ``bench`` — the benchmark observatory: ``run`` a scenario into a
  ``BENCH_<scenario>.json`` artifact, ``compare`` one against a
  committed baseline (non-zero exit on regression or paper-shape
  violation), ``trajectory`` to append/inspect the perf time series,
  ``list`` the registered scenarios;
* ``profile`` — run a scenario's canonical run under the hierarchical
  call-path profiler: top-K self-time table, optional tree view,
  collapsed-stack / speedscope flame-graph exports, and ``--diff``
  between two saved profile documents;
* ``demo`` — a narrated quickstart run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments import (
    ExperimentSettings,
    SELECTIVITY_SWEEP,
    analytical_rows,
    fig3_latency_vs_nodes,
    fig4_update_overhead_vs_nodes,
    fig5_query_overhead_vs_nodes,
    fig6_latency_vs_dimensions,
    fig7_query_overhead_vs_dimensions,
    fig8_update_overhead_vs_records,
    fig9_latency_vs_overlap,
    fig10_latency_vs_degree,
    fig11_response_time_vs_selectivity,
    measured_rows,
    print_table,
)
from .experiments.export import save_rows_csv

_FIGURES = {
    "table1": lambda s: analytical_rows() + measured_rows(
        s.with_(num_nodes=min(s.num_nodes, 96), records_per_node=800)
    ),
    "fig3": lambda s: fig3_latency_vs_nodes(s, (64, 192, 320)),
    "fig4": lambda s: fig4_update_overhead_vs_nodes(s, (64, 192, 320)),
    "fig5": lambda s: fig5_query_overhead_vs_nodes(s, (64, 192, 320)),
    "fig6": lambda s: fig6_latency_vs_dimensions(s, (2, 4, 6, 8)),
    "fig7": lambda s: fig7_query_overhead_vs_dimensions(s, (2, 4, 6, 8)),
    "fig8": lambda s: fig8_update_overhead_vs_records(
        s.with_(num_nodes=min(s.num_nodes, 192)), (50, 200, 500)
    ),
    "fig9": lambda s: fig9_latency_vs_overlap(
        s.with_(num_nodes=min(s.num_nodes, 192)), (1, 6, 12)
    ),
    "fig10": lambda s: fig10_latency_vs_degree(s, (4, 8, 12)),
    "fig11": lambda s: fig11_response_time_vs_selectivity(
        s.with_(num_nodes=320, records_per_node=500, runs=1),
        SELECTIVITY_SWEEP,
        queries_per_group=20,
    ),
}


def _telemetry_scenario(
    num_nodes: int,
    records_per_node: int,
    num_queries: int,
    seed: int,
    *,
    use_overlay: bool,
    capacity: int = 200_000,
):
    """Build an instrumented federation and run a query batch over it.

    Returns ``(system, telemetry, root_id)`` with all query traffic
    recorded in the per-server metrics registry and the event bus.
    """
    from .experiments.runner import instrumented_query_run
    from .telemetry import Telemetry

    settings = ExperimentSettings.smoke().with_(
        num_nodes=num_nodes,
        records_per_node=records_per_node,
        num_queries=max(1, num_queries),
        seed=seed,
    )
    return instrumented_query_run(
        settings, seed,
        use_overlay=use_overlay,
        telemetry=Telemetry(capacity=capacity),
        num_queries=num_queries,
    )


def _print_load_tables(
    num_nodes: int,
    records_per_node: int,
    num_queries: int,
    seed: int,
    top: int,
) -> tuple:
    """Per-server query load with and without the overlay; returns the
    (system, telemetry) pair of the with-overlay run for exporting."""
    from .sim import QUERY
    from .telemetry import per_server_load_rows, root_load_share

    kept = None
    for use_overlay in (True, False):
        system, tel, root_id = _telemetry_scenario(
            num_nodes, records_per_node, num_queries, seed,
            use_overlay=use_overlay,
        )
        rows = per_server_load_rows(
            system.metrics.registry, category=QUERY, phase="forward",
            top=top, root_id=root_id,
        )
        for r in rows:
            r["share"] = f"{r['share']:.1%}"
        label = "with overlay" if use_overlay else "without overlay (root entry)"
        print()
        print_table(
            rows,
            title=(
                f"hottest {len(rows)} servers by query-forward load "
                f"({label}; root={root_id})"
            ),
        )
        share = root_load_share(
            system.metrics.registry, root_id, category=QUERY, phase="forward"
        )
        print(f"root-load share ({label}): {share:.1%}")
        if use_overlay:
            kept = (system, tel)
    return kept


def _cmd_telemetry(args) -> int:
    from .telemetry.export import (
        write_chrome_trace, write_jsonl, write_prometheus,
    )

    system, tel = _print_load_tables(
        args.nodes, args.records, args.queries, args.seed, args.top
    )
    latency = system.metrics.registry.merged_histogram("query.latency")
    s = latency.summary()
    print(
        f"query latency (s): p50={s['p50']:.3f} p95={s['p95']:.3f} "
        f"p99={s['p99']:.3f} over {s['count']} queries"
    )
    print(
        f"events recorded: {tel.bus.emitted} "
        f"(retained {len(tel.bus)}, dropped {tel.bus.dropped})"
    )
    if args.export_jsonl:
        n = write_jsonl(tel.events(), args.export_jsonl)
        print(f"{n} events written to {args.export_jsonl}")
    if args.export_chrome:
        n = write_chrome_trace(tel.events(), args.export_chrome)
        print(f"{n} trace events written to {args.export_chrome} "
              "(load in Perfetto / chrome://tracing)")
    if args.export_prom:
        write_prometheus(system.metrics.registry, args.export_prom)
        print(f"metrics snapshot written to {args.export_prom}")
    return 0


def _cmd_trace(args) -> int:
    """Reconstruct causal trees from an exported event artifact."""
    from .telemetry import assemble_traces, critical_path, diff_critical_paths
    from .telemetry.export import read_jsonl, write_chrome_trace

    events = read_jsonl(args.artifact)
    trees = assemble_traces(events)
    if not trees:
        print(
            f"no causally-tagged events in {args.artifact} "
            "(produce one with `repro telemetry --export-jsonl`)"
        )
        return 1
    if args.diff:
        tid_a, tid_b = args.diff
        missing = [t for t in (tid_a, tid_b) if t not in trees]
        if missing:
            print(f"trace(s) {missing} not found "
                  f"(have: {', '.join(str(t) for t in sorted(trees))})")
            return 1
        path_a = critical_path(trees[tid_a])
        path_b = critical_path(trees[tid_b])
        for tid, path in ((tid_a, path_a), (tid_b, path_b)):
            if not path.segments:
                print(f"trace {tid} has no query.arrive leaf: "
                      "no critical path to diff")
                return 1
        print(diff_critical_paths(
            path_a, path_b,
            label_a=f"trace {tid_a}", label_b=f"trace {tid_b}",
        ))
        return 0
    if args.list:
        print(f"{len(trees)} traces in {args.artifact}:")
        for tid in sorted(trees):
            tree = trees[tid]
            root = tree.root
            name = root.name if root is not None else "?"
            print(
                f"  trace {tid:>6}: {len(tree)} nodes, "
                f"root {name} @ {root.start:.3f}s"
                if root is not None
                else f"  trace {tid:>6}: {len(tree)} nodes"
            )
        return 0
    if args.trace_id is not None:
        tree = trees.get(args.trace_id)
        if tree is None:
            print(f"trace {args.trace_id} not found "
                  f"(have: {', '.join(str(t) for t in sorted(trees))})")
            return 1
    else:
        # Default: the largest tree — the most interesting search.
        tree = max(trees.values(), key=lambda t: (len(t), -t.trace_id))
    path = critical_path(tree)
    if args.json:
        doc = {
            "trace_id": tree.trace_id,
            "nodes": len(tree),
            "roots": len(tree.roots),
            "critical_path": {
                "total_seconds": path.total,
                "dominant": path.dominant if path.segments else None,
                "by_category": path.by_category() if path.segments else {},
                "segments": [
                    {
                        "name": seg.name,
                        "category": seg.category,
                        "seconds": seg.seconds,
                    }
                    for seg in path.segments
                ],
            },
        }
        _emit_json(doc, args.json, "trace document")
        if args.json == "-":
            return 0
    print(f"trace {tree.trace_id}: {len(tree)} nodes, "
          f"{len(tree.roots)} root(s)")
    print(tree.format(max_nodes=args.max_nodes))
    if path.segments:
        print()
        print(path.format())
    else:
        print("(no query.arrive leaf under the root: no critical path)")
    if args.chrome:
        n = write_chrome_trace(events, args.chrome)
        print(f"\n{n} trace events written to {args.chrome} "
              "(load in Perfetto; causal flows drawn as arrows)")
    return 0


def _cmd_health(args) -> int:
    """Build a small federation under load and print its health report."""
    import json

    from .net.transport import ServiceConfig
    from .roads import RoadsConfig, RoadsSystem
    from .roads.load import LoadConfig, LoadGenerator
    from .roads.search import RetryPolicy
    from .sim.rng import SeedSequenceFactory
    from .telemetry import HealthProbe, HealthSLO, Telemetry
    from .workload import WorkloadConfig, generate_node_stores
    from .workload.queries import generate_queries

    wcfg = WorkloadConfig(
        num_nodes=args.nodes, records_per_node=args.records, seed=args.seed
    )
    stores = generate_node_stores(wcfg)
    config = RoadsConfig(
        num_nodes=args.nodes,
        records_per_node=args.records,
        summary_interval=args.interval,
        delta_updates=True,
        loss_rate=args.loss,
        seed=args.seed,
    )
    tel = Telemetry()
    system = RoadsSystem.build(config, stores, telemetry=tel)
    system.enable_service(
        ServiceConfig(
            service_time=args.service_time, queue_limit=args.queue_limit
        )
    )
    system.update_plane.start()
    probe = HealthProbe(
        system, interval=args.probe_interval, stale_after=1.5 * args.interval
    ).start()
    queries = generate_queries(wcfg, num_queries=max(args.queries, 1))
    seeds = SeedSequenceFactory(args.seed)
    gen = LoadGenerator(
        system,
        queries,
        LoadConfig(
            rate=args.rate,
            horizon=args.duration,
            retry=RetryPolicy(timeout=2.0, retries=2, backoff_base=0.2),
        ),
        seeds.fresh_generator("health-load"),
    )
    report_load = gen.run()
    probe.stop()
    # Judge loss and coverage against the injected rate (plus headroom):
    # the probe reports what *happened*; the SLO says what is acceptable,
    # and deliberately lossy links legitimately lower both.
    defaults = HealthSLO()
    slo = HealthSLO(
        max_loss_fraction=max(defaults.max_loss_fraction, 3 * args.loss),
        min_coverage=min(defaults.min_coverage, 1.0 - 3 * args.loss),
    )
    report = probe.report(slo)
    print(
        f"load: {report_load.offered} queries offered at {args.rate}/s, "
        f"{report_load.ok} ok, {report_load.shed_queries} shed"
    )
    print(report.format())
    if args.export:
        with open(args.export, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"health report written to {args.export}")
    return 0 if report.healthy else 1


def _cmd_watch(args) -> int:
    """Run a federation under load with the full observability stack
    armed: time-series sampler, SLO-judging probe, flight recorder."""
    from .net.transport import ServiceConfig
    from .roads import RoadsConfig, RoadsSystem
    from .roads.load import LoadConfig, LoadGenerator
    from .roads.search import RetryPolicy
    from .sim.rng import SeedSequenceFactory
    from .telemetry import (
        FlightRecorder,
        HealthProbe,
        HealthSLO,
        SeriesConfig,
        SeriesSampler,
        Telemetry,
    )
    from .telemetry.export import series_jsonl, write_series_jsonl
    from .workload import WorkloadConfig, generate_node_stores
    from .workload.queries import generate_queries

    wcfg = WorkloadConfig(
        num_nodes=args.nodes, records_per_node=args.records, seed=args.seed
    )
    stores = generate_node_stores(wcfg)
    config = RoadsConfig(
        num_nodes=args.nodes,
        records_per_node=args.records,
        summary_interval=args.interval,
        delta_updates=True,
        loss_rate=args.loss,
        seed=args.seed,
    )
    tel = Telemetry()
    system = RoadsSystem.build(config, stores, telemetry=tel)
    system.enable_service(
        ServiceConfig(
            service_time=args.service_time, queue_limit=args.queue_limit
        )
    )
    # Shadow-oracle quality plane: read-only, so watching it is free of
    # perturbation; its quality.* gauges ride the same sampler.
    system.attach_quality()
    system.update_plane.start()
    sampler = SeriesSampler(
        system, SeriesConfig(interval=args.sample_interval)
    ).start()
    probe = HealthProbe(
        system,
        interval=args.probe_interval,
        stale_after=1.5 * args.interval,
        slo=HealthSLO(),
    ).start()
    recorder = FlightRecorder(
        tel, sampler=sampler, dump_dir=args.postmortem_dir
    ).bind(probe)
    queries = generate_queries(wcfg, num_queries=max(args.queries, 1))
    seeds = SeedSequenceFactory(args.seed)
    gen = LoadGenerator(
        system,
        queries,
        LoadConfig(
            rate=args.rate,
            horizon=args.duration,
            retry=RetryPolicy(timeout=2.0, retries=2, backoff_base=0.2),
        ),
        seeds.fresh_generator("watch-load"),
    )
    report_load = gen.run()
    sampler.stop()
    probe.stop()
    recorder.close()
    say = _narrator(args.json)
    say(
        f"load: {report_load.offered} queries offered at {args.rate}/s, "
        f"{report_load.ok} ok, {report_load.shed_queries} shed; "
        f"{sampler.samples} samples over "
        f"{len(sampler.all_series())} series"
    )
    if args.format == "sparkline":
        say(sampler.format(metrics=args.metrics or None))
    elif args.format == "csv":
        say("metric,server,t,value")
        for row in sampler.rows(rollups=False):
            server = "" if row["server"] is None else row["server"]
            say(f"{row['metric']},{server},{row['t']},{row['value']}")
    elif args.format == "jsonl":
        say(series_jsonl(sampler.rows()))
    if args.export:
        n = write_series_jsonl(sampler.rows(), args.export)
        say(f"{n} series rows written to {args.export}")
    if args.json:
        _emit_json(list(sampler.rows()), args.json, "series rows JSON")
    if probe.breaches:
        say(f"SLO breaches: "
              + ", ".join(c.name for c in probe.breaches))
    say(f"postmortems captured: {len(recorder.bundles)}")
    for path in recorder.dumped:
        say(f"  postmortem bundle written to {path}")
    return 0


def _cmd_quality(args) -> int:
    """Run a federation under load with the shadow-oracle quality plane
    armed; print the answer-quality summary and per-node breakdown."""
    from .experiments.report import format_table
    from .net.transport import ServiceConfig
    from .roads import RoadsConfig, RoadsSystem
    from .roads.load import LoadConfig, LoadGenerator
    from .roads.search import RetryPolicy
    from .sim.rng import SeedSequenceFactory
    from .telemetry import HealthProbe, HealthSLO, Telemetry
    from .workload import WorkloadConfig, generate_node_stores
    from .workload.queries import generate_queries

    say = _narrator(args.json)
    wcfg = WorkloadConfig(
        num_nodes=args.nodes, records_per_node=args.records, seed=args.seed
    )
    stores = generate_node_stores(wcfg)
    config = RoadsConfig(
        num_nodes=args.nodes,
        records_per_node=args.records,
        summary_interval=args.interval,
        delta_updates=True,
        loss_rate=args.loss,
        seed=args.seed,
    )
    tel = Telemetry()
    system = RoadsSystem.build(config, stores, telemetry=tel)
    system.enable_service(
        ServiceConfig(
            service_time=args.service_time, queue_limit=args.queue_limit
        )
    )
    plane = system.attach_quality()
    system.update_plane.start()
    slo = (
        HealthSLO(min_precision=args.min_precision)
        if args.min_precision is not None
        else None
    )
    probe = HealthProbe(
        system, interval=0.5, stale_after=1.5 * args.interval, slo=slo
    ).start()
    queries = generate_queries(wcfg, num_queries=max(args.queries, 1))
    seeds = SeedSequenceFactory(args.seed)
    gen = LoadGenerator(
        system,
        queries,
        LoadConfig(
            rate=args.rate,
            horizon=args.duration,
            retry=RetryPolicy(timeout=2.0, retries=2, backoff_base=0.2),
        ),
        seeds.fresh_generator("quality-load"),
    )
    report_load = gen.run()
    probe.stop()
    snap = plane.snapshot()
    say(
        f"load: {report_load.offered} queries offered at {args.rate}/s, "
        f"{report_load.ok} ok, {report_load.shed_queries} shed"
    )
    say(
        f"oracle: {snap['audits']} searches audited — "
        f"precision {snap['precision']:.4f}, recall {snap['recall']:.4f}, "
        f"fp-rate {snap['fp_rate']:.4f}, "
        f"mean divergence age {snap['divergence_age_mean']:.3g}s"
    )
    say(
        f"confusion: tp={snap['tp']} fp={snap['fp']} "
        f"fn={snap['fn']} tn={snap['tn']}; owner contacts "
        f"{snap['owner_hits']} justified / "
        f"{snap['owner_false_positives']} false-positive"
    )
    node_rows = [
        {
            "server": sid,
            "tp": counts["tp"],
            "fp": counts["fp"],
            "fn": counts["fn"],
            "tn": counts["tn"],
        }
        for sid, counts in sorted(plane.per_node.items())
        if counts["fp"] or counts["fn"]
    ][: args.top]
    if node_rows:
        say("servers with misjudged visits/prunes (worst first):")
        node_rows.sort(key=lambda r: -(r["fp"] + r["fn"]))
        say(format_table(node_rows))
    attributions = [
        a.to_dict() for rep in plane.reports for a in rep.attributions
    ]
    if attributions:
        say(f"divergence attributions ({len(attributions)} total, "
            f"showing up to {args.top}):")
        say(format_table(attributions[: args.top]))
    if args.json:
        _emit_json(
            {
                "snapshot": snap,
                "per_node": {
                    str(sid): counts
                    for sid, counts in sorted(plane.per_node.items())
                },
                "reports": [r.to_dict() for r in plane.reports],
            },
            args.json,
            "quality report JSON",
        )
    if args.min_precision is not None:
        return 0 if snap["precision"] >= args.min_precision else 1
    return 0


def _cmd_postmortem(args) -> int:
    """Render postmortem bundles dumped by the flight recorder."""
    from pathlib import Path

    from .telemetry import PostmortemBundle

    target = Path(args.path)
    if target.is_dir():
        paths = sorted(target.glob("postmortem_*.json"))
    else:
        paths = [target]
    if not paths or not paths[0].exists():
        print(f"no postmortem bundles under {target} "
              "(produce them with `repro watch --postmortem-dir`)")
        return 1
    docs = []
    for i, path in enumerate(paths):
        bundle = PostmortemBundle.load(path)
        if args.json:
            docs.append({"path": str(path), **bundle.to_dict()})
            continue
        if i:
            print()
        print(f"== {path} ==")
        print(bundle.format(max_nodes=args.max_nodes))
    if docs:
        _emit_json(
            docs[0] if len(docs) == 1 else docs, args.json, "postmortem JSON"
        )
    return 0


def _cmd_selftest(args) -> int:
    from .experiments import run_trial

    settings = ExperimentSettings(
        num_nodes=48,
        records_per_node=120,
        num_queries=30,
        runs=1,
        seed=args.seed,
    )
    print("building paired ROADS / SWORD / central systems (48 nodes)...")
    trial = run_trial(settings, args.seed, include_central=True)
    checks = [
        (
            "ROADS update bytes below SWORD",
            trial.roads.update_bytes_window < trial.sword.update_bytes_window,
        ),
        (
            "SWORD query bytes below ROADS",
            trial.sword.mean_query_bytes > 0
            and trial.sword.mean_query_bytes < trial.roads.mean_query_bytes,
        ),
        (
            "ROADS latency below SWORD",
            trial.roads.mean_latency_s < trial.sword.mean_latency_s,
        ),
        (
            "central latency below ROADS",
            trial.central.mean_latency_s < trial.roads.mean_latency_s,
        ),
    ]
    ok = True
    for label, passed in checks:
        print(f"  [{'ok' if passed else 'FAIL'}] {label}")
        ok &= passed
    print("selftest", "passed" if ok else "FAILED")
    if args.telemetry:
        print("\ntelemetry: per-server load attribution (same scale)")
        _print_load_tables(
            settings.num_nodes, settings.records_per_node,
            settings.num_queries, args.seed, top=8,
        )
    return 0 if ok else 1


def _cmd_figure(args) -> int:
    settings = ExperimentSettings.paper().with_(
        num_queries=args.queries, runs=args.runs, seed=args.seed
    )
    rows = _FIGURES[args.target](settings)
    print_table(rows, title=f"{args.target} (quick scale)")
    if args.output:
        save_rows_csv(rows, args.output)
        print(f"rows written to {args.output}")
    return 0


def _cmd_suite(args) -> int:
    from .experiments.suite import run_suite

    run_suite(
        args.out, targets=args.targets, scale=args.scale, seed=args.seed
    )
    print(f"suite results written under {args.out}/")
    return 0


def _narrator(json_target):
    """Progress printer: routed to stderr when stdout carries the JSON."""
    if json_target == "-":
        import functools
        import sys

        return functools.partial(print, file=sys.stderr)
    return print


def _emit_json(doc, target: str, label: str) -> None:
    """Write *doc* to *target* (``-`` = stdout) as pretty JSON."""
    import json
    from pathlib import Path

    text = json.dumps(doc, indent=2, default=str)
    if target == "-":
        print(text)
    else:
        path = Path(target)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n", encoding="utf-8")
        print(f"{label} written to {target}")


def _cmd_bench_run(args) -> int:
    from pathlib import Path

    from .bench import (
        RunPlan,
        append_trajectory,
        artifact_filename,
        run_plans,
        write_artifact,
    )

    # --parallel N: worker processes (bare/0 = one per core). With one
    # scenario the workers drive its internal fan-out (the stress shard
    # sweep); with several, the plans themselves are pooled one per
    # worker and each runs its internals serially — never both, so the
    # machine is not oversubscribed.
    workers = 1 if args.parallel is None else args.parallel
    plans = [
        RunPlan(
            name, scale=args.scale, seed=args.seed,
            profile=not args.no_profile, workers=workers,
        )
        for name in args.scenario
    ]
    pool_workers = 1
    if len(plans) > 1 and workers != 1:
        pool_workers = workers
        plans = [plan.with_(workers=1) for plan in plans]
    artifacts = run_plans(plans, workers=pool_workers)

    say = _narrator(args.json)
    for artifact in artifacts:
        path = write_artifact(
            artifact, Path(args.out) / artifact_filename(artifact.scenario)
        )
        if args.json != "-":
            print_table(
                artifact.rows,
                title=f"{artifact.scenario} ({args.scale} scale)",
            )
        latency = artifact.simulated["latency"]
        say(
            f"\nsimulated: latency p50={latency['p50']:.3f}s "
            f"p95={latency['p95']:.3f}s p99={latency['p99']:.3f}s; "
            f"update bytes/epoch={artifact.simulated['update_bytes_epoch']}; "
            f"root share {artifact.simulated['root_share_overlay']:.1%} with / "
            f"{artifact.simulated['root_share_no_overlay']:.1%} without overlay"
        )
        if artifact.wall:
            say(
                f"wall: {artifact.wall['total_seconds']:.2f}s total, "
                f"{artifact.wall['events_processed']} sim events "
                f"({artifact.wall['events_per_sec']:.0f}/s); hot sections: "
                + ", ".join(
                    f"{name}={stats['seconds']:.3f}s"
                    for name, stats in sorted(
                        artifact.wall["sections"].items(),
                        key=lambda kv: -kv[1]["seconds"],
                    )[:4]
                )
            )
        for failure in artifact.shape["failures"]:
            say(f"shape violation: {failure}")
        say(f"artifact written to {path}")
        if args.trajectory:
            append_trajectory(artifact, args.trajectory)
            say(f"trajectory row appended to {args.trajectory}")
    if args.json:
        docs = [a.to_dict() for a in artifacts]
        _emit_json(
            docs[0] if len(docs) == 1 else docs, args.json, "artifact JSON"
        )
    return 0


def _cmd_profile(args) -> int:
    import json
    from pathlib import Path

    from .telemetry.profiling import (
        PROFILE_SCHEMA,
        collapsed_stacks,
        diff_documents,
        format_top,
        format_tree,
        hotspot_shares,
        speedscope_document,
    )

    if args.diff:
        path_a, path_b = args.diff
        docs = []
        for path in (path_a, path_b):
            doc = json.loads(Path(path).read_text(encoding="utf-8"))
            if doc.get("schema") != PROFILE_SCHEMA:
                print(
                    f"{path}: not a {PROFILE_SCHEMA} document "
                    "(produce one with `repro profile <scenario> --json`)"
                )
                return 2
            docs.append(doc)
        print(
            diff_documents(
                docs[0], docs[1],
                label_a=path_a, label_b=path_b, k=args.top,
            )
        )
        return 0

    if args.scenario is None:
        print("a scenario is required unless --diff is given "
              "(see `repro bench list`)")
        return 2
    from .bench import RunPlan, profile_scenario

    document = profile_scenario(
        RunPlan(args.scenario, scale=args.scale, seed=args.seed)
    )
    if args.json == "-":
        # Bare --json streams the document alone: no report, no exports.
        print(json.dumps(document, indent=2))
        return 0
    print(
        f"== {args.scenario} ({args.scale} scale, seed {args.seed}): "
        f"{document['total_seconds']:.3f}s profiled =="
    )
    print(format_top(document, k=args.top))
    if args.tree:
        print()
        print(format_tree(document))
    shares = hotspot_shares(document)
    hot = sorted(shares.items(), key=lambda kv: -kv[1])[:4]
    print(
        "\nhotspots: "
        + ", ".join(f"{name} {share:.1%}" for name, share in hot)
        + f"; census fingerprint {document['census_fingerprint']}"
    )
    def under_out(path: str) -> Path:
        # Relative export paths land under the shared --out directory.
        p = Path(path)
        return p if p.is_absolute() else Path(args.out) / p

    if args.json:
        target = under_out(args.json)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8"
        )
        print(f"profile document written to {target}")
    if args.collapsed:
        target = under_out(args.collapsed)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(collapsed_stacks(document), encoding="utf-8")
        print(f"collapsed stacks written to {target}")
    if args.speedscope:
        target = under_out(args.speedscope)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(speedscope_document(
                document, name=f"repro profile {args.scenario}"
            )) + "\n",
            encoding="utf-8",
        )
        print(f"speedscope profile written to {target}")
    return 0


def _cmd_bench_compare(args) -> int:
    from .bench import compare_artifacts, format_comparison, load_artifact

    current = load_artifact(args.current)
    baseline = load_artifact(args.baseline)
    result = compare_artifacts(
        current, baseline,
        tolerance=args.tolerance,
        wall_tolerance=args.wall_tolerance,
        include_wall=not args.skip_wall,
    )
    print(format_comparison(result, verbose=args.verbose))
    return 0 if result.ok else 1


def _cmd_bench_trajectory(args) -> int:
    from .bench import append_trajectory, format_trajectory, load_artifact, load_trajectory

    for artifact_path in args.artifacts:
        row = append_trajectory(load_artifact(artifact_path), args.file)
        print(f"appended {row['scenario']} @ {row['git_rev']} to {args.file}")
    print(format_trajectory(load_trajectory(args.file)))
    return 0


def _cmd_bench_list(args) -> int:
    from .bench import SCALES, SCENARIOS

    print(f"scales: {', '.join(SCALES)} (or REPRO_BENCH_SCALE)")
    for name in sorted(SCENARIOS):
        print(f"  {name:<8} {SCENARIOS[name].title}")
    return 0


def _cmd_demo(args) -> int:
    import runpy
    from pathlib import Path

    if args.telemetry:
        return _demo_telemetry(args)
    script = Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    if script.exists():
        runpy.run_path(str(script), run_name="__main__")
        return 0
    print("examples/quickstart.py not found; run from a source checkout")
    return 1


def _demo_telemetry(args) -> int:
    """Narrated telemetry walkthrough: one traced query, then load tables."""
    from .workload import WorkloadConfig, generate_node_stores
    from .workload.queries import generate_queries

    print("== telemetry demo: one traced query on a 16-node federation ==")
    system, tel, root_id = _telemetry_scenario(
        16, 40, 0, 7, use_overlay=True
    )
    wcfg = WorkloadConfig(num_nodes=16, records_per_node=40, seed=7)
    query = generate_queries(wcfg, num_queries=1)[0]
    from .roads import SearchRequest

    outcome = system.search(
        SearchRequest(query, client_node=0, trace=True)
    ).outcome
    print(f"query contacted {outcome.servers_contacted} servers, "
          f"{outcome.total_matches} matches, "
          f"latency {outcome.latency * 1000:.1f} ms; trace:")
    print(outcome.format_trace())
    spans = [e for e in tel.events() if e.kind == "span"]
    print(f"\n{tel.bus.emitted} structured events on the bus "
          f"({len(spans)} spans); per-server load tables:")
    _print_load_tables(16, 40, 30, 7, top=8)
    return 0


def _common_options() -> argparse.ArgumentParser:
    """Parent parser for the flags every artifact-producing verb shares.

    ``bench run``, ``profile``, ``trace``, ``watch``, ``quality`` and
    ``postmortem`` inherit ``--scale/--seed/--out/--json`` from this
    one parser,
    so a new verb cannot re-declare them with drifting defaults. Verbs
    consume the subset that applies to them (``trace`` and
    ``postmortem`` read existing artifacts, so ``--scale/--seed`` are
    accepted for uniformity but have nothing to select).
    """
    from .bench import SCALES

    common = argparse.ArgumentParser(add_help=False)
    group = common.add_argument_group("shared options")
    group.add_argument(
        "--scale", choices=SCALES, default="quick",
        help="benchmark scale preset (scenario-driven verbs)",
    )
    group.add_argument("--seed", type=int, default=1, help="base RNG seed")
    group.add_argument(
        "--out", default=".", metavar="DIR",
        help="directory for produced artifacts (default: current dir)",
    )
    group.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="write the verb's primary JSON document to PATH "
             "(bare flag: print to stdout)",
    )
    return common


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ROADS reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    common = _common_options()

    p = sub.add_parser("selftest", help="verify comparative orderings")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--telemetry", action="store_true",
        help="also print per-server load attribution tables",
    )
    p.set_defaults(fn=_cmd_selftest)

    p = sub.add_parser(
        "telemetry",
        help="run an instrumented scenario; print per-server load tables",
    )
    p.add_argument("--nodes", type=int, default=64)
    p.add_argument("--records", type=int, default=100)
    p.add_argument("--queries", type=int, default=40)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--top", type=int, default=10,
                   help="rows in the hottest-servers table")
    p.add_argument("--export-jsonl", metavar="PATH",
                   help="dump bus events as JSON-Lines")
    p.add_argument("--export-chrome", metavar="PATH",
                   help="write a Chrome trace_event JSON (Perfetto-loadable)")
    p.add_argument("--export-prom", metavar="PATH",
                   help="write a Prometheus-style metrics snapshot")
    p.set_defaults(fn=_cmd_telemetry)

    p = sub.add_parser(
        "trace",
        parents=[common],
        help="reconstruct causal trees from an exported JSONL artifact",
    )
    p.add_argument("artifact", help="events JSONL written by "
                                    "`repro telemetry --export-jsonl`")
    p.add_argument("--trace-id", type=int, default=None,
                   help="trace to print (default: the largest)")
    p.add_argument("--list", action="store_true",
                   help="list the traces in the artifact and exit")
    p.add_argument("--max-nodes", type=int, default=200,
                   help="cap on rendered tree nodes")
    p.add_argument("--chrome", metavar="PATH",
                   help="also write a Chrome trace_event JSON with "
                        "causal flow arrows")
    p.add_argument("--diff", nargs=2, type=int, metavar=("ID_A", "ID_B"),
                   help="compare two traces' critical paths side-by-side "
                        "with per-segment attribution deltas")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "health",
        help="run a small federation under load and print its health "
             "report (non-zero exit when an SLO check fails)",
    )
    p.add_argument("--nodes", type=int, default=32)
    p.add_argument("--records", type=int, default=40)
    p.add_argument("--queries", type=int, default=30,
                   help="size of the query pool offered as load")
    p.add_argument("--rate", type=float, default=20.0,
                   help="offered load, queries per virtual second")
    p.add_argument("--duration", type=float, default=5.0,
                   help="arrival-window length in virtual seconds")
    p.add_argument("--loss", type=float, default=0.0,
                   help="injected message loss rate")
    p.add_argument("--interval", type=float, default=5.0,
                   help="summary update interval (t_s) in virtual seconds")
    p.add_argument("--service-time", type=float, default=0.002)
    p.add_argument("--queue-limit", type=int, default=64)
    p.add_argument("--probe-interval", type=float, default=0.5,
                   help="health-probe cadence in virtual seconds")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--export", metavar="PATH",
                   help="write the health report as JSON")
    p.set_defaults(fn=_cmd_health)

    p = sub.add_parser(
        "watch",
        parents=[common],
        help="run a federation under load with the time-series sampler, "
             "SLO probe and flight recorder armed; render the series",
    )
    p.add_argument("--nodes", type=int, default=32)
    p.add_argument("--records", type=int, default=40)
    p.add_argument("--queries", type=int, default=30,
                   help="size of the query pool offered as load")
    p.add_argument("--rate", type=float, default=20.0,
                   help="offered load, queries per virtual second")
    p.add_argument("--duration", type=float, default=5.0,
                   help="arrival-window length in virtual seconds")
    p.add_argument("--loss", type=float, default=0.0,
                   help="injected message loss rate")
    p.add_argument("--interval", type=float, default=5.0,
                   help="summary update interval (t_s) in virtual seconds")
    p.add_argument("--service-time", type=float, default=0.002)
    p.add_argument("--queue-limit", type=int, default=64)
    p.add_argument("--probe-interval", type=float, default=0.5,
                   help="SLO-judging probe cadence in virtual seconds")
    p.add_argument("--sample-interval", type=float, default=0.25,
                   help="time-series sampling cadence in virtual seconds")
    p.add_argument("--format", choices=("sparkline", "csv", "jsonl"),
                   default="sparkline",
                   help="how to render the sampled series")
    p.add_argument("--metrics", nargs="*", default=None,
                   help="federation-wide gauges to render (default: all)")
    p.add_argument("--export", metavar="PATH",
                   help="also write the series rows as JSONL")
    p.add_argument("--postmortem-dir", metavar="DIR", default=None,
                   help="dump SLO-breach postmortem bundles under DIR")
    p.set_defaults(fn=_cmd_watch)

    p = sub.add_parser(
        "quality",
        parents=[common],
        help="run a federation under load with the shadow-oracle quality "
             "plane armed; print precision/recall and per-summary "
             "divergence attributions",
    )
    p.add_argument("--nodes", type=int, default=32)
    p.add_argument("--records", type=int, default=40)
    p.add_argument("--queries", type=int, default=30,
                   help="size of the query pool offered as load")
    p.add_argument("--rate", type=float, default=20.0,
                   help="offered load, queries per virtual second")
    p.add_argument("--duration", type=float, default=5.0,
                   help="arrival-window length in virtual seconds")
    p.add_argument("--loss", type=float, default=0.0,
                   help="injected message loss rate")
    p.add_argument("--interval", type=float, default=5.0,
                   help="summary update interval (t_s) in virtual seconds")
    p.add_argument("--service-time", type=float, default=0.002)
    p.add_argument("--queue-limit", type=int, default=64)
    p.add_argument("--top", type=int, default=10,
                   help="rows in the per-node / attribution tables")
    p.add_argument("--min-precision", type=float, default=None,
                   help="judge oracle precision against this SLO floor "
                        "(non-zero exit below it)")
    p.set_defaults(fn=_cmd_quality)

    p = sub.add_parser(
        "postmortem",
        parents=[common],
        help="render postmortem bundles dumped by the flight recorder",
    )
    p.add_argument("path",
                   help="a postmortem_*.json bundle, or a directory of them")
    p.add_argument("--max-nodes", type=int, default=60,
                   help="cap on rendered causal-tree nodes per trace")
    p.set_defaults(fn=_cmd_postmortem)

    p = sub.add_parser("figure", help="regenerate a table/figure")
    p.add_argument("target", choices=sorted(_FIGURES))
    p.add_argument("--queries", type=int, default=60)
    p.add_argument("--runs", type=int, default=1)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--output", help="also write rows to this CSV path")
    p.set_defaults(fn=_cmd_figure)

    p = sub.add_parser(
        "suite", help="run the full evaluation and archive results"
    )
    p.add_argument("--out", default="results")
    p.add_argument("--scale", choices=("quick", "paper"), default="quick")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--targets", nargs="*", default=None,
        help="subset of targets (default: all)",
    )
    p.set_defaults(fn=_cmd_suite)

    p = sub.add_parser(
        "bench",
        help="benchmark observatory: BENCH_*.json artifacts and the "
             "regression gate",
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    b = bench_sub.add_parser(
        "run",
        parents=[common],
        help="run one or more scenarios and write BENCH_<scenario>.json",
    )
    from .bench import available_scenarios as _bench_scenarios

    b.add_argument("scenario", nargs="+", choices=_bench_scenarios())
    b.add_argument("--trajectory", metavar="PATH",
                   help="also append a summary row to this trajectory file")
    b.add_argument("--no-profile", action="store_true",
                   help="skip the wall-clock section profile")
    b.add_argument("--parallel", type=int, nargs="?", const=0, default=None,
                   metavar="N",
                   help="fan out over N worker processes (bare flag: one "
                        "per core); several scenarios pool one per worker, "
                        "a single scenario parallelises its internal sweep "
                        "(the stress shards)")
    b.set_defaults(fn=_cmd_bench_run)

    b = bench_sub.add_parser(
        "compare",
        help="diff an artifact against a baseline; non-zero exit on "
             "regression or shape violation",
    )
    b.add_argument("current", help="freshly produced BENCH_*.json")
    b.add_argument("--baseline", required=True,
                   help="committed baseline BENCH_*.json")
    b.add_argument("--tolerance", type=float, default=0.05,
                   help="symmetric band for simulated metrics (default 5%%)")
    b.add_argument("--wall-tolerance", type=float, default=0.30,
                   help="regression-only band for wall metrics (default 30%%)")
    b.add_argument("--skip-wall", action="store_true",
                   help="ignore wall-clock metrics entirely")
    b.add_argument("--verbose", action="store_true",
                   help="print every metric delta, not only failures")
    b.set_defaults(fn=_cmd_bench_compare)

    b = bench_sub.add_parser(
        "trajectory",
        help="append artifacts to the perf time series and print it",
    )
    b.add_argument("artifacts", nargs="*",
                   help="BENCH_*.json artifacts to append")
    b.add_argument("--file", default="BENCH_trajectory.json")
    b.set_defaults(fn=_cmd_bench_trajectory)

    b = bench_sub.add_parser("list", help="list registered scenarios")
    b.set_defaults(fn=_cmd_bench_list)

    p = sub.add_parser(
        "profile",
        parents=[common],
        help="hierarchical hot-path profile of a scenario's canonical "
             "run, with flame-graph exports",
    )
    p.add_argument(
        "scenario", nargs="?", choices=_bench_scenarios(),
        help="scenario to profile (omit with --diff)",
    )
    p.add_argument("--top", type=int, default=15,
                   help="rows in the self-time table (default 15)")
    p.add_argument("--tree", action="store_true",
                   help="also print the call-path tree")
    p.add_argument("--collapsed", metavar="PATH",
                   help="write Brendan Gregg collapsed stacks "
                        "(flamegraph.pl input)")
    p.add_argument("--speedscope", metavar="PATH",
                   help="write a speedscope.app JSON profile")
    p.add_argument("--diff", nargs=2, metavar=("A", "B"),
                   help="diff two --json profile documents instead of "
                        "running a scenario")
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser("demo", help="run the narrated quickstart")
    p.add_argument(
        "--telemetry", action="store_true",
        help="run the telemetry walkthrough instead (traced query + load tables)",
    )
    p.set_defaults(fn=_cmd_demo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
