"""Command-line interface.

``python -m repro <command>`` exposes the library without writing any
code:

* ``selftest`` — build a small federation, verify query exactness and
  the comparative orderings against SWORD and the central repository;
* ``figure <target>`` — regenerate one of the paper's tables/figures
  (``table1``, ``fig3`` … ``fig11``) and optionally save the rows;
* ``demo`` — a narrated quickstart run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments import (
    ExperimentSettings,
    SELECTIVITY_SWEEP,
    analytical_rows,
    fig3_latency_vs_nodes,
    fig4_update_overhead_vs_nodes,
    fig5_query_overhead_vs_nodes,
    fig6_latency_vs_dimensions,
    fig7_query_overhead_vs_dimensions,
    fig8_update_overhead_vs_records,
    fig9_latency_vs_overlap,
    fig10_latency_vs_degree,
    fig11_response_time_vs_selectivity,
    measured_rows,
    print_table,
)
from .experiments.export import save_rows_csv

_FIGURES = {
    "table1": lambda s: analytical_rows() + measured_rows(
        s.with_(num_nodes=min(s.num_nodes, 96), records_per_node=800)
    ),
    "fig3": lambda s: fig3_latency_vs_nodes(s, (64, 192, 320)),
    "fig4": lambda s: fig4_update_overhead_vs_nodes(s, (64, 192, 320)),
    "fig5": lambda s: fig5_query_overhead_vs_nodes(s, (64, 192, 320)),
    "fig6": lambda s: fig6_latency_vs_dimensions(s, (2, 4, 6, 8)),
    "fig7": lambda s: fig7_query_overhead_vs_dimensions(s, (2, 4, 6, 8)),
    "fig8": lambda s: fig8_update_overhead_vs_records(
        s.with_(num_nodes=min(s.num_nodes, 192)), (50, 200, 500)
    ),
    "fig9": lambda s: fig9_latency_vs_overlap(
        s.with_(num_nodes=min(s.num_nodes, 192)), (1, 6, 12)
    ),
    "fig10": lambda s: fig10_latency_vs_degree(s, (4, 8, 12)),
    "fig11": lambda s: fig11_response_time_vs_selectivity(
        s.with_(num_nodes=320, records_per_node=500, runs=1),
        SELECTIVITY_SWEEP,
        queries_per_group=20,
    ),
}


def _cmd_selftest(args) -> int:
    from .experiments import run_trial

    settings = ExperimentSettings(
        num_nodes=48,
        records_per_node=120,
        num_queries=30,
        runs=1,
        seed=args.seed,
    )
    print("building paired ROADS / SWORD / central systems (48 nodes)...")
    trial = run_trial(settings, args.seed, include_central=True)
    checks = [
        (
            "ROADS update bytes below SWORD",
            trial.roads.update_bytes_window < trial.sword.update_bytes_window,
        ),
        (
            "SWORD query bytes below ROADS",
            trial.sword.mean_query_bytes > 0
            and trial.sword.mean_query_bytes < trial.roads.mean_query_bytes,
        ),
        (
            "ROADS latency below SWORD",
            trial.roads.mean_latency_s < trial.sword.mean_latency_s,
        ),
        (
            "central latency below ROADS",
            trial.central.mean_latency_s < trial.roads.mean_latency_s,
        ),
    ]
    ok = True
    for label, passed in checks:
        print(f"  [{'ok' if passed else 'FAIL'}] {label}")
        ok &= passed
    print("selftest", "passed" if ok else "FAILED")
    return 0 if ok else 1


def _cmd_figure(args) -> int:
    settings = ExperimentSettings.paper().with_(
        num_queries=args.queries, runs=args.runs, seed=args.seed
    )
    rows = _FIGURES[args.target](settings)
    print_table(rows, title=f"{args.target} (quick scale)")
    if args.output:
        save_rows_csv(rows, args.output)
        print(f"rows written to {args.output}")
    return 0


def _cmd_suite(args) -> int:
    from .experiments.suite import run_suite

    run_suite(
        args.out, targets=args.targets, scale=args.scale, seed=args.seed
    )
    print(f"suite results written under {args.out}/")
    return 0


def _cmd_demo(args) -> int:
    import runpy
    from pathlib import Path

    script = Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    if script.exists():
        runpy.run_path(str(script), run_name="__main__")
        return 0
    print("examples/quickstart.py not found; run from a source checkout")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ROADS reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("selftest", help="verify comparative orderings")
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(fn=_cmd_selftest)

    p = sub.add_parser("figure", help="regenerate a table/figure")
    p.add_argument("target", choices=sorted(_FIGURES))
    p.add_argument("--queries", type=int, default=60)
    p.add_argument("--runs", type=int, default=1)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--output", help="also write rows to this CSV path")
    p.set_defaults(fn=_cmd_figure)

    p = sub.add_parser(
        "suite", help="run the full evaluation and archive results"
    )
    p.add_argument("--out", default="results")
    p.add_argument("--scale", choices=("quick", "paper"), default="quick")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--targets", nargs="*", default=None,
        help="subset of targets (default: all)",
    )
    p.set_defaults(fn=_cmd_suite)

    p = sub.add_parser("demo", help="run the narrated quickstart")
    p.set_defaults(fn=_cmd_demo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
