"""Analytical query-forwarding model.

The paper analyzes update and storage overheads (Section IV) but
evaluates query cost only by simulation. This module closes that gap
with a first-order model of ROADS query forwarding, so the simulator can
be sanity-checked against closed-form expectations.

Model: each *leaf* (owner) matches a query's dimension ``d``
independently with probability ``p_d``; a leaf matches the query with
``p = prod(p_d)``. An internal server's branch summary matches when any
of its descendants matches (ignoring cross-branch correlation), so a
subtree of ``s`` leaves matches with probability ``1 - (1-p)^s``.
Expected contacts = expected number of matching-summary servers reached
from a start node whose fan-out covers the disjoint partition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class QueryCostParams:
    """Inputs to the query-forwarding model.

    ``leaf_match_probability`` is the per-owner probability that all
    queried dimensions match (the product of per-dimension match
    probabilities — measure them with
    :func:`measured_dimension_probabilities`).
    """

    num_nodes: int
    degree: int
    leaf_match_probability: float

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.degree < 2:
            raise ValueError("degree must be >= 2")
        if not (0.0 <= self.leaf_match_probability <= 1.0):
            raise ValueError("leaf_match_probability must be in [0, 1]")


def levels(params: QueryCostParams) -> int:
    """Hierarchy levels for a full ``degree``-ary tree of the given size."""
    n, k = params.num_nodes, params.degree
    total, width, lv = 0, 1, 0
    while total < n:
        total += width
        width *= k
        lv += 1
    return lv


def subtree_sizes(params: QueryCostParams) -> List[int]:
    """Approximate servers per subtree at each depth (0 = whole tree)."""
    n, k = params.num_nodes, params.degree
    out = []
    size = n
    for _ in range(levels(params)):
        out.append(max(1, int(round(size))))
        size /= k
    return out


def branch_match_probability(p_leaf: float, subtree: int) -> float:
    """P(a subtree's aggregated summary matches): 1 - (1-p)^s."""
    if subtree <= 0:
        return 0.0
    return 1.0 - (1.0 - p_leaf) ** subtree


def expected_contacts(params: QueryCostParams) -> float:
    """Expected servers contacted by one ROADS query.

    Every server sits at some depth; it is contacted iff its branch
    summary matches and all its ancestors' branch summaries match — in
    the independent-leaf model, a server whose subtree matches has
    matching ancestors by construction (the ancestor subtree contains
    it), so E[contacts] = sum over servers of P(its subtree matches).
    Counted over the depth profile of a balanced degree-k tree.
    """
    p = params.leaf_match_probability
    n, k = params.num_nodes, params.degree
    total = 0.0
    width = 1
    remaining = n
    sizes = subtree_sizes(params)
    for depth in range(levels(params)):
        count = min(width, remaining)
        subtree = sizes[depth]
        total += count * branch_match_probability(p, subtree)
        remaining -= count
        width *= k
        if remaining <= 0:
            break
    return total


def expected_query_bytes(
    params: QueryCostParams,
    query_size_bytes: int,
    response_header_bytes: int = 16,
    per_target_bytes: int = 8,
) -> float:
    """Expected query-forwarding bytes: one query message plus one
    redirect response per contacted server."""
    contacts = expected_contacts(params)
    return contacts * (
        query_size_bytes + response_header_bytes + 2 * per_target_bytes
    )


def measured_dimension_probabilities(
    summaries: Sequence, queries: Sequence
) -> Dict[str, float]:
    """Per-attribute empirical P(one owner's summary matches a query dim).

    *summaries* are per-owner :class:`ResourceSummary` objects; the
    result averages over owners and queries.
    """
    from collections import defaultdict

    hits = defaultdict(int)
    trials = defaultdict(int)
    for query in queries:
        for pred in query.predicates:
            for s in summaries:
                trials[pred.attribute] += 1
                if s.attributes[pred.attribute].may_match(pred):
                    hits[pred.attribute] += 1
    return {
        a: hits[a] / trials[a] for a in trials
    }


def leaf_match_probability_from_dims(dim_probs: Sequence[float]) -> float:
    """Independent-dimension approximation: the product."""
    return float(math.prod(dim_probs))
