"""Closed-form overhead model (Section IV).

Implements equations (1)–(4) and the Table I storage comparison. The
model speaks the paper's units: attribute values have size 1, so a record
costs ``r`` units and a histogram summary ``m·r`` units; overheads are
units per second.

Notation (Section IV-A):

=========  ====================================================
``N``      resource owners
``K``      records per owner
``r``      numeric attributes per record
``m``      histogram buckets per attribute
``q``      query dimensions
``alpha``  per-dimension query range length
``n``      servers
``k``      children per server (node degree)
``L``      hierarchy depth (levels = L + 1)
``t_r``    record update period (seconds)
``t_s``    summary update period (seconds)
=========  ====================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class ModelParams:
    """Parameter set for the analytical model.

    Defaults are the paper's running example: r=25 attributes, m=100
    buckets, k=5 children, L=4 levels (156 servers), t_r/t_s = 0.1,
    N=1000 owners with K=10^4 records for the storage comparison.
    """

    N: int = 1000
    K: int = 10_000
    r: int = 25
    m: int = 100
    n: int = 156
    k: int = 5
    L: int = 4
    t_r: float = 6.0
    t_s: float = 60.0

    def __post_init__(self) -> None:
        for name in ("N", "K", "r", "m", "n", "k", "L"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.t_r <= 0 or self.t_s <= 0:
            raise ValueError("update periods must be positive")

    @property
    def log_n(self) -> float:
        return math.log2(self.n) if self.n > 1 else 1.0

    @property
    def record_size(self) -> int:
        """One record costs ``r`` units (unit-size attribute values)."""
        return self.r

    @property
    def summary_size(self) -> int:
        """One summary costs ``m·r`` units, independent of K and N."""
        return self.m * self.r


# -- update overhead, units per second (equations 1-3) ---------------------------

def roads_update_overhead(p: ModelParams) -> float:
    """Equation (1): ``r·m·(N + k·n·log n) / t_s``.

    Summary exports from N owners, n-1 bottom-up aggregation messages,
    and O(k·n·log n) top-down replication messages, each of size r·m,
    every t_s seconds.
    """
    return p.summary_size * (p.N + p.k * p.n * p.log_n) / p.t_s


def sword_update_overhead(p: ModelParams) -> float:
    """Equation (2): ``r²·K·N·log n / t_r``.

    Each of the K·N records is replicated in r rings over O(log n) hops,
    each copy of size r, every t_r seconds.
    """
    return (p.r ** 2) * p.K * p.N * p.log_n / p.t_r


def central_update_overhead(p: ModelParams) -> float:
    """Equation (3): ``r·K·N / t_r`` — direct record export."""
    return p.r * p.K * p.N / p.t_r


# -- summary maintenance overhead (equation 4) -----------------------------------

def roads_maintenance_per_node(p: ModelParams, level: int) -> float:
    """Per-node replication message count at hierarchy *level*: O(k²·i).

    A level-i node forwards its k children's summaries to each of them
    (k² messages' worth) for every level above it contributing replicated
    state.
    """
    if not (0 <= level <= p.L):
        raise ValueError(f"level must be in [0, {p.L}]")
    return (p.k ** 2) * level


def roads_maintenance_overhead(p: ModelParams) -> float:
    """Equation (4): worst-case per-node maintenance ``O(k²·log n)/t_s``."""
    return (p.k ** 2) * p.log_n / p.t_s


# -- storage overhead (Table I) --------------------------------------------------

def roads_storage(p: ModelParams, level: int = None) -> float:
    """Table I, ROADS: ``r·m·k·(i+1)`` units at a level-i node.

    A level-i node holds k child summaries plus k·i replicated summaries
    from its ancestors and their siblings. Worst case is a leaf
    (``i = L``), which is the table's exemplary value.
    """
    i = p.L if level is None else level
    return p.summary_size * p.k * (i + 1)


def sword_storage(p: ModelParams) -> float:
    """Table I, SWORD: ``r²·K·N / n`` units per server.

    All K·N records are stored once per ring (r rings); spread over the
    n servers that is r·K·N/n records of size r each.
    """
    return (p.r ** 2) * p.K * p.N / p.n


def central_storage(p: ModelParams) -> float:
    """Table I, central: ``r·K·N`` units at the repository."""
    return p.r * p.K * p.N


def table1(p: ModelParams = ModelParams()) -> Dict[str, float]:
    """The Table I row for parameter set *p*."""
    return {
        "ROADS": roads_storage(p),
        "SWORD": sword_storage(p),
        "Central": central_storage(p),
    }


def update_overheads(p: ModelParams = ModelParams()) -> Dict[str, float]:
    """Equations (1)-(3) for parameter set *p*, units per second."""
    return {
        "ROADS": roads_update_overhead(p),
        "SWORD": sword_update_overhead(p),
        "Central": central_update_overhead(p),
    }


#: the paper's printed Table I exemplary values. Note they do not follow
#: exactly from the printed formulas under the stated parameters (e.g.
#: r·K·N = 2.5e8, not 1e9); EXPERIMENTS.md reports both.
PAPER_TABLE1_VALUES = {
    "ROADS": 2e5,
    "SWORD": 6.4e8,
    "Central": 1e9,
}
