"""Analytical models: Section IV overheads plus a query-forwarding model."""

from .querymodel import (
    QueryCostParams,
    branch_match_probability,
    expected_contacts,
    expected_query_bytes,
    leaf_match_probability_from_dims,
    measured_dimension_probabilities,
)
from .model import (
    PAPER_TABLE1_VALUES,
    ModelParams,
    central_storage,
    central_update_overhead,
    roads_maintenance_overhead,
    roads_maintenance_per_node,
    roads_storage,
    roads_update_overhead,
    sword_storage,
    sword_update_overhead,
    table1,
    update_overheads,
)

__all__ = [
    "ModelParams",
    "roads_update_overhead",
    "sword_update_overhead",
    "central_update_overhead",
    "roads_maintenance_overhead",
    "roads_maintenance_per_node",
    "roads_storage",
    "sword_storage",
    "central_storage",
    "table1",
    "update_overheads",
    "PAPER_TABLE1_VALUES",
    "QueryCostParams",
    "expected_contacts",
    "expected_query_bytes",
    "branch_match_probability",
    "leaf_match_probability_from_dims",
    "measured_dimension_probabilities",
]
