"""Child-acceptance policies for hierarchy formation.

Section III-A: *"When deciding whether to accept a new child, a server
may consider many factors, such as management and operational
convenience, its current load, bandwidth utilization and network delay.
For example, it may prefer servers in the same administrative domain."*

A :class:`AcceptancePolicy` refines a server's willingness beyond the
built-in capacity and loop-avoidance checks. Policies are attached per
server (``server.accept_policy``); the balanced join walk consults them
transparently, backtracking past refusals.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from .node import Server


class AcceptancePolicy(abc.ABC):
    """Extra accept/refuse say for a prospective parent."""

    @abc.abstractmethod
    def accepts(self, server: Server, joiner_id: int) -> bool:
        """Whether *server* is willing to adopt *joiner_id* as a child.

        Called only after capacity and loop checks already passed.
        """


class AcceptAll(AcceptancePolicy):
    """The default: capacity and loop checks are the only constraints."""

    def accepts(self, server: Server, joiner_id: int) -> bool:
        return True


@dataclass
class DomainAffinityPolicy(AcceptancePolicy):
    """Prefer (or require) children from the same administrative domain.

    ``domains`` maps server id to a domain label. With ``strict=True``
    a server only accepts same-domain children; otherwise it accepts
    same-domain children always and foreign ones only while below
    ``foreign_quota`` foreign children.
    """

    domains: Dict[int, str] = field(default_factory=dict)
    strict: bool = False
    foreign_quota: int = 2

    def domain_of(self, server_id: int) -> str:
        return self.domains.get(server_id, "")

    def accepts(self, server: Server, joiner_id: int) -> bool:
        same = self.domain_of(server.server_id) == self.domain_of(joiner_id)
        if same:
            return True
        if self.strict:
            return False
        foreign = sum(
            1
            for c in server.children
            if self.domain_of(c.server_id) != self.domain_of(server.server_id)
        )
        return foreign < self.foreign_quota


@dataclass
class LoadCapPolicy(AcceptancePolicy):
    """Refuse children while the server's reported load exceeds a cap.

    ``load_of`` supplies the current load in [0, 1] for a server id —
    typically a closure over live measurements.
    """

    load_of: Callable[[int], float] = lambda _sid: 0.0
    max_load: float = 0.8

    def accepts(self, server: Server, joiner_id: int) -> bool:
        return self.load_of(server.server_id) <= self.max_load


@dataclass
class CompositePolicy(AcceptancePolicy):
    """All sub-policies must accept."""

    policies: tuple = ()

    def accepts(self, server: Server, joiner_id: int) -> bool:
        return all(p.accepts(server, joiner_id) for p in self.policies)
