"""Hierarchy formation: incremental balanced join.

A joining server starts at a known server (the root by default), and at
each step either attaches to the current server (if willing to accept) or
descends into the child branch with the least depth — least descendants
breaking ties — exactly the incremental join rule of Section III-A. If it
reaches a leaf that refuses, it backtracks to try other branches.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set

from .node import BranchStats, Server


class JoinError(RuntimeError):
    """No server in the hierarchy would accept the joining server."""


class Hierarchy:
    """The federated server hierarchy (a rooted tree of :class:`Server`)."""

    def __init__(self, root: Server):
        self.root = root
        self._servers: Dict[int, Server] = {root.server_id: root}

    # -- container protocol ---------------------------------------------------------
    def __contains__(self, server_id: int) -> bool:
        return server_id in self._servers

    def __len__(self) -> int:
        return len(self._servers)

    def __iter__(self) -> Iterator[Server]:
        return iter(self._servers.values())

    def get(self, server_id: int) -> Server:
        try:
            return self._servers[server_id]
        except KeyError:
            raise KeyError(f"no server with id {server_id}") from None

    def servers(self) -> List[Server]:
        return list(self._servers.values())

    def leaves(self) -> List[Server]:
        return [s for s in self._servers.values() if s.is_leaf]

    @property
    def levels(self) -> int:
        """Number of levels (the paper's ``L + 1``; a lone root is 1)."""
        return self.root.subtree_depth()

    # -- joining ----------------------------------------------------------------
    def join(self, server: Server, start: Optional[Server] = None) -> Server:
        """Attach *server* using the balanced join walk; returns its parent.

        The walk records the descent path so it can backtrack when a
        subtree is exhausted without finding a willing parent.
        """
        if server.server_id in self._servers:
            raise ValueError(f"server {server.server_id} already in hierarchy")
        current = start if start is not None else self.root
        parent = self._find_parent(current, server.server_id, visited=set())
        if parent is None:
            raise JoinError(
                f"no server willing to accept {server.server_id} "
                f"(hierarchy size {len(self)})"
            )
        parent.add_child(server)
        self._servers[server.server_id] = server
        return parent

    def _find_parent(
        self, current: Server, joiner_id: int, visited: Set[int]
    ) -> Optional[Server]:
        """Depth-first balanced descent with backtracking."""
        visited.add(current.server_id)
        if current.willing_to_accept(joiner_id):
            return current
        # Order children by (branch depth, branch descendants): least first.
        candidates = sorted(
            (c for c in current.children if c.server_id not in visited),
            key=lambda c: (
                current.branch_stats.get(c.server_id, BranchStats()).depth,
                current.branch_stats.get(c.server_id, BranchStats()).descendants,
            ),
        )
        for child in candidates:
            found = self._find_parent(child, joiner_id, visited)
            if found is not None:
                return found
        return None

    # -- removal (used by the maintenance protocol) -----------------------------------
    def remove(self, server_id: int) -> Server:
        """Remove a server record from the membership table.

        Tree-edge surgery (re-parenting orphans) is the maintenance
        protocol's job; this only forgets the server.
        """
        if server_id == self.root.server_id:
            raise ValueError("cannot remove the root via remove(); elect a new root first")
        server = self._servers.pop(server_id)
        return server

    def set_root(self, server: Server) -> None:
        if server.server_id not in self._servers:
            raise ValueError("new root must already be a member")
        self.root = server
        server.parent = None
        server.refresh_root_path()

    # -- validation (used heavily by tests) ---------------------------------------
    def check_invariants(self) -> None:
        """Raise ``AssertionError`` on any structural inconsistency."""
        seen: Set[int] = set()
        for s in self.root.iter_subtree():
            assert s.server_id not in seen, f"server {s.server_id} reachable twice"
            seen.add(s.server_id)
            expected_path = (
                [s.server_id]
                if s.parent is None
                else s.parent.root_path + [s.server_id]
            )
            assert s.root_path == expected_path, (
                f"server {s.server_id} root path {s.root_path} != {expected_path}"
            )
            for c in s.children:
                assert c.parent is s, f"child {c.server_id} has wrong parent"
                stats = s.branch_stats.get(c.server_id)
                assert stats is not None, (
                    f"server {s.server_id} missing stats for child {c.server_id}"
                )
                assert stats.depth == c.subtree_depth(), (
                    f"stale depth for branch {c.server_id}"
                )
                assert stats.descendants == c.subtree_size(), (
                    f"stale descendant count for branch {c.server_id}"
                )
            assert len(s.children) <= s.max_children, (
                f"server {s.server_id} over capacity"
            )
        assert seen == set(self._servers), (
            f"membership/tree mismatch: {seen ^ set(self._servers)}"
        )


def build_hierarchy(
    servers: Iterable[Server], *, root: Optional[Server] = None
) -> Hierarchy:
    """Build a hierarchy by joining *servers* one at a time (first = root
    unless *root* is given)."""
    it = iter(servers)
    if root is None:
        try:
            root = next(it)
        except StopIteration:
            raise ValueError("need at least one server") from None
    h = Hierarchy(root)
    for s in it:
        h.join(s)
    return h
