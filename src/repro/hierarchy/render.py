"""Plain-text rendering of a hierarchy.

Handy in examples, failure drills, and debugging sessions: draws the
tree with per-server annotations (depth, owners, child summary counts).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .join import Hierarchy
from .node import Server


def default_label(server: Server) -> str:
    parts = [f"server {server.server_id}"]
    if server.owners:
        names = ",".join(o.owner_id for o in server.owners[:3])
        more = "…" if len(server.owners) > 3 else ""
        parts.append(f"owners[{names}{more}]")
    if not server.alive:
        parts.append("DEAD")
    return " ".join(parts)


def render_tree(
    hierarchy: Hierarchy,
    label: Optional[Callable[[Server], str]] = None,
) -> str:
    """ASCII art of the hierarchy, root at the top.

    ::

        server 0 owners[owner-0]
        ├── server 1 owners[owner-1]
        │   ├── server 4 owners[owner-4]
        │   └── server 5 owners[owner-5]
        └── server 2 owners[owner-2]
    """
    fn = label if label is not None else default_label
    lines: List[str] = [fn(hierarchy.root)]

    def walk(server: Server, prefix: str) -> None:
        children = server.children
        for i, child in enumerate(children):
            last = i == len(children) - 1
            connector = "└── " if last else "├── "
            lines.append(prefix + connector + fn(child))
            walk(child, prefix + ("    " if last else "│   "))

    walk(hierarchy.root, "")
    return "\n".join(lines)


def tree_stats(hierarchy: Hierarchy) -> dict:
    """Shape summary: size, levels, branching, balance."""
    servers = hierarchy.servers()
    internal = [s for s in servers if s.children]
    leaves = [s for s in servers if not s.children]
    depths = [s.depth for s in leaves]
    return {
        "servers": len(servers),
        "levels": hierarchy.levels,
        "leaves": len(leaves),
        "mean_branching": (
            sum(len(s.children) for s in internal) / len(internal)
            if internal
            else 0.0
        ),
        "min_leaf_depth": min(depths) if depths else 0,
        "max_leaf_depth": max(depths) if depths else 0,
    }
