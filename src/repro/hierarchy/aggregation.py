"""Bottom-up summary aggregation.

Each aggregation round, every resource owner exports its (summary or raw)
data to its attachment point, and every non-root server sends its branch
summary — the merge of its local data and its children's latest branch
summaries — to its parent. After one full round the root holds the global
view. Summaries are soft state: reports carry the round's timestamp and
expire after their TTL.

Two execution modes are provided:

* :func:`aggregate_round` — one synchronous post-order round with exact
  byte accounting, used by the overhead experiments (running the DES for
  every one of the millions of update messages in a SWORD comparison
  would be pointlessly slow; the byte totals are identical).
* :class:`PeriodicAggregation` — event-driven periodic rounds inside the
  simulator, used by the maintenance/dynamics tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..sim.engine import PeriodicTask, Simulator
from ..sim.metrics import UPDATE, MetricsCollector
from ..summaries.config import SummaryConfig
from ..summaries.summary import ResourceSummary
from ..telemetry.core import Telemetry
from .join import Hierarchy
from .node import Server

#: bytes of branch metadata (depth, descendant count) piggybacked on each
#: aggregation message for the balanced join rule
BRANCH_STATS_BYTES = 8
#: fixed message header bytes
HEADER_BYTES = 16


@dataclass
class AggregationReport:
    """Outcome of one aggregation round."""

    export_bytes: int
    aggregation_bytes: int
    messages: int
    #: delta propagation: how many reports shipped the full summary vs a
    #: keep-alive header because the branch summary was unchanged
    full_reports: int = 0
    keepalive_reports: int = 0

    @property
    def total_bytes(self) -> int:
        return self.export_bytes + self.aggregation_bytes


def refresh_owner_exports(
    hierarchy: Hierarchy, config: SummaryConfig, now: float = 0.0
) -> int:
    """Re-export every attached owner's data; returns the bytes sent.

    Owners that control their server re-send records only conceptually
    (the server reads them locally — no wide-area traffic); third-party
    attached owners ship a fresh summary over the network.
    """
    total = 0
    for server in hierarchy:
        for owner in server.owners:
            if not owner.controls_server:
                owner.summary = ResourceSummary.from_store(
                    owner.origin, config, created_at=now
                )
                total += owner.summary.encoded_size() + HEADER_BYTES
    return total


def aggregate_round(
    hierarchy: Hierarchy,
    config: SummaryConfig,
    now: float = 0.0,
    metrics: Optional[MetricsCollector] = None,
    *,
    refresh_exports: bool = True,
    delta: bool = False,
    telemetry: Optional[Telemetry] = None,
) -> AggregationReport:
    """One synchronous bottom-up aggregation round.

    Children report before parents (post-order), so after the round each
    server's ``child_summaries`` reflect this round and the root's branch
    summary covers the whole federation.

    With ``delta=True``, a server whose branch summary is unchanged since
    its last report sends only a keep-alive header that refreshes the
    parent's soft state — the steady-state traffic saving behind the
    paper's t_s >> t_r argument (records changing within the same
    histogram bucket leave the summary untouched).
    """
    span = (
        telemetry.span("update.aggregate", delta=delta)
        if telemetry is not None
        else None
    )
    prof = telemetry.profiler if telemetry is not None else None
    if prof is not None:
        prof.enter("update.aggregate")
    export_bytes = refresh_owner_exports(hierarchy, config, now) if refresh_exports else 0
    if metrics is not None and export_bytes:
        metrics.record_message(UPDATE, export_bytes, phase="export")

    agg_bytes = 0
    messages = 0
    full_reports = 0
    keepalive_reports = 0

    def visit(server: Server) -> None:
        nonlocal agg_bytes, messages, full_reports, keepalive_reports
        for child in server.children:
            visit(child)
        if server.parent is not None:
            summary = server.branch_summary(config, now)
            size = HEADER_BYTES + BRANCH_STATS_BYTES
            if summary is not None:
                summary = summary.refreshed(now)
                fp = summary.fingerprint()
                unchanged = (
                    delta
                    and fp == server.last_reported_fingerprint
                    and server.server_id in server.parent.child_summaries
                )
                server.parent.child_summaries[server.server_id] = summary
                if unchanged:
                    keepalive_reports += 1
                else:
                    size += summary.encoded_size()
                    full_reports += 1
                server.last_reported_fingerprint = fp
            agg_bytes += size
            messages += 1
            if metrics is not None:
                # The parent receives (and merges) the child's report.
                metrics.record_message(
                    UPDATE, size,
                    server=server.parent.server_id, phase="aggregate",
                )

    visit(hierarchy.root)
    if prof is not None:
        prof.exit()
    if span is not None:
        span.annotate(
            bytes=export_bytes + agg_bytes,
            messages=messages,
            full_reports=full_reports,
            keepalive_reports=keepalive_reports,
        )
        span.close()
    return AggregationReport(
        export_bytes=export_bytes,
        aggregation_bytes=agg_bytes,
        messages=messages,
        full_reports=full_reports,
        keepalive_reports=keepalive_reports,
    )


@dataclass
class SummaryUpdate:
    """Wire payload of one update-plane message.

    ``summary is None`` marks a keep-alive: the receiver re-stamps its
    held soft state only when *fingerprint* matches the held content
    (:meth:`~repro.hierarchy.node.Server.refresh_summary`). ``table``
    selects the receiver-side soft-state table: ``"child"`` for
    bottom-up reports, ``"replica"`` / ``"replica_local"`` for overlay
    pushes, ``"owner"`` for a guest owner's summary export.

    One payload object is shared across every holder of the same source
    summary in an epoch — installation never mutates it in place.
    """

    table: str
    src: int
    summary: Optional[ResourceSummary] = None
    fingerprint: Optional[bytes] = None
    owner_id: Optional[str] = None

    def install(self, server: Server, now: float) -> str:
        """Apply this update at the receiving *server*; returns outcome.

        The outcome is ``"installed"``, ``"refreshed"`` or ``"ignored"``
        (keep-alive against absent or content-mismatched state — the
        receiver's copy is left to age out, Section III-B soft state).
        """
        if self.table == "owner":
            for owner in server.owners:
                if owner.owner_id == self.owner_id:
                    owner.summary = self.summary
                    return "installed"
            return "ignored"
        if self.summary is not None:
            ok = server.install_summary(self.table, self.src, self.summary)
            return "installed" if ok else "ignored"
        if self.fingerprint is None:
            return "ignored"  # bare stats report from an empty branch
        ok = server.refresh_summary(self.table, self.src, self.fingerprint, now)
        return "refreshed" if ok else "ignored"


def install_batch(server: Server, updates, now: float) -> list:
    """Apply a same-destination batch of updates; returns their outcomes.

    One call installs a whole ``(destination, tick)`` delivery group —
    each update addresses a distinct ``(table, src)`` slot, so outcomes
    are order-independent within the batch and identical to installing
    the messages one event at a time. The stacked-array work happens
    when the receiver next folds the installed tables into a branch
    summary via :meth:`ResourceSummary.merge_many`; this entry point
    exists so that fold sees every summary of the tick at once instead
    of re-running per message.
    """
    return [u.install(server, now) for u in updates]


class SummaryExporter:
    """Per-server actor: exports the branch summary to the parent.

    Replaces the receiver-peeking delta rule of :func:`aggregate_round`
    with sender-side state only: the exporter remembers the fingerprint
    it last shipped (shared with :func:`aggregate_round` through
    ``server.last_reported_fingerprint``), the parent it shipped to, and
    when it last sent a full summary. A full send is forced when the
    parent changed (rejoin — the new parent has no state for us) or when
    ``refresh_after`` elapsed since the last full (soft-state
    anti-entropy: bounds staleness when a full send was lost and the
    receiver is silently discarding our keep-alives).
    """

    __slots__ = ("server", "config", "delta", "refresh_after",
                 "_last_parent", "_last_full_at")

    def __init__(
        self,
        server: Server,
        config: SummaryConfig,
        *,
        delta: bool = False,
        refresh_after: Optional[float] = None,
    ):
        self.server = server
        self.config = config
        self.delta = delta
        self.refresh_after = (
            refresh_after if refresh_after is not None else config.ttl
        )
        self._last_parent: Optional[int] = None
        self._last_full_at = float("-inf")

    def forget_parent(self) -> None:
        """Force a full send on the next export (parent changed)."""
        self._last_parent = None

    def build_update(
        self, now: float, *, force_full: bool = False
    ) -> Optional[tuple]:
        """One epoch's report to the parent: ``(update, size_bytes)``.

        Returns None when there is no parent to report to (root) or the
        server is dead. Mutates the exporter's delta state — the report
        counts as sent whether or not it survives the network.
        """
        server = self.server
        parent = server.parent
        if parent is None or not server.alive:
            return None
        summary = server.branch_summary(self.config, now)
        size = HEADER_BYTES + BRANCH_STATS_BYTES
        if summary is None:
            return SummaryUpdate("child", server.server_id), size
        summary = summary.refreshed(now)
        fp = summary.fingerprint()
        keepalive = (
            self.delta
            and not force_full
            and parent.server_id == self._last_parent
            and fp == server.last_reported_fingerprint
            and (now - self._last_full_at) < self.refresh_after
        )
        server.last_reported_fingerprint = fp
        self._last_parent = parent.server_id
        if keepalive:
            return SummaryUpdate("child", server.server_id, None, fp), size
        self._last_full_at = now
        size += summary.encoded_size()
        return SummaryUpdate("child", server.server_id, summary, fp), size


def build_owner_export(
    owner, config: SummaryConfig, now: float
) -> tuple:
    """A guest owner's fresh summary export: ``(update, size_bytes)``."""
    summary = ResourceSummary.from_store(owner.origin, config, created_at=now)
    size = summary.encoded_size() + HEADER_BYTES
    update = SummaryUpdate(
        "owner", owner.node_id, summary, owner_id=owner.owner_id
    )
    return update, size


class PeriodicAggregation:
    """Event-driven aggregation: one round every ``interval`` (= t_s)."""

    def __init__(
        self,
        sim: Simulator,
        hierarchy: Hierarchy,
        config: SummaryConfig,
        interval: float,
        metrics: Optional[MetricsCollector] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.sim = sim
        self.hierarchy = hierarchy
        self.config = config
        self.interval = interval
        self.metrics = metrics
        self.telemetry = telemetry
        self.rounds = 0
        self.last_report: Optional[AggregationReport] = None
        self._task: Optional[PeriodicTask] = sim.schedule_periodic(
            interval, self._round, first_delay=0.0, label="update.round"
        )

    def _round(self) -> None:
        now = self.sim.now
        for server in self.hierarchy:
            server.expire_stale_summaries(now)
        self.last_report = aggregate_round(
            self.hierarchy, self.config, now, self.metrics,
            telemetry=self.telemetry,
        )
        self.rounds += 1

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None
