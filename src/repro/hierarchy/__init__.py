"""Federated server hierarchy: formation, aggregation, maintenance."""

from .aggregation import (
    AggregationReport,
    PeriodicAggregation,
    aggregate_round,
    refresh_owner_exports,
)
from .accept import (
    AcceptAll,
    AcceptancePolicy,
    CompositePolicy,
    DomainAffinityPolicy,
    LoadCapPolicy,
)
from .churn import ChurnConfig, ChurnProcess, ChurnStats
from .join import Hierarchy, JoinError, build_hierarchy
from .maintenance import MaintenanceConfig, MaintenanceProtocol
from .node import AttachedOwner, BranchStats, Server
from .render import default_label, render_tree, tree_stats

__all__ = [
    "Server",
    "AttachedOwner",
    "BranchStats",
    "Hierarchy",
    "JoinError",
    "build_hierarchy",
    "aggregate_round",
    "refresh_owner_exports",
    "AggregationReport",
    "PeriodicAggregation",
    "MaintenanceConfig",
    "MaintenanceProtocol",
    "ChurnConfig",
    "ChurnProcess",
    "ChurnStats",
    "AcceptancePolicy",
    "AcceptAll",
    "DomainAffinityPolicy",
    "LoadCapPolicy",
    "CompositePolicy",
    "render_tree",
    "tree_stats",
    "default_label",
]
