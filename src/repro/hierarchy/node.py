"""Hierarchy servers.

A :class:`Server` is one machine in the ROADS federated hierarchy. It
tracks its tree neighbourhood (parent, children, root path), per-child
branch statistics (depth / descendant counts, maintained from bottom-up
aggregation and used by the balanced join rule), summaries received from
children and attached resource owners, and summaries replicated via the
overlay.

Resource owners attach to a server of their choice (their *attachment
point*). An owner that controls the server exports its raw record store;
an owner attaching to a third-party server exports only a summary
(voluntary sharing, Section III-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from ..records.store import RecordStore
from ..summaries.config import SummaryConfig
from ..summaries.summary import ResourceSummary


@dataclass
class AttachedOwner:
    """A resource owner exporting data to its attachment point.

    Exactly one of ``store`` / ``summary`` reflects what the *server*
    holds: raw records when the owner controls the server, a summary
    otherwise. The owner always keeps its full store privately (``origin``)
    so it can answer queries under its own policy.

    ``node_id`` is the owner's own location in the delay space. For an
    owner that controls its attachment server the two coincide; a guest
    owner (the paper's Figure 1, owner D) lives at its own node, and a
    query that matches its summary costs the client one extra hop to
    reach the owner's records.
    """

    owner_id: str
    origin: RecordStore
    controls_server: bool
    summary: Optional[ResourceSummary] = None
    node_id: Optional[int] = None

    @property
    def exported_size_bytes(self) -> int:
        """Wire size of what this owner exports to its attachment point."""
        if self.controls_server:
            return self.origin.size_bytes
        assert self.summary is not None
        return self.summary.encoded_size()


@dataclass
class BranchStats:
    """Per-child branch statistics used by the balanced join rule."""

    depth: int = 1
    descendants: int = 1


class Server:
    """One server in the federated hierarchy."""

    def __init__(self, server_id: int, *, max_children: int = 8, provider: str = ""):
        if max_children < 1:
            raise ValueError("max_children must be >= 1")
        self.server_id = server_id
        self.provider = provider or f"provider-{server_id}"
        self.max_children = max_children
        self.parent: Optional["Server"] = None
        self.children: List["Server"] = []
        # ids of all servers from the root down to (and including) self
        self.root_path: List[int] = [server_id]
        self.branch_stats: Dict[int, BranchStats] = {}
        self.owners: List[AttachedOwner] = []
        # summaries most recently reported by each child (branch summaries)
        self.child_summaries: Dict[int, ResourceSummary] = {}
        # summaries replicated via the overlay, keyed by origin server id
        self.replicated_summaries: Dict[int, ResourceSummary] = {}
        # ancestors' local-owner summaries (overlay): used to decide
        # whether an ancestor itself (not its branch) is worth contacting
        self.replicated_local_summaries: Dict[int, ResourceSummary] = {}
        # fingerprint of the last branch summary reported to the parent
        # (delta propagation: unchanged summaries send only a keep-alive)
        self.last_reported_fingerprint: Optional[bytes] = None
        # optional extra child-acceptance say (domain affinity, load, ...)
        self.accept_policy = None
        self.alive = True

    # -- tree structure ------------------------------------------------------------
    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def depth(self) -> int:
        """Distance from the root (root = 0)."""
        return len(self.root_path) - 1

    def child_ids(self) -> List[int]:
        return [c.server_id for c in self.children]

    def willing_to_accept(self, joiner_id: int) -> bool:
        """Child-acceptance: capacity, loop avoidance, then local policy."""
        if not (
            self.alive
            and len(self.children) < self.max_children
            and joiner_id not in self.root_path
        ):
            return False
        if self.accept_policy is not None:
            return bool(self.accept_policy.accepts(self, joiner_id))
        return True

    def add_child(self, child: "Server") -> None:
        if child.server_id in (c.server_id for c in self.children):
            raise ValueError(f"server {child.server_id} is already a child")
        if child.server_id in self.root_path:
            raise ValueError(
                f"joining server {child.server_id} is on the root path of "
                f"server {self.server_id} (loop)"
            )
        child.parent = self
        self.children.append(child)
        child.refresh_root_path()
        self.branch_stats[child.server_id] = BranchStats(
            depth=child.subtree_depth(), descendants=child.subtree_size()
        )
        self._propagate_stats_up()

    def remove_child(self, child_id: int) -> Optional["Server"]:
        """Detach a child; its summary and stats are dropped (Section III-A)."""
        for i, c in enumerate(self.children):
            if c.server_id == child_id:
                self.children.pop(i)
                c.parent = None
                self.branch_stats.pop(child_id, None)
                self.child_summaries.pop(child_id, None)
                self._propagate_stats_up()
                return c
        return None

    def refresh_root_path(self) -> None:
        """Recompute root paths for this subtree after reattachment."""
        if self.parent is None:
            self.root_path = [self.server_id]
        else:
            self.root_path = self.parent.root_path + [self.server_id]
        for c in self.children:
            c.refresh_root_path()

    def _propagate_stats_up(self) -> None:
        node = self
        while node.parent is not None:
            node.parent.branch_stats[node.server_id] = BranchStats(
                depth=node.subtree_depth(), descendants=node.subtree_size()
            )
            node = node.parent

    def subtree_depth(self) -> int:
        """Height of the subtree rooted here (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(c.subtree_depth() for c in self.children)

    def subtree_size(self) -> int:
        """Number of servers in the subtree rooted here (including self)."""
        return 1 + sum(c.subtree_size() for c in self.children)

    def iter_subtree(self) -> Iterator["Server"]:
        yield self
        for c in self.children:
            yield from c.iter_subtree()

    def siblings(self) -> List["Server"]:
        if self.parent is None:
            return []
        return [c for c in self.parent.children if c.server_id != self.server_id]

    def ancestors(self) -> List["Server"]:
        """Proper ancestors, nearest first."""
        out = []
        node = self.parent
        while node is not None:
            out.append(node)
            node = node.parent
        return out

    # -- owners ----------------------------------------------------------------
    def attach_owner(self, owner: AttachedOwner) -> None:
        if any(o.owner_id == owner.owner_id for o in self.owners):
            raise ValueError(f"owner {owner.owner_id!r} already attached")
        self.owners.append(owner)

    def detach_owner(self, owner_id: str) -> Optional[AttachedOwner]:
        for i, o in enumerate(self.owners):
            if o.owner_id == owner_id:
                return self.owners.pop(i)
        return None

    # -- summaries ----------------------------------------------------------------
    def local_summary(
        self, config: SummaryConfig, now: float = 0.0
    ) -> Optional[ResourceSummary]:
        """Summary of everything exported by directly attached owners."""
        parts: List[ResourceSummary] = []
        for o in self.owners:
            if o.controls_server:
                parts.append(ResourceSummary.from_store(o.origin, config, created_at=now))
            elif o.summary is not None:
                parts.append(o.summary)
        if not parts:
            return None
        return ResourceSummary.merge_many(parts)

    def branch_summary(
        self, config: SummaryConfig, now: float = 0.0
    ) -> Optional[ResourceSummary]:
        """Local summary merged with the latest child branch summaries.

        Uses the *reported* child summaries (soft state), not a live
        recomputation — matching the bottom-up aggregation protocol.
        """
        parts: List[ResourceSummary] = []
        local = self.local_summary(config, now)
        if local is not None:
            parts.append(local)
        for cid in self.child_ids():
            s = self.child_summaries.get(cid)
            if s is not None and not s.is_expired(now):
                parts.append(s)
        if not parts:
            return None
        return ResourceSummary.merge_many(parts)

    def _summary_table(self, table: str) -> Dict[int, ResourceSummary]:
        if table == "child":
            return self.child_summaries
        if table == "replica":
            return self.replicated_summaries
        if table == "replica_local":
            return self.replicated_local_summaries
        raise KeyError(f"unknown summary table {table!r}")

    def install_summary(
        self, table: str, src_id: int, summary: ResourceSummary
    ) -> bool:
        """Delivery-time install of a full summary update.

        Child reports are only installed while *src_id* is an actual
        child (a report racing a failure-triggered detach must not
        resurrect the dropped branch state). Replica tables install
        unconditionally — the holder cannot validate overlay membership.
        Returns whether the summary was installed.
        """
        if table == "child" and src_id not in (
            c.server_id for c in self.children
        ):
            return False
        self._summary_table(table)[src_id] = summary
        return True

    def refresh_summary(
        self, table: str, src_id: int, fingerprint: bytes, now: float
    ) -> bool:
        """Delivery-time keep-alive: re-stamp matching soft state.

        The keep-alive carries only the sender's current content
        fingerprint. It refreshes the held summary's TTL **only when the
        content matches** — if a full update was lost, the held content
        is genuinely stale and must be allowed to age out rather than be
        kept alive under a fingerprint it no longer has. Returns whether
        the refresh was accepted.
        """
        held = self._summary_table(table).get(src_id)
        if held is None or held.fingerprint() != fingerprint:
            return False
        # refreshed() copies: full sends can share one payload object
        # across many holders, so re-stamping must not mutate in place.
        self._summary_table(table)[src_id] = held.refreshed(now)
        return True

    def summary_ages(self, now: float) -> List[float]:
        """Age in seconds of every piece of held soft state."""
        return [
            now - s.created_at
            for table in (
                self.child_summaries,
                self.replicated_summaries,
                self.replicated_local_summaries,
            )
            for s in table.values()
        ]

    def expire_stale_summaries(self, now: float) -> int:
        """Drop expired soft-state summaries; returns how many were dropped."""
        dropped = 0
        for table in (
            self.child_summaries,
            self.replicated_summaries,
            self.replicated_local_summaries,
        ):
            stale = [k for k, s in table.items() if s.is_expired(now)]
            for k in stale:
                del table[k]
                dropped += 1
        return dropped

    # -- storage accounting ----------------------------------------------------------
    def storage_bytes(self) -> int:
        """Bytes of summaries and exported data held by this server.

        This is the quantity Table I compares across designs.
        """
        total = 0
        for o in self.owners:
            total += o.exported_size_bytes
        for s in self.child_summaries.values():
            total += s.encoded_size()
        for s in self.replicated_summaries.values():
            total += s.encoded_size()
        for s in self.replicated_local_summaries.values():
            total += s.encoded_size()
        return total

    def __repr__(self) -> str:
        return (
            f"Server(id={self.server_id}, depth={self.depth}, "
            f"children={len(self.children)}, owners={len(self.owners)})"
        )
