"""Hierarchy maintenance: heartbeats, failure recovery, root election.

Follows Section III-A (adapted from universal multicast tree maintenance
[9]):

* every parent/child pair exchanges periodic heartbeats; several
  consecutive losses mean the other end is presumed failed;
* parents piggyback the root path on heartbeats to their children; the
  root additionally piggybacks its children list so root failure can be
  survived;
* a child whose parent failed rejoins starting at its grandparent (taken
  from its last known root path), escalating one level at a time up to the
  root;
* a parent whose child failed drops that child's summary and branch state;
* when the root fails, its children elect the one with the smallest id as
  the new root and the rest rejoin under it;
* loop avoidance: a server never attaches to a node whose root path
  contains itself.

Heartbeats flow through the simulated network (so failed nodes genuinely
go silent and maintenance traffic is byte-accounted); detection and
rejoin run in periodic check events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..net.transport import Message, Network
from ..sim.engine import Simulator
from ..sim.metrics import MAINTENANCE
from ..telemetry.core import Telemetry
from .join import Hierarchy, JoinError
from .node import Server

_HEARTBEAT_HEADER = 16
_ID_BYTES = 4


#: extra heartbeat bytes when a summary fingerprint is piggybacked
_FINGERPRINT_BYTES = 16


@dataclass(frozen=True)
class MaintenanceConfig:
    heartbeat_interval: float = 5.0
    miss_threshold: int = 3
    check_interval: float = 5.0
    #: piggyback the child's branch-summary fingerprint on parent-bound
    #: heartbeats, letting the parent refresh that summary's TTL between
    #: update epochs (heartbeats usually run faster than t_s). Off by
    #: default: it grows every upward heartbeat by 16 bytes, which would
    #: shift maintenance-overhead accounting for callers that never
    #: asked for it.
    piggyback_summaries: bool = False

    @property
    def failure_timeout(self) -> float:
        return self.heartbeat_interval * self.miss_threshold


@dataclass
class _Heartbeat:
    sender: int
    root_path: List[int]
    root_children: Optional[List[int]] = None  # only on root -> child beats
    #: child -> parent only: fingerprint of the sender's last-reported
    #: branch summary, refreshing the parent's held copy on match
    summary_fp: Optional[bytes] = None


class MaintenanceProtocol:
    """Runs heartbeat exchange and failure recovery for a hierarchy."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        hierarchy: Hierarchy,
        config: MaintenanceConfig = MaintenanceConfig(),
        *,
        telemetry: Optional[Telemetry] = None,
        update_plane=None,
    ):
        self.sim = sim
        self.network = network
        self.hierarchy = hierarchy
        self.config = config
        self.telemetry = telemetry
        #: optional :class:`~repro.roads.update_plane.UpdatePlane`:
        #: rejoins trigger an immediate full re-export, and (when
        #: ``piggyback_summaries`` is on) heartbeats refresh summary TTLs
        self.update_plane = update_plane
        # per-server: neighbour id -> last time we heard from it
        self._last_rx: Dict[int, Dict[int, float]] = {}
        # per-server: last known root path / root children (from heartbeats)
        self._known_root_path: Dict[int, List[int]] = {}
        self._known_root_children: Dict[int, List[int]] = {}
        self.failures_detected = 0
        self.rejoins = 0
        self.root_elections = 0
        self.orphaned: Set[int] = set()

        for server in hierarchy:
            self._register(server)
        self._beat_task = sim.schedule_periodic(
            config.heartbeat_interval, self._send_heartbeats,
            first_delay=0.0, label="maint.heartbeat",
        )
        self._check_task = sim.schedule_periodic(
            config.check_interval,
            self._check_failures,
            first_delay=config.failure_timeout,
            label="maint.check",
        )

    def _event(self, name: str, **tags) -> None:
        if self.telemetry is not None:
            self.telemetry.event(name, **tags)

    # -- wiring ----------------------------------------------------------------
    def _register(self, server: Server) -> None:
        self._last_rx.setdefault(server.server_id, {})
        self._known_root_path[server.server_id] = list(server.root_path)
        self.network.register(
            server.server_id, lambda msg, sid=server.server_id: self._on_message(sid, msg)
        )

    def stop(self) -> None:
        self._beat_task.stop()
        self._check_task.stop()

    # -- heartbeats ----------------------------------------------------------------
    def _heartbeat_size(self, hb: _Heartbeat) -> int:
        size = _HEARTBEAT_HEADER + len(hb.root_path) * _ID_BYTES
        if hb.root_children is not None:
            size += len(hb.root_children) * _ID_BYTES
        if hb.summary_fp is not None:
            size += _FINGERPRINT_BYTES
        return size

    def _send_heartbeats(self) -> None:
        piggyback = (
            self.config.piggyback_summaries and self.update_plane is not None
        )
        for server in list(self.hierarchy):
            if not server.alive:
                continue
            sid = server.server_id
            targets: List[Server] = []
            if server.parent is not None:
                targets.append(server.parent)
            targets.extend(server.children)
            for peer in targets:
                hb = _Heartbeat(
                    sender=sid,
                    root_path=list(server.root_path),
                    root_children=(
                        server.child_ids() if server.is_root and peer in server.children
                        else None
                    ),
                    summary_fp=(
                        self.update_plane.heartbeat_fingerprint(server)
                        if piggyback and peer is server.parent
                        else None
                    ),
                )
                self.network.send(
                    sid,
                    peer.server_id,
                    MAINTENANCE,
                    self._heartbeat_size(hb),
                    payload=hb,
                    phase="heartbeat",
                )

    def _on_message(self, server_id: int, msg: Message) -> None:
        hb = msg.payload
        if not isinstance(hb, _Heartbeat):
            return
        self._last_rx.setdefault(server_id, {})[hb.sender] = self.sim.now
        server = self._get(server_id)
        if server is None:
            return
        # Heartbeats from a child may carry its branch-summary
        # fingerprint: refresh the held summary's TTL on content match.
        if hb.summary_fp is not None and self.update_plane is not None:
            self.update_plane.on_heartbeat_fingerprint(
                server, hb.sender, hb.summary_fp
            )
        # Heartbeats from the parent carry the authoritative root path.
        if server.parent is not None and hb.sender == server.parent.server_id:
            self._known_root_path[server_id] = hb.root_path + [server_id]
            if hb.root_children is not None:
                self._known_root_children[server_id] = list(hb.root_children)

    def _get(self, server_id: int) -> Optional[Server]:
        try:
            return self.hierarchy.get(server_id)
        except KeyError:
            return None

    # -- failure detection ----------------------------------------------------------
    def _silent(self, observer: int, peer: int) -> bool:
        last = self._last_rx.get(observer, {}).get(peer)
        if last is None:
            # A fresh edge (new parent/child): grant a grace period from
            # now rather than declaring an unheard peer dead.
            self._last_rx.setdefault(observer, {})[peer] = self.sim.now
            return False
        return (self.sim.now - last) > self.config.failure_timeout

    def _check_failures(self) -> None:
        for server in list(self.hierarchy):
            if not server.alive:
                continue
            # children silence -> drop their state
            for child in list(server.children):
                if self._silent(server.server_id, child.server_id):
                    self.failures_detected += 1
                    self._event(
                        "maintenance.failure_detected",
                        server=server.server_id,
                        peer=child.server_id, relation="child",
                    )
                    server.remove_child(child.server_id)
            # parent silence -> rejoin elsewhere
            parent = server.parent
            if parent is not None and self._silent(server.server_id, parent.server_id):
                self.failures_detected += 1
                self._event(
                    "maintenance.failure_detected",
                    server=server.server_id,
                    peer=parent.server_id, relation="parent",
                )
                self._handle_parent_failure(server)
            elif (
                parent is None
                and server is not self.hierarchy.root
                and server.server_id in self.hierarchy._servers
            ):
                # Orphaned (e.g. detached during a root election run by a
                # sibling): self-heal by rejoining under the current root.
                if not self._try_rejoin(server, self.hierarchy.root):
                    self.orphaned.add(server.server_id)
        self.forget_failed()

    # -- recovery ----------------------------------------------------------------
    def _handle_parent_failure(self, server: Server) -> None:
        failed = server.parent
        assert failed is not None
        failed.remove_child(server.server_id)
        known_path = self._known_root_path.get(
            server.server_id, list(server.root_path)
        )
        # Candidates: grandparent, then one level up each retry, then root.
        # known_path = [root, ..., grandparent, parent, self]
        candidates = [sid for sid in reversed(known_path[:-2])]
        if failed.server_id == self.hierarchy.root.server_id:
            self._handle_root_failure(server, failed)
            return
        for cand_id in candidates:
            cand = self._get(cand_id)
            if cand is None or not cand.alive or self.network.is_failed(cand_id):
                continue
            if self._try_rejoin(server, cand):
                return
        # Last resort: the current root.
        root = self.hierarchy.root
        if root.alive and self._try_rejoin(server, root):
            return
        self.orphaned.add(server.server_id)

    def _try_rejoin(self, server: Server, start: Server) -> bool:
        """Run the balanced join walk from *start*; True on success."""
        parent = self.hierarchy._find_parent(start, server.server_id, visited=set())
        if parent is None or not parent.alive:
            return False
        # The walk costs one probe per visited level; approximate with the
        # target's depth in join-protocol bytes.
        probe_bytes = _HEARTBEAT_HEADER * (parent.depth + 1)
        self.network.metrics.record_message(
            MAINTENANCE, probe_bytes,
            server=parent.server_id, phase="rejoin",
        )
        parent.add_child(server)
        self._known_root_path[server.server_id] = list(server.root_path)
        # Grace-stamp the new edge in both directions.
        now = self.sim.now
        self._last_rx.setdefault(server.server_id, {})[parent.server_id] = now
        self._last_rx.setdefault(parent.server_id, {})[server.server_id] = now
        self.rejoins += 1
        self.orphaned.discard(server.server_id)
        if self.update_plane is not None:
            # The new parent holds no state for this branch: re-export
            # the full branch summary now instead of waiting out t_s.
            self.update_plane.on_rejoin(server)
        self._event(
            "maintenance.rejoin",
            server=server.server_id, parent=parent.server_id,
        )
        return True

    def _handle_root_failure(self, detector: Server, failed_root: Server) -> None:
        """Elect the smallest-id child of the failed root as the new root."""
        siblings = self._known_root_children.get(detector.server_id, [])
        alive_children = [
            self._get(sid)
            for sid in siblings
            if self._get(sid) is not None
            and self._get(sid).alive
            and not self.network.is_failed(sid)
        ]
        if detector not in alive_children:
            alive_children.append(detector)
        new_root = min(alive_children, key=lambda s: s.server_id)
        self.root_elections += 1
        self._event(
            "maintenance.root_election",
            server=new_root.server_id, failed_root=failed_root.server_id,
            detector=detector.server_id,
        )
        detached = []
        if failed_root.server_id in self.hierarchy._servers:
            # Forget the failed root; detach any remaining children first.
            for child in list(failed_root.children):
                failed_root.remove_child(child.server_id)
                detached.append(child)
            del self.hierarchy._servers[failed_root.server_id]
        if new_root.parent is not None:
            new_root.parent.remove_child(new_root.server_id)
        self.hierarchy.set_root(new_root)
        # The failed root's other children rejoin under the new root.
        for child in detached:
            if child is new_root or not child.alive:
                continue
            if not self._try_rejoin(child, new_root):
                self.orphaned.add(child.server_id)
        if detector is not new_root and detector.parent is None:
            if not self._try_rejoin(detector, new_root):
                self.orphaned.add(detector.server_id)

    # -- explicit departures ---------------------------------------------------------
    def leave(self, server: Server) -> None:
        """Graceful departure: children rejoin from their grandparent."""
        self._event("maintenance.leave", server=server.server_id)
        server.alive = False
        parent = server.parent
        if parent is not None:
            parent.remove_child(server.server_id)
        for child in list(server.children):
            server.remove_child(child.server_id)
            start = parent if parent is not None else self.hierarchy.root
            if not self._try_rejoin(child, start):
                if not self._try_rejoin(child, self.hierarchy.root):
                    self.orphaned.add(child.server_id)
        if server.server_id in self.hierarchy._servers and server is not self.hierarchy.root:
            del self.hierarchy._servers[server.server_id]
        self.network.unregister(server.server_id)

    def fail(self, server: Server) -> None:
        """Crash-fail a server: it goes silent; recovery is detection-driven."""
        self._event("maintenance.fail", server=server.server_id)
        server.alive = False
        self.network.fail_node(server.server_id)

    def forget_failed(self) -> None:
        """Drop fully detached dead servers from the membership table.

        A server that crashed (or was excised during recovery) ends up
        with no parent and no children once its neighbours have healed;
        keeping it in the membership table would make the tree and the
        table disagree.
        """
        for server in list(self.hierarchy):
            if server is self.hierarchy.root:
                continue
            detached = server.parent is None and not server.children
            presumed_dead = not server.alive or self.network.is_failed(
                server.server_id
            )
            if detached and presumed_dead:
                self.hierarchy._servers.pop(server.server_id, None)
