"""Availability churn: servers crash and recover over time.

The paper lists churn as the future-work stressor a discovery service
must survive. This module drives a live hierarchy with a continuous
fail/recover process: each alive server crashes after an exponential
time-to-failure, goes silent (the maintenance protocol detects it and
heals the tree), and later recovers and rejoins via the normal balanced
join walk.

The process never touches the root directly more often than any other
node — root crashes exercise the election path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from ..net.transport import Network
from ..sim.engine import Simulator
from .join import Hierarchy
from .maintenance import MaintenanceProtocol
from .node import Server


@dataclass(frozen=True)
class ChurnConfig:
    """Exponential fail/recover process parameters (seconds).

    With MTTF=600 and MTTR=120 each node is up ~83% of the time; a
    24-node federation then sees a crash roughly every 25 s.
    """

    mean_time_to_failure: float = 600.0
    mean_time_to_recovery: float = 120.0
    #: never crash below this many alive servers
    min_alive: int = 3

    def __post_init__(self) -> None:
        if self.mean_time_to_failure <= 0 or self.mean_time_to_recovery <= 0:
            raise ValueError("churn time constants must be positive")
        if self.min_alive < 1:
            raise ValueError("min_alive must be >= 1")


@dataclass
class ChurnStats:
    crashes: int = 0
    recoveries: int = 0
    skipped_crashes: int = 0  # blocked by the min_alive floor
    downtime_log: List[tuple] = field(default_factory=list)


class ChurnProcess:
    """Drives crash/recover events against a maintained hierarchy."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        hierarchy: Hierarchy,
        maintenance: MaintenanceProtocol,
        rng: np.random.Generator,
        config: ChurnConfig = ChurnConfig(),
    ):
        self.sim = sim
        self.network = network
        self.hierarchy = hierarchy
        self.maintenance = maintenance
        self.rng = rng
        self.config = config
        self.stats = ChurnStats()
        self._down: Dict[int, Server] = {}
        self._stopped = False
        for server in hierarchy:
            self._schedule_failure(server)

    # -- scheduling ----------------------------------------------------------------
    def _schedule_failure(self, server: Server) -> None:
        delay = float(self.rng.exponential(self.config.mean_time_to_failure))
        self.sim.schedule(delay, lambda s=server: self._crash(s), "churn.fail")

    def _schedule_recovery(self, server: Server) -> None:
        delay = float(self.rng.exponential(self.config.mean_time_to_recovery))
        self.sim.schedule(delay, lambda s=server: self._recover(s), "churn.recover")

    def stop(self) -> None:
        self._stopped = True

    # -- events ----------------------------------------------------------------
    def alive_count(self) -> int:
        return sum(1 for s in self.hierarchy if s.alive)

    def _crash(self, server: Server) -> None:
        if self._stopped or not server.alive:
            return
        if self.alive_count() <= self.config.min_alive:
            self.stats.skipped_crashes += 1
            self._schedule_failure(server)  # try again later
            return
        self.maintenance.fail(server)
        self._down[server.server_id] = server
        self.stats.crashes += 1
        self.stats.downtime_log.append((server.server_id, self.sim.now, None))
        self._schedule_recovery(server)

    def _recover(self, server: Server) -> None:
        if self._stopped:
            return
        sid = server.server_id
        if server is self.hierarchy.root:
            # The root came back before any election replaced it: resume
            # in place. Children that rejoined elsewhere during the
            # outage already detached themselves; whoever stayed is
            # still consistent.
            self._down.pop(sid, None)
            self.network.recover_node(sid)
            server.alive = True
            self.maintenance._register(server)
            self._finish_recovery(sid)
            return
        if not self.hierarchy.root.alive or self.network.is_failed(
            self.hierarchy.root.server_id
        ):
            # No live root to rejoin under yet (election pending): retry.
            self._schedule_recovery(server)
            return
        self._down.pop(sid, None)
        self.network.recover_node(sid)
        server.alive = True
        # The node comes back empty-handed: forget stale tree state and
        # rejoin through the normal balanced walk. If recovery beats the
        # failure detector, the old edges may still exist — sever them
        # cleanly so neighbours' state stays consistent (children become
        # orphans; the maintenance sweep reattaches them).
        if server.parent is not None:
            server.parent.remove_child(sid)
        for child in list(server.children):
            server.remove_child(child.server_id)
        server.parent = None
        server.children = []
        server.branch_stats.clear()
        server.child_summaries.clear()
        server.replicated_summaries.clear()
        server.replicated_local_summaries.clear()
        server.last_reported_fingerprint = None
        server.root_path = [sid]
        if sid in self.hierarchy._servers:
            del self.hierarchy._servers[sid]
        try:
            self.hierarchy._servers[sid] = server
            parent = self.hierarchy._find_parent(
                self.hierarchy.root, sid, visited=set()
            )
            if parent is None:
                del self.hierarchy._servers[sid]
                # No capacity anywhere (transient); retry later.
                self._schedule_recovery(server)
                server.alive = False
                self.network.fail_node(sid)
                return
            parent.add_child(server)
        except Exception:
            self.hierarchy._servers.pop(sid, None)
            raise
        self.maintenance._register(server)
        self._finish_recovery(sid)

    def _finish_recovery(self, sid: int) -> None:
        self.stats.recoveries += 1
        # Close the downtime log entry.
        for i in range(len(self.stats.downtime_log) - 1, -1, -1):
            nid, start, end = self.stats.downtime_log[i]
            if nid == sid and end is None:
                self.stats.downtime_log[i] = (nid, start, self.sim.now)
                break
        self._schedule_failure(self.hierarchy.get(sid))

    # -- reporting ----------------------------------------------------------------
    def availability(self, window_end: Optional[float] = None) -> float:
        """Fraction of node-time spent up, over the simulated window."""
        end = window_end if window_end is not None else self.sim.now
        if end <= 0:
            return 1.0
        n = len(self.hierarchy) + len(self._down)
        down = 0.0
        for nid, start, stop in self.stats.downtime_log:
            down += (stop if stop is not None else end) - start
        return 1.0 - down / (n * end)
