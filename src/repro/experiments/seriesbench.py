"""Series overhead: the metrics plane's cost and zero-perturbation proof.

The ``series_overhead`` scenario answers the two questions the
time-series tentpole raises:

1. **Perturbation** — does sampling change the simulation? The same
   seeded lossy workload runs twice: the *base* arm with telemetry only,
   the *observed* arm with telemetry **plus** the full observability
   stack armed (:class:`SeriesSampler`, an SLO-judging
   :class:`HealthProbe` and a bound :class:`FlightRecorder`). Sampling
   only reads state — no messages, no sim randomness, no span ids — so
   the summed query latencies must match byte-for-byte; the row carries
   the delta and the validator fails on any nonzero value (the same
   determinism tripwire ``trace_deep_dive`` holds for tracing).
2. **Overhead** — what does continuous sampling cost in wall-clock?
   The row reports the observed/base ratio under the ``wall_`` prefix so
   the bench registry polices it in the regression-only band.

The injected loss rate is chosen to breach the default loss SLO, so
every run also exercises the full breach path end-to-end: the probe's
ok→fail transition fires the recorder, and the row counts the captured
postmortem bundles and the causal trace trees frozen inside them.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional

from ..net.transport import ServiceConfig
from ..roads import RetryPolicy, RoadsConfig, RoadsSystem
from ..roads.search import SearchRequest
from ..summaries.config import SummaryConfig
from ..telemetry import (
    FlightRecorder,
    HealthProbe,
    HealthSLO,
    SeriesConfig,
    SeriesSampler,
    Telemetry,
)
from ..workload import WorkloadConfig, generate_node_stores
from ..workload.queries import generate_queries
from .config import ExperimentSettings

#: loss injected on every link — deliberately above the default
#: ``HealthSLO.max_loss_fraction`` so the loss check breaches and the
#: flight recorder's postmortem path runs in every benchmark run
LOSS_RATE = 0.18
#: per-server single-server queue: the queue-depth gauges move
SERVICE = ServiceConfig(service_time=0.004, queue_limit=16)
#: client patience under heavy loss
RETRY = RetryPolicy(timeout=1.0, retries=2, backoff_base=0.1)
#: sampling cadence for the observed arm
SERIES = SeriesConfig(interval=0.25)
#: probe cadence (SLO judged instantaneously every tick)
PROBE_INTERVAL = 0.5
#: paired wall-clock runs per arm; the fastest repeat is reported
REPEATS = 2
#: absolute ceiling on the observed/base wall-clock ratio
OVERHEAD_CEILING = 8.0


def _drive(
    settings: ExperimentSettings, *, observe: bool
) -> Dict[str, object]:
    """One arm: the lossy federation under a concurrent query batch.

    Both arms attach a :class:`Telemetry`; the observed arm additionally
    arms sampler + probe + recorder. Every seed is shared, so the
    sim-side outcomes must be identical across arms.
    """
    n = min(settings.num_nodes, 48)
    records = min(settings.records_per_node, 80)
    num_queries = min(settings.num_queries, 24)
    wcfg = WorkloadConfig(
        num_nodes=n, records_per_node=records, seed=settings.seed
    )
    stores = generate_node_stores(wcfg)
    config = RoadsConfig(
        num_nodes=n,
        records_per_node=records,
        max_children=settings.max_children,
        summary=SummaryConfig(
            histogram_buckets=min(settings.histogram_buckets, 200)
        ),
        summary_interval=settings.summary_interval,
        record_interval=settings.record_interval,
        delta_updates=True,
        loss_rate=LOSS_RATE,
        seed=settings.seed,
    )
    telemetry = Telemetry(capacity=400_000)
    wall_t0 = perf_counter()
    system = RoadsSystem.build(config, stores, telemetry=telemetry)
    system.enable_service(SERVICE)
    sampler: Optional[SeriesSampler] = None
    probe: Optional[HealthProbe] = None
    recorder: Optional[FlightRecorder] = None
    if observe:
        sampler = SeriesSampler(system, SERIES).start()
    system.update_plane.start()
    # Drain the startup summary burst so queries hit a converged plane.
    system.sim.run(until=system.sim.now + 2.0)
    if observe:
        # Arm SLO judging only on the converged plane: the cold-start
        # burst's cumulative loss would otherwise breach on the very
        # first tick, before the event rings hold any causal traffic.
        probe = HealthProbe(
            system, interval=PROBE_INTERVAL, slo=HealthSLO()
        ).start()
        recorder = FlightRecorder(telemetry, sampler=sampler).bind(probe)

    queries = generate_queries(
        wcfg,
        num_queries=num_queries,
        dimensions=settings.query_dimensions,
        range_length=settings.query_range_length,
        seed_label="seriesbench",
    )
    requests = [
        SearchRequest(q, client_node=int(i % n), retry=RETRY)
        for i, q in enumerate(queries)
    ]
    batch = system.search_many(
        requests,
        arrivals=[0.05 * i for i in range(len(requests))],
    )
    outcomes = [r.outcome for r in batch]
    # Let the cadences run past the last completion so the breach
    # window's tail is sampled too.
    system.sim.run(until=system.sim.now + 1.0)
    wall_seconds = perf_counter() - wall_t0
    if sampler is not None:
        sampler.stop()
    if probe is not None:
        probe.stop()
    if recorder is not None:
        recorder.close()
    return {
        "outcomes": outcomes,
        "wall_seconds": wall_seconds,
        "sampler": sampler,
        "probe": probe,
        "recorder": recorder,
        "network": system.network.counters(),
    }


def series_overhead_rows(
    settings: ExperimentSettings, *, repeats: int = REPEATS
) -> List[Dict[str, object]]:
    """One row pairing the observed arm against the telemetry-only arm."""
    base_wall = float("inf")
    observed_wall = float("inf")
    base = observed = None
    for _ in range(max(1, repeats)):
        run = _drive(settings, observe=False)
        if run["wall_seconds"] < base_wall:
            base_wall, base = run["wall_seconds"], run
        run = _drive(settings, observe=True)
        if run["wall_seconds"] < observed_wall:
            observed_wall, observed = run["wall_seconds"], run

    sampler = observed["sampler"]
    probe = observed["probe"]
    recorder = observed["recorder"]
    rings = sampler.all_series()
    base_latency = sum(o.latency for o in base["outcomes"])
    observed_latency = sum(o.latency for o in observed["outcomes"])
    bundles = list(recorder.bundles)
    first = bundles[0] if bundles else None
    return [{
        "queries": float(len(observed["outcomes"])),
        "samples": float(sampler.samples),
        "series_count": float(len(rings)),
        "points_appended": float(sum(r.appended for r in rings)),
        "rollups": float(sum(len(r.rollups) for r in rings)),
        "probe_samples": float(len(probe.samples)),
        "breaches": float(len(probe.breaches)),
        "postmortems": float(len(bundles)),
        "bundle_traces": float(len(first.traces) if first else 0),
        "bundle_series": float(len(first.series) if first else 0),
        "bundle_ring_events": float(first.ring_events if first else 0),
        "latency_total": float(observed_latency),
        # Must be exactly zero: sampling may never perturb the sim.
        "latency_delta": float(abs(observed_latency - base_latency)),
        "messages_sent": float(observed["network"]["sent"]),
        "messages_lost": float(observed["network"]["lost"]),
        "wall_base_seconds": float(base_wall),
        "wall_observed_seconds": float(observed_wall),
        "wall_overhead_ratio": float(observed_wall / max(base_wall, 1e-9)),
    }]


def validate_series_overhead(rows: List[Dict[str, object]]) -> List[str]:
    """Paper-shape checks for the ``series_overhead`` scenario."""
    failures: List[str] = []
    if not rows:
        return ["series_overhead produced no rows"]
    row = rows[0]
    if float(row["latency_delta"]) != 0.0:
        failures.append(
            "sampling perturbed simulated latencies "
            f"(delta={row['latency_delta']})"
        )
    if float(row["samples"]) <= 0 or float(row["points_appended"]) <= 0:
        failures.append("the series sampler recorded nothing")
    if float(row["rollups"]) <= 0:
        failures.append("no downsampled rollup buckets were produced")
    if float(row["messages_lost"]) <= 0:
        failures.append("loss injection inactive — no SLO pressure")
    if float(row["breaches"]) <= 0:
        failures.append("the loss SLO never breached under injected loss")
    if float(row["postmortems"]) <= 0:
        failures.append("no postmortem bundle was captured on breach")
    if float(row["bundle_traces"]) <= 0:
        failures.append(
            "the postmortem bundle froze no overlapping causal trace tree"
        )
    if float(row["bundle_series"]) <= 0:
        failures.append(
            "the postmortem bundle froze no breach-window time series"
        )
    ratio = float(row["wall_overhead_ratio"])
    if ratio > OVERHEAD_CEILING:
        failures.append(
            f"sampling overhead ratio {ratio:.2f}x exceeds the "
            f"{OVERHEAD_CEILING:.0f}x ceiling"
        )
    return failures
