"""Quality plane: the shadow oracle's accuracy frontier and its cost.

The ``quality_plane`` scenario reproduces the paper's central trade-off
— update traffic spent on summary freshness versus the query misroutes
stale summaries cause (the Figure 4/5 frontier) — with the shadow
oracle (:mod:`repro.telemetry.quality`) as the measuring instrument,
and simultaneously proves the instrument itself is free:

1. **Frontier** — each cell of the sweep runs the same seeded
   federation at one ``(update interval, loss rate)`` point. After the
   plane converges, a deterministic churn burst moves every record in
   one attribute band to the far end of the domain, then a fixed probe
   workload queries both the vacated band (stale summaries still
   advertise it → false positives) and the newly-populated band (stale
   summaries don't advertise it yet → false negatives). Longer update
   intervals leave summaries stale across more of the probe window, so
   false positives must grow with the interval while update bytes
   shrink — the monotone frontier the validator enforces.
2. **Zero perturbation** — every cell runs twice: an *audit* arm with
   the quality plane attached and a *base* arm without. The oracle
   only reads state (no messages, no sim events, no randomness), so
   summed query latencies must match byte-for-byte and the
   delivery-census fingerprints must be identical. The row carries
   both deltas and the validator fails on any mismatch.
3. **Overhead** — the audit arm's wall-clock ratio over the base arm
   rides the ``wall_`` row prefix into the regression-only band, and
   the ``quality.audit`` profile share is reported alongside.

Every false positive / false negative the oracle records must carry a
full divergence attribution (holder, table, staleness age, diverging
dimension); ``attribution_complete`` summarises that invariant per row.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Sequence, Tuple

from ..net.transport import ServiceConfig
from ..query.predicate import RangePredicate
from ..query.query import Query
from ..roads import RetryPolicy, RoadsConfig, RoadsSystem
from ..roads.search import SearchRequest
from ..summaries.config import SummaryConfig
from ..telemetry import Telemetry
from ..telemetry.profiling import CallPathProfiler, hotspot_shares
from ..workload import WorkloadConfig, generate_node_stores
from .config import ExperimentSettings

#: update intervals swept by the ``quality_plane`` scenario (paper t_s)
INTERVAL_SWEEP = (0.5, 1.0, 2.0)
#: loss rates paired with the interval sweep
QUALITY_LOSS_SWEEP = (0.0, 0.15)
#: the attribute band the churn burst vacates — queries on it become
#: false-positive probes against every summary still advertising it
VACATED_BAND = (0.70, 0.78)
#: where the churned records land — queries on it become
#: false-negative probes against every summary not yet advertising it
LANDING_BAND = (0.985, 1.0)
#: per-server single-server queue (identical across cells and arms)
SERVICE = ServiceConfig(service_time=0.002, queue_limit=64)
#: client patience for the probe workload
RETRY = RetryPolicy(timeout=2.0, retries=2, backoff_base=0.2)
#: probe queries per cell; arrivals spread them across the stale window
NUM_PROBES = 24
#: probe inter-arrival spacing (seconds)
PROBE_SPACING = 0.1
#: fixed post-churn horizon over which update bytes are metered — fixed
#: wall of simulated time, so epochs (and bytes) scale as 1/interval
METER_HORIZON = 6.0
#: update-plane convergence epochs before the churn burst
CONVERGE_EPOCHS = 3
#: paired wall-clock runs per arm; the fastest repeat is reported
REPEATS = 2
#: absolute ceiling on the audit/base wall-clock ratio
AUDIT_OVERHEAD_CEILING = 5.0


def _probe_queries() -> List[Query]:
    """The fixed probe workload: alternating vacated/landing band hits."""
    out: List[Query] = []
    for i in range(NUM_PROBES):
        band = VACATED_BAND if i % 2 == 0 else LANDING_BAND
        out.append(Query((RangePredicate("u0", band[0], band[1]),)))
    return out


def _churn(stores) -> int:
    """Move every record with ``u0`` in the vacated band to the landing
    band. Deterministic (no RNG): both arms and every repeat see the
    same burst, and the landing offsets only depend on the row index."""
    span = LANDING_BAND[1] - LANDING_BAND[0]
    moved = 0
    for store in stores:
        col = store.numeric_column("u0")
        for row in range(len(store)):
            v = float(col[row])
            if VACATED_BAND[0] <= v <= VACATED_BAND[1]:
                target = LANDING_BAND[0] + span * 0.5 * ((row % 8) / 8.0)
                store.update_numeric(row, "u0", target)
                moved += 1
    return moved


def _drive(
    settings: ExperimentSettings,
    *,
    interval: float,
    loss: float,
    audit: bool,
) -> Dict[str, object]:
    """One arm of one sweep cell.

    Identical seeds, workload, churn and probe schedule across arms —
    the only difference is whether the quality plane is attached, so
    any sim-side divergence is a perturbation bug.
    """
    n = min(settings.num_nodes, 48)
    records = min(settings.records_per_node, 60)
    wcfg = WorkloadConfig(
        num_nodes=n, records_per_node=records, seed=settings.seed
    )
    stores = generate_node_stores(wcfg)
    config = RoadsConfig(
        num_nodes=n,
        records_per_node=records,
        max_children=settings.max_children,
        summary=SummaryConfig(
            histogram_buckets=min(settings.histogram_buckets, 200)
        ),
        summary_interval=interval,
        record_interval=settings.record_interval,
        delta_updates=True,
        loss_rate=loss,
        seed=settings.seed,
    )
    telemetry = Telemetry(capacity=200_000)
    profiler = CallPathProfiler()
    telemetry.attach_profiler(profiler)
    wall_t0 = perf_counter()
    system = RoadsSystem.build(config, stores, telemetry=telemetry)
    system.enable_service(SERVICE)
    plane = system.attach_quality() if audit else None
    system.update_plane.start()
    # Converge the plane, then meter update traffic from the churn on.
    system.sim.run(until=system.sim.now + CONVERGE_EPOCHS * interval)
    c = system.update_plane.counters
    bytes_before = float(
        c.export_bytes + c.aggregation_bytes + c.replication_bytes
    )
    meter_start = system.sim.now
    moved = _churn(stores)
    requests = [
        SearchRequest(q, client_node=int(i % n), retry=RETRY)
        for i, q in enumerate(_probe_queries())
    ]
    batch = system.search_many(
        requests,
        arrivals=[PROBE_SPACING * i for i in range(len(requests))],
    )
    outcomes = [r.outcome for r in batch]
    system.sim.run(until=meter_start + METER_HORIZON)
    wall_seconds = perf_counter() - wall_t0
    update_bytes = float(
        c.export_bytes + c.aggregation_bytes + c.replication_bytes
    ) - bytes_before
    doc = profiler.document()
    return {
        "outcomes": outcomes,
        "moved": moved,
        "update_bytes": update_bytes,
        "wall_seconds": wall_seconds,
        "census_fingerprint": doc["census_fingerprint"],
        "audit_share": hotspot_shares(doc).get("quality.audit", 0.0),
        "plane": plane,
    }


def _cell_row(
    settings: ExperimentSettings, interval: float, loss: float
) -> Dict[str, object]:
    """One frontier row: paired audit/base arms, fastest-of-N walls."""
    base_wall = audit_wall = float("inf")
    base = audited = None
    for _ in range(max(1, REPEATS)):
        run = _drive(settings, interval=interval, loss=loss, audit=False)
        if run["wall_seconds"] < base_wall:
            base_wall, base = run["wall_seconds"], run
        run = _drive(settings, interval=interval, loss=loss, audit=True)
        if run["wall_seconds"] < audit_wall:
            audit_wall, audited = run["wall_seconds"], run

    plane = audited["plane"]
    reports = list(plane.reports)
    complete = [
        1.0 if (r.fp + r.fn) == len(r.attributions) else 0.0
        for r in reports
    ]
    attributed = sum(len(r.attributions) for r in reports)
    base_latency = sum(o.latency for o in base["outcomes"])
    audit_latency = sum(o.latency for o in audited["outcomes"])
    return {
        "update_interval": float(interval),
        "loss_rate": float(loss),
        "moved_records": float(audited["moved"]),
        "probes": float(len(audited["outcomes"])),
        "update_bytes": float(audited["update_bytes"]),
        "quality_audits": float(plane.audits),
        "quality_tp": float(plane.tp),
        "quality_fp": float(plane.fp),
        "quality_fn": float(plane.fn),
        "quality_tn": float(plane.tn),
        "quality_precision": float(plane.precision),
        "quality_recall": float(plane.recall),
        "quality_attributions": float(attributed),
        "attribution_complete": float(
            min(complete) if complete else 0.0
        ),
        # Must be exactly zero / exactly one: the oracle never perturbs.
        "latency_delta": float(abs(audit_latency - base_latency)),
        "census_match": float(
            audited["census_fingerprint"] == base["census_fingerprint"]
        ),
        "audit_profile_share": float(audited["audit_share"]),
        "wall_base_seconds": float(base_wall),
        "wall_audit_seconds": float(audit_wall),
        "wall_audit_ratio": float(audit_wall / max(base_wall, 1e-9)),
    }


def quality_plane_rows(
    settings: ExperimentSettings,
    intervals: Sequence[float] = INTERVAL_SWEEP,
    loss_rates: Sequence[float] = QUALITY_LOSS_SWEEP,
) -> List[Dict[str, object]]:
    """The frontier sweep: one row per (loss rate, update interval)."""
    rows: List[Dict[str, object]] = []
    for loss in loss_rates:
        for interval in intervals:
            rows.append(_cell_row(settings, interval, loss))
    return rows


def _frontier(
    rows: List[Dict[str, object]]
) -> Dict[float, List[Tuple[float, float, float]]]:
    """Per-loss ``(interval, update_bytes, fp)`` curves, interval-sorted."""
    curves: Dict[float, List[Tuple[float, float, float]]] = {}
    for r in rows:
        curves.setdefault(float(r["loss_rate"]), []).append((
            float(r["update_interval"]),
            float(r["update_bytes"]),
            float(r["quality_fp"]),
        ))
    for pts in curves.values():
        pts.sort()
    return curves


def validate_quality_plane(rows: List[Dict[str, object]]) -> List[str]:
    """Paper-shape checks for the ``quality_plane`` scenario."""
    failures: List[str] = []
    if not rows:
        return ["quality_plane produced no rows"]
    for r in rows:
        cell = (
            f"(interval={r['update_interval']}, loss={r['loss_rate']})"
        )
        if float(r["latency_delta"]) != 0.0:
            failures.append(
                f"the oracle perturbed simulated latencies at {cell} "
                f"(delta={r['latency_delta']})"
            )
        if float(r["census_match"]) != 1.0:
            failures.append(
                f"delivery-census fingerprints diverged across arms "
                f"at {cell}"
            )
        if float(r["quality_audits"]) <= 0:
            failures.append(f"no queries were audited at {cell}")
        if float(r["attribution_complete"]) != 1.0:
            failures.append(
                f"a misroute escaped divergence attribution at {cell}"
            )
        if float(r["moved_records"]) <= 0:
            failures.append(f"the churn burst moved nothing at {cell}")
    if not any(float(r["quality_fp"]) > 0 for r in rows):
        failures.append(
            "no cell produced false positives — the stale-summary "
            "probe found no divergence anywhere"
        )
    curves = _frontier(rows)
    for loss, pts in sorted(curves.items()):
        if len(pts) < 3:
            failures.append(
                f"loss={loss} swept only {len(pts)} update intervals "
                "(need >= 3 for the frontier)"
            )
            continue
        bytes_curve = [p[1] for p in pts]
        fp_curve = [p[2] for p in pts]
        if any(b2 > b1 for b1, b2 in zip(bytes_curve, bytes_curve[1:])):
            failures.append(
                f"update bytes not monotone non-increasing with the "
                f"interval at loss={loss}: {bytes_curve}"
            )
        # The loss-free curve is fully deterministic, so every step of
        # the frontier must hold point-wise. Under injected loss the
        # mid-interval staleness mix is stochastic (which refreshes die
        # depends on the draw), so lossy curves are held to the
        # endpoint claim only: the slowest plane misroutes strictly
        # more than the freshest one.
        if loss == 0.0 and any(
            f2 < f1 for f1, f2 in zip(fp_curve, fp_curve[1:])
        ):
            failures.append(
                f"false positives not monotone non-decreasing with the "
                f"interval at loss={loss}: {fp_curve}"
            )
        if fp_curve[-1] <= fp_curve[0]:
            failures.append(
                f"the frontier is flat at loss={loss}: fp {fp_curve}"
            )
    worst = max(float(r["wall_audit_ratio"]) for r in rows)
    if worst > AUDIT_OVERHEAD_CEILING:
        failures.append(
            f"audit overhead ratio {worst:.2f}x exceeds the "
            f"{AUDIT_OVERHEAD_CEILING:.0f}x ceiling"
        )
    return failures
