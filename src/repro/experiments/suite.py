"""Run the whole evaluation and archive the results.

``run_suite`` executes any subset of the table/figure drivers, writes
each result as CSV + JSON under an output directory, and emits a
SUMMARY.md with every table rendered — a one-command regeneration of the
paper's evaluation section.

Exposed on the CLI as ``python -m repro suite --out results/``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from .config import (
    DEGREE_SWEEP,
    DIMENSION_SWEEP,
    NODE_SWEEP,
    OVERLAP_SWEEP,
    RECORDS_SWEEP,
    SELECTIVITY_SWEEP,
    ExperimentSettings,
)
from .export import save_rows_csv, save_rows_json
from .figures import (
    fig3_latency_vs_nodes,
    fig4_update_overhead_vs_nodes,
    fig5_query_overhead_vs_nodes,
    fig6_latency_vs_dimensions,
    fig7_query_overhead_vs_dimensions,
    fig8_update_overhead_vs_records,
    fig9_latency_vs_overlap,
    fig10_latency_vs_degree,
    fig11_response_time_vs_selectivity,
)
from .report import format_table
from .table1 import analytical_rows, measured_rows

QUICK = {
    "nodes": (64, 192, 320),
    "dims": (2, 4, 6, 8),
    "records": (50, 200, 500),
    "overlap": (1, 6, 12),
    "degree": (4, 8, 12),
}
PAPER = {
    "nodes": NODE_SWEEP,
    "dims": DIMENSION_SWEEP,
    "records": RECORDS_SWEEP,
    "overlap": OVERLAP_SWEEP,
    "degree": DEGREE_SWEEP,
}


def _targets(settings: ExperimentSettings, sweeps: Dict, scale: str):
    small = settings.with_(num_nodes=min(settings.num_nodes, 192))
    return {
        "table1_analytical": lambda: analytical_rows(),
        "table1_measured": lambda: measured_rows(
            small.with_(num_nodes=min(small.num_nodes, 128),
                        records_per_node=1500)
        ),
        "fig3": lambda: fig3_latency_vs_nodes(settings, sweeps["nodes"]),
        "fig4": lambda: fig4_update_overhead_vs_nodes(
            settings, sweeps["nodes"]
        ),
        "fig5": lambda: fig5_query_overhead_vs_nodes(
            settings, sweeps["nodes"]
        ),
        "fig6": lambda: fig6_latency_vs_dimensions(settings, sweeps["dims"]),
        "fig7": lambda: fig7_query_overhead_vs_dimensions(
            settings, sweeps["dims"]
        ),
        "fig8": lambda: fig8_update_overhead_vs_records(
            small, sweeps["records"]
        ),
        "fig9": lambda: fig9_latency_vs_overlap(small, sweeps["overlap"]),
        "fig10": lambda: fig10_latency_vs_degree(settings, sweeps["degree"]),
        "fig11": lambda: fig11_response_time_vs_selectivity(
            settings.with_(num_nodes=320, records_per_node=500, runs=1),
            SELECTIVITY_SWEEP,
            queries_per_group=200 if scale == "paper" else 20,
        ),
    }


def available_targets() -> List[str]:
    return list(_targets(ExperimentSettings.paper(), QUICK, "quick"))


def run_suite(
    out_dir,
    *,
    targets: Optional[Sequence[str]] = None,
    scale: str = "quick",
    seed: int = 1,
    progress: Optional[Callable[[str], None]] = print,
) -> Dict[str, List[Dict]]:
    """Run the selected experiment *targets* and archive everything.

    Returns the rows per target. Writes ``<target>.csv``,
    ``<target>.json`` and a combined ``SUMMARY.md`` under *out_dir*.
    """
    if scale not in ("quick", "paper"):
        raise ValueError(f"scale must be quick|paper, got {scale!r}")
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    if scale == "paper":
        settings = ExperimentSettings.paper().with_(seed=seed)
        sweeps = PAPER
    else:
        settings = ExperimentSettings.paper().with_(
            num_queries=60, runs=1, seed=seed
        )
        sweeps = QUICK

    registry = _targets(settings, sweeps, scale)
    chosen = list(registry) if targets is None else list(targets)
    unknown = [t for t in chosen if t not in registry]
    if unknown:
        raise ValueError(f"unknown targets {unknown}; available: {list(registry)}")

    results: Dict[str, List[Dict]] = {}
    summary_parts = [
        f"# Evaluation suite (scale={scale}, seed={seed})\n",
    ]
    for name in chosen:
        t0 = time.time()
        if progress:
            progress(f"[suite] running {name} ...")
        rows = registry[name]()
        elapsed = time.time() - t0
        results[name] = rows
        save_rows_csv(rows, out / f"{name}.csv")
        save_rows_json(
            rows,
            out / f"{name}.json",
            meta={"target": name, "scale": scale, "seed": seed,
                  "elapsed_seconds": round(elapsed, 2)},
        )
        summary_parts.append(
            "## " + name + f" ({elapsed:.1f}s)\n\n```\n"
            + format_table(rows) + "\n```\n"
        )
        if progress:
            progress(f"[suite] {name} done in {elapsed:.1f}s")
    (out / "SUMMARY.md").write_text("\n".join(summary_parts))
    return results
