"""Persisting experiment rows.

Figure drivers return lists of row dicts; this module round-trips them
through CSV and JSON so sweeps can be archived, diffed across runs, and
re-plotted without re-simulating.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

PathLike = Union[str, Path]


def save_rows_csv(rows: Sequence[Dict], path: PathLike) -> Path:
    """Write rows to CSV (columns = union of keys, first-seen order)."""
    path = Path(path)
    if not rows:
        path.write_text("")
        return path
    columns: List[str] = []
    for r in rows:
        for k in r:
            if k not in columns:
                columns.append(k)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns)
        writer.writeheader()
        for r in rows:
            writer.writerow(r)
    return path


def load_rows_csv(path: PathLike) -> List[Dict]:
    """Read rows back; numeric-looking fields are converted."""
    path = Path(path)
    out: List[Dict] = []
    text = path.read_text()
    if not text.strip():
        return out
    with path.open() as fh:
        for raw in csv.DictReader(fh):
            out.append({k: _coerce(v) for k, v in raw.items()})
    return out


def _coerce(value: str):
    if value is None or value == "":
        return value
    try:
        i = int(value)
        return i
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


def save_rows_json(rows: Sequence[Dict], path: PathLike, *, meta: Dict = None) -> Path:
    """Write rows (plus optional metadata) as a JSON document."""
    path = Path(path)
    doc = {"meta": meta or {}, "rows": list(rows)}
    path.write_text(json.dumps(doc, indent=2, sort_keys=True))
    return path


def load_rows_json(path: PathLike) -> Dict:
    return json.loads(Path(path).read_text())
