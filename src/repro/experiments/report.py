"""Plain-text reporting of experiment rows."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_value(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:,.1f}"
    return str(value)


def format_table(
    rows: Sequence[Dict],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Align rows of dicts into a monospace table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    cells = [[format_value(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.rjust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    rows: Sequence[Dict],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> None:
    print(format_table(rows, columns, title))
