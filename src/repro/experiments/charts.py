"""ASCII charts for experiment rows.

The evaluation environment is terminal-only, so the figure drivers can
render their series as text charts — enough to eyeball the shapes the
paper plots (log vs linear growth, crossovers, dips).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

_MARKS = "*o+x#@"


def ascii_chart(
    rows: Sequence[Dict],
    x: str,
    ys: Sequence[str],
    *,
    width: int = 60,
    height: int = 16,
    title: Optional[str] = None,
    log_y: bool = False,
) -> str:
    """Scatter/line chart of columns *ys* against column *x*.

    Each series gets its own mark; points are plotted on a
    ``width``×``height`` grid with min/max axis annotations.
    """
    if not rows:
        return "(no rows)"
    xs = [float(r[x]) for r in rows]
    series = {}
    for y in ys:
        vals = [float(r[y]) for r in rows]
        if log_y:
            if any(v <= 0 for v in vals):
                raise ValueError(f"log_y requires positive values in {y!r}")
            vals = [math.log10(v) for v in vals]
        series[y] = vals

    x_lo, x_hi = min(xs), max(xs)
    all_y = [v for vals in series.values() for v in vals]
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, vals) in enumerate(series.items()):
        mark = _MARKS[si % len(_MARKS)]
        for xv, yv in zip(xs, vals):
            col = int((xv - x_lo) / x_span * (width - 1))
            row = int((yv - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = mark

    def fmt(v: float) -> str:
        if log_y:
            return f"1e{v:.1f}"
        return f"{v:.3g}"

    lines: List[str] = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    lines.append(f"{fmt(y_hi):>10} ┤" + "".join(grid[0]))
    for r in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(r))
    lines.append(f"{fmt(y_lo):>10} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width)
    lines.append(
        " " * 12 + f"{fmt(x_lo):<{width // 2}}{fmt(x_hi):>{width // 2}}"
    )
    lines.append(" " * 12 + f"{x:^{width}}")
    return "\n".join(lines)


def print_chart(rows, x, ys, **kwargs) -> None:
    print(ascii_chart(rows, x, ys, **kwargs))
