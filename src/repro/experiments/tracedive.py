"""Trace deep-dive: causal-tracing fidelity and overhead, benchmarked.

The ``trace_deep_dive`` scenario answers two questions the tracing
tentpole raises:

1. **Fidelity** — does every completed search reconstruct as one causal
   tree whose critical-path sum telescopes exactly to the reported
   latency, even under message loss, retries and service-queue waits?
   The driver runs a concurrent query batch plus widening searches on a
   lossy federation with bounded service queues, assembles the trace
   trees and verifies ``critical_path(tree).total == outcome.latency``
   for every search that produced a causal leaf.
2. **Overhead** — what does tracing cost? The same seeded workload runs
   twice, telemetry absent vs tracing enabled, and the row reports the
   wall-clock ratio. Simulated outcomes must be bit-identical between
   the arms (ids come from telemetry counters, never the sim RNG), so
   the row also carries the latency delta — any nonzero value means
   tracing perturbed the simulation and fails the shape check.

Wall-clock columns are ``wall_``-prefixed so the bench registry maps
them into the ``wall.*`` metric namespace (regression-only tolerance
band); everything else is deterministic and sits in the tight
symmetric band.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional

from ..net.transport import ServiceConfig
from ..roads import RetryPolicy, RoadsConfig, RoadsSystem
from ..roads.search import SearchRequest
from ..summaries.config import SummaryConfig
from ..telemetry import Telemetry, assemble_traces, critical_path
from ..workload import WorkloadConfig, generate_node_stores
from ..workload.queries import generate_queries
from .config import ExperimentSettings

#: loss injected on every link — enough to force retries and lost
#: responses into the traces without stalling the workload
LOSS_RATE = 0.08
#: per-server single-server queue: queries see real wait/serve spans
SERVICE = ServiceConfig(service_time=0.004, queue_limit=16)
#: client patience: timeouts short enough that lost messages retry
#: within the run, with exponential backoff
RETRY = RetryPolicy(timeout=1.0, retries=2, backoff_base=0.1)
#: widening searches demand this many matches before settling
WIDENING_MIN_MATCHES = 3
#: paired wall-clock runs per arm; the fastest repeat is reported
REPEATS = 2
#: absolute ceiling on the traced/absent wall-clock ratio — tracing
#: must never multiply runtime by this much (the committed baseline
#: plus the ``wall.*`` regression band police the finer drift)
OVERHEAD_CEILING = 8.0
#: tolerance when matching a critical-path sum to the reported latency
PATH_EPSILON = 1e-9


def _drive(
    settings: ExperimentSettings, telemetry: Optional[Telemetry]
) -> Dict[str, object]:
    """One arm: build the lossy federation, drive the query mix.

    Returns the completed outcomes plus the arm's wall-clock seconds.
    Both arms share every seed, so the sim-side results are identical
    whether *telemetry* is attached or not.
    """
    n = min(settings.num_nodes, 48)
    records = min(settings.records_per_node, 80)
    num_queries = min(settings.num_queries, 24)
    wcfg = WorkloadConfig(
        num_nodes=n, records_per_node=records, seed=settings.seed
    )
    stores = generate_node_stores(wcfg)
    config = RoadsConfig(
        num_nodes=n,
        records_per_node=records,
        max_children=settings.max_children,
        summary=SummaryConfig(
            histogram_buckets=min(settings.histogram_buckets, 200)
        ),
        summary_interval=settings.summary_interval,
        record_interval=settings.record_interval,
        delta_updates=True,
        loss_rate=LOSS_RATE,
        seed=settings.seed,
    )
    wall_t0 = perf_counter()
    system = RoadsSystem.build(config, stores, telemetry=telemetry)
    system.enable_service(SERVICE)
    system.update_plane.start()
    # Drain the startup summary burst so queries hit a converged plane.
    system.sim.run(until=system.sim.now + 2.0)

    queries = generate_queries(
        wcfg,
        num_queries=num_queries,
        dimensions=settings.query_dimensions,
        range_length=settings.query_range_length,
        seed_label="tracedive",
    )
    requests = [
        SearchRequest(q, client_node=int(i % n), retry=RETRY)
        for i, q in enumerate(queries)
    ]
    # Concurrent batch: staggered arrivals multiplex every query over
    # the shared dispatcher while the update plane free-runs.
    batch = system.search_many(
        requests[: num_queries - 4],
        arrivals=[0.05 * i for i in range(len(requests[: num_queries - 4]))],
    )
    outcomes = [r.outcome for r in batch]
    # Widening searches: each one is a multi-scope causal tree under a
    # single umbrella context.
    widened = 0
    for req in requests[num_queries - 4:]:
        results = system.widening(req, min_matches=WIDENING_MIN_MATCHES)
        outcomes.extend(r.outcome for r in results)
        widened += len(results)
    wall_seconds = perf_counter() - wall_t0
    return {
        "outcomes": outcomes,
        "widened_scopes": widened,
        "wall_seconds": wall_seconds,
        "telemetry": telemetry,
        "network": system.network.counters(),
    }


def trace_deep_dive_rows(
    settings: ExperimentSettings, *, repeats: int = REPEATS
) -> List[Dict[str, object]]:
    """One row pairing the traced arm against the telemetry-absent arm."""
    base_wall = float("inf")
    traced_wall = float("inf")
    base = traced = None
    for _ in range(max(1, repeats)):
        run = _drive(settings, None)
        if run["wall_seconds"] < base_wall:
            base_wall, base = run["wall_seconds"], run
        run = _drive(settings, Telemetry(capacity=400_000))
        if run["wall_seconds"] < traced_wall:
            traced_wall, traced = run["wall_seconds"], run

    tel = traced["telemetry"]
    trees = assemble_traces(tel.events())
    verified = mismatches = unverifiable = 0
    category_seconds = {"wire": 0.0, "queue": 0.0, "service": 0.0,
                        "processing": 0.0}
    for outcome in traced["outcomes"]:
        tree = trees.get(outcome.trace_id)
        root = (
            tree.nodes.get(outcome.root_span_id) if tree is not None else None
        )
        if root is None:
            unverifiable += 1
            continue
        path = critical_path(tree, root=root)
        if path.leaf is None:
            # Every attempt lost: no causal leaf, nothing to attribute.
            unverifiable += 1
            continue
        if abs(path.total - outcome.latency) <= PATH_EPSILON:
            verified += 1
            for cat, secs in path.by_category().items():
                category_seconds[cat] = (
                    category_seconds.get(cat, 0.0) + secs
                )
        else:
            mismatches += 1

    base_latency = sum(o.latency for o in base["outcomes"])
    traced_latency = sum(o.latency for o in traced["outcomes"])
    attributed = sum(category_seconds.values())
    share = (lambda c: category_seconds[c] / attributed
             if attributed > 0 else 0.0)
    return [{
        "queries": float(len(traced["outcomes"])),
        "widened_scopes": float(traced["widened_scopes"]),
        "traces": float(len(trees)),
        "spans": float(sum(len(t) for t in trees.values())),
        "verified_paths": float(verified),
        "path_mismatches": float(mismatches),
        "unverifiable": float(unverifiable),
        "latency_total": float(traced_latency),
        # Must be exactly zero: tracing may never perturb the sim.
        "latency_delta": float(abs(traced_latency - base_latency)),
        "messages_sent": float(traced["network"]["sent"]),
        "messages_lost": float(traced["network"]["lost"]),
        "messages_shed": float(traced["network"]["shed"]),
        "wire_share": share("wire"),
        "queue_share": share("queue"),
        "service_share": share("service"),
        "processing_share": share("processing"),
        "events_emitted": float(tel.bus.emitted),
        "wall_base_seconds": float(base_wall),
        "wall_traced_seconds": float(traced_wall),
        "wall_overhead_ratio": float(traced_wall / max(base_wall, 1e-9)),
    }]


def validate_trace_dive(rows: List[Dict[str, object]]) -> List[str]:
    """Paper-shape checks for the ``trace_deep_dive`` scenario."""
    failures: List[str] = []
    if not rows:
        return ["trace_deep_dive produced no rows"]
    row = rows[0]
    if float(row["latency_delta"]) != 0.0:
        failures.append(
            "tracing perturbed simulated latencies "
            f"(delta={row['latency_delta']})"
        )
    if float(row["path_mismatches"]) > 0:
        failures.append(
            f"{row['path_mismatches']:.0f} critical-path sums did not "
            "telescope to the reported latency"
        )
    if float(row["verified_paths"]) <= 0:
        failures.append("no search verified critical path == latency")
    if float(row["traces"]) <= 0 or float(row["spans"]) <= 0:
        failures.append("traced arm assembled no causal trees")
    if float(row["messages_lost"]) <= 0:
        failures.append(
            "loss injection inactive — the fidelity claim needs retries"
        )
    ratio = float(row["wall_overhead_ratio"])
    if ratio > OVERHEAD_CEILING:
        failures.append(
            f"tracing overhead ratio {ratio:.2f}x exceeds the "
            f"{OVERHEAD_CEILING:.0f}x ceiling"
        )
    return failures
