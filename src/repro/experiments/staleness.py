"""Update-plane staleness under message loss.

The paper argues summaries are soft state: an update that never arrives
is not an error — the stale summary serves queries until its TTL runs
out, then the branch degrades gracefully. With the event-driven update
plane this is finally measurable: summaries travel as real messages, so
a lossy network produces genuinely stale replicas.

The experiment free-runs the per-server update actors (paper's t_s)
while records churn (t_r), at several message loss rates, and samples
the age distribution of all held soft state at the end of the horizon:
propagation lag in the loss-free case, staleness / keep-alive rejection
/ TTL expiry under loss.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..roads import RoadsConfig, RoadsSystem
from ..summaries.config import SummaryConfig
from ..workload import WorkloadConfig, generate_node_stores
from .config import ExperimentSettings

#: loss rates swept by the ``update_plane`` benchmark scenario
LOSS_SWEEP = (0.0, 0.02, 0.08)


def update_plane_staleness_rows(
    settings: ExperimentSettings,
    loss_rates: Sequence[float] = LOSS_SWEEP,
    *,
    epochs: int = 8,
    churn_per_epoch: int = 4,
) -> List[Dict[str, object]]:
    """One row of staleness statistics per loss rate.

    Each run builds the same federation (same seed), starts the
    free-running update plane, and advances *epochs* summary intervals.
    Between intervals, ``churn_per_epoch`` records move to a different
    histogram bucket (the paper's record dynamics) so full summary
    sends keep occurring — the messages whose loss creates observable
    staleness rather than just a skipped refresh.
    """
    n = min(settings.num_nodes, 64)
    records = min(settings.records_per_node, 100)
    buckets = min(settings.histogram_buckets, 200)
    rows: List[Dict[str, object]] = []
    for loss in loss_rates:
        wcfg = WorkloadConfig(
            num_nodes=n, records_per_node=records, seed=settings.seed
        )
        stores = generate_node_stores(wcfg)
        config = RoadsConfig(
            num_nodes=n,
            records_per_node=records,
            max_children=settings.max_children,
            summary=SummaryConfig(histogram_buckets=buckets),
            summary_interval=settings.summary_interval,
            record_interval=settings.record_interval,
            delta_updates=True,
            loss_rate=loss,
            seed=settings.seed,
        )
        system = RoadsSystem.build(config, stores)
        plane = system.update_plane
        plane.start()
        churn_rng = np.random.default_rng(settings.seed + 17)
        sim = system.sim
        for _ in range(epochs):
            sim.run(until=sim.now + config.summary_interval)
            for _ in range(churn_per_epoch):
                store = stores[int(churn_rng.integers(0, n))]
                if len(store) == 0:
                    continue
                row = int(churn_rng.integers(0, len(store)))
                old = float(store.numeric_column("u0")[row])
                # Far side of the domain: guaranteed new bucket.
                store.update_numeric(
                    row, "u0", 1.0 - old if abs(old - 0.5) > 0.05 else 0.95
                )
        snap = plane.staleness_snapshot()
        c = plane.counters
        rows.append({
            "loss_rate": float(loss),
            "epochs": float(epochs),
            "entries": snap["entries"],
            "age_mean": snap["age_mean"],
            "age_max": snap["age_max"],
            "stale_fraction": snap["stale_fraction"],
            "install_lag_mean": snap["install_lag_mean"],
            "lost": float(c.lost),
            "rejected": float(c.ignored),
            "expired": float(c.expired),
            "installed": float(c.installed),
            "refreshed": float(c.refreshed),
            "full_sends": float(c.full_reports + c.full_sends),
            "keepalive_sends": float(
                c.keepalive_reports + c.keepalive_sends
            ),
            "update_bytes": float(
                c.export_bytes + c.aggregation_bytes + c.replication_bytes
            ),
            "messages": float(
                c.export_messages
                + c.aggregation_messages
                + c.replication_messages
            ),
        })
    return rows


def validate_update_plane(rows: List[Dict[str, object]]) -> List[str]:
    """Shape checks on the staleness sweep (soft-state story holds)."""
    failures: List[str] = []
    if not rows:
        return ["update_plane produced no rows"]
    by_loss = {float(r["loss_rate"]): r for r in rows}
    clean = by_loss.get(0.0)
    if clean is None:
        return ["update_plane sweep is missing the loss-free row"]
    if float(clean["lost"]) != 0:
        failures.append(
            f"loss-free run lost {clean['lost']} messages"
        )
    if float(clean["stale_fraction"]) != 0:
        failures.append(
            "loss-free run reported stale summaries "
            f"(fraction {clean['stale_fraction']})"
        )
    lossy = [r for r in rows if float(r["loss_rate"]) > 0]
    if not lossy:
        failures.append("update_plane sweep has no lossy rows")
        return failures
    if not all(float(r["lost"]) > 0 for r in lossy):
        failures.append("a lossy run lost no messages")
    # Loss must leave an observable staleness signal somewhere in the
    # sweep: rejected keep-alives (a full send was lost), genuinely
    # stale entries, or TTL expiries.
    signal = max(
        float(r["rejected"]) + float(r["stale_fraction"]) + float(r["expired"])
        for r in lossy
    )
    if signal <= 0:
        failures.append(
            "lossy runs produced no staleness signal "
            "(no rejected keep-alives, stale entries, or expiries)"
        )
    worst = max(lossy, key=lambda r: float(r["loss_rate"]))
    if float(worst["age_max"]) < float(clean["age_max"]):
        failures.append(
            "staleness did not grow with loss: age_max "
            f"{worst['age_max']} under loss vs {clean['age_max']} clean"
        )
    return failures
