"""Experiment configuration and scaling presets."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple


@dataclass(frozen=True)
class ExperimentSettings:
    """Shared knobs for the evaluation experiments.

    ``paper()`` reproduces Section V's defaults (320 nodes, 500 records
    per node, 500 six-dimensional queries, averaged over 10 runs);
    ``quick()`` is a scaled-down preset for CI-speed benchmark runs —
    same shapes, fewer samples.
    """

    num_nodes: int = 320
    records_per_node: int = 500
    query_dimensions: int = 6
    num_queries: int = 500
    runs: int = 10
    max_children: int = 8
    histogram_buckets: int = 1000
    query_range_length: float = 0.25
    #: observation window for update-overhead accounting, seconds.
    #: Summaries refresh every t_s=60s, records every t_r=6s (t_r/t_s=0.1),
    #: so one window holds 10 summary epochs and 100 record epochs.
    update_window_seconds: float = 600.0
    summary_interval: float = 60.0
    record_interval: float = 6.0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("num_nodes must be >= 2")
        if self.runs < 1 or self.num_queries < 1:
            raise ValueError("runs and num_queries must be >= 1")

    @staticmethod
    def paper() -> "ExperimentSettings":
        return ExperimentSettings()

    @staticmethod
    def quick() -> "ExperimentSettings":
        return ExperimentSettings(
            num_nodes=128,
            records_per_node=200,
            num_queries=80,
            runs=2,
        )

    @staticmethod
    def smoke() -> "ExperimentSettings":
        """Tiny preset for unit tests."""
        return ExperimentSettings(
            num_nodes=48,
            records_per_node=60,
            num_queries=25,
            runs=1,
        )

    def with_(self, **kwargs) -> "ExperimentSettings":
        return replace(self, **kwargs)


#: the paper's node-count sweep for Figures 3-5
NODE_SWEEP = tuple(range(64, 641, 64))
#: Figure 6/7 dimensionality sweep
DIMENSION_SWEEP = tuple(range(2, 9))
#: Figure 8 records-per-node sweep
RECORDS_SWEEP = (50, 100, 150, 200, 250, 300, 350, 400, 450, 500)
#: Figure 9 overlap-factor sweep
OVERLAP_SWEEP = tuple(range(1, 13))
#: Figure 10 node-degree sweep
DEGREE_SWEEP = tuple(range(4, 13))
#: Figure 11 selectivity groups (fractions)
SELECTIVITY_SWEEP = (0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03)
