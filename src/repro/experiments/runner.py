"""Trial runner: builds paired systems on a shared workload and measures.

One *trial* = one seeded workload + one ROADS system + one SWORD system
(+ optionally a central repository), with the identical query stream and
client placements fed to each design, so per-figure comparisons are
paired. Figures average trials over ``settings.runs`` seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..central.system import CentralConfig, CentralSystem
from ..query.query import Query
from ..records.store import RecordStore
from ..roads.config import RoadsConfig
from ..roads.search import SearchRequest
from ..roads.system import RoadsSystem
from ..sim.rng import SeedSequenceFactory
from ..summaries.config import SummaryConfig
from ..sword.system import SwordConfig, SwordSystem
from ..workload.generator import WorkloadConfig, generate_node_stores
from ..workload.queries import generate_queries
from .config import ExperimentSettings


@dataclass
class TrialMeasurement:
    """Aggregate metrics of one system over one trial's query stream."""

    mean_latency_s: float = 0.0
    latency_std_s: float = 0.0
    latency_p90_s: float = 0.0
    mean_query_bytes: float = 0.0
    mean_servers_contacted: float = 0.0
    mean_matches: float = 0.0
    update_bytes_window: int = 0
    storage_bytes_mean: float = 0.0
    storage_bytes_max: int = 0
    levels: int = 0


@dataclass
class TrialResult:
    roads: TrialMeasurement
    sword: Optional[TrialMeasurement] = None
    central: Optional[TrialMeasurement] = None


def build_workload(
    settings: ExperimentSettings,
    seed: int,
    *,
    overlap_factor: Optional[float] = None,
) -> tuple:
    """(workload config, per-node stores) for one trial."""
    wcfg = WorkloadConfig(
        num_nodes=settings.num_nodes,
        records_per_node=settings.records_per_node,
        overlap_factor=overlap_factor,
        seed=seed,
    )
    return wcfg, generate_node_stores(wcfg)


def build_roads(
    settings: ExperimentSettings,
    stores: Sequence[RecordStore],
    seed: int,
    telemetry=None,
) -> RoadsSystem:
    cfg = RoadsConfig(
        num_nodes=settings.num_nodes,
        records_per_node=settings.records_per_node,
        max_children=settings.max_children,
        summary=SummaryConfig(histogram_buckets=settings.histogram_buckets),
        summary_interval=settings.summary_interval,
        record_interval=settings.record_interval,
        seed=seed,
    )
    return RoadsSystem.build(cfg, stores, telemetry=telemetry)


def build_sword(
    settings: ExperimentSettings,
    stores: Sequence[RecordStore],
    seed: int,
) -> SwordSystem:
    cfg = SwordConfig(
        num_nodes=settings.num_nodes,
        records_per_node=settings.records_per_node,
        record_interval=settings.record_interval,
        seed=seed,
    )
    return SwordSystem(cfg, stores)


def build_central(
    settings: ExperimentSettings,
    stores: Sequence[RecordStore],
    seed: int,
) -> CentralSystem:
    cfg = CentralConfig(
        num_nodes=settings.num_nodes,
        record_interval=settings.record_interval,
        seed=seed,
    )
    return CentralSystem(cfg, stores)


def trial_queries(
    settings: ExperimentSettings, wcfg: WorkloadConfig, seed: int
) -> tuple:
    """(queries, client node per query) for one trial."""
    queries = generate_queries(
        wcfg,
        num_queries=settings.num_queries,
        dimensions=settings.query_dimensions,
        range_length=settings.query_range_length,
    )
    rng = SeedSequenceFactory(seed).fresh_generator("clients")
    clients = rng.integers(0, settings.num_nodes, size=len(queries))
    return queries, clients


def instrumented_query_run(
    settings: ExperimentSettings,
    seed: int,
    *,
    use_overlay: bool = True,
    telemetry=None,
    num_queries: Optional[int] = None,
    quality: bool = False,
):
    """Build a telemetry-instrumented ROADS system and drive its queries.

    Uses the same seeded workload and client placement as
    :func:`run_trial`, so the registry's per-server attribution matches
    the paired measurements. *num_queries* truncates the query stream
    (``0`` builds the system without issuing any query). *quality*
    attaches the shadow-oracle quality plane before any query runs —
    strictly read-only, so measurements are unchanged. Returns
    ``(system, telemetry, root_server_id)``.
    """
    from ..telemetry import Telemetry

    wcfg, stores = build_workload(settings, seed)
    queries, clients = trial_queries(settings, wcfg, seed)
    if num_queries is not None:
        queries, clients = queries[:num_queries], clients[:num_queries]
    tel = telemetry if telemetry is not None else Telemetry()
    system = build_roads(settings, stores, seed, telemetry=tel)
    if quality:
        system.attach_quality()
    system.search_many([
        SearchRequest(q, client_node=int(c), use_overlay=use_overlay)
        for q, c in zip(queries, clients)
    ])
    return system, tel, system.hierarchy.root.server_id


def measure_roads(
    system: RoadsSystem,
    queries: Sequence[Query],
    clients: Sequence[int],
    settings: ExperimentSettings,
    *,
    measure_updates: bool = True,
) -> TrialMeasurement:
    lat, qbytes, servers, matches = [], [], [], []
    for q, c in zip(queries, clients):
        o = system.search(SearchRequest(q, client_node=int(c))).outcome
        lat.append(o.latency)
        qbytes.append(o.query_bytes)
        servers.append(o.servers_contacted)
        matches.append(o.total_matches)
    storage = system.storage_bytes_by_server()
    return TrialMeasurement(
        mean_latency_s=float(np.mean(lat)),
        latency_std_s=float(np.std(lat)),
        latency_p90_s=float(np.percentile(lat, 90)),
        mean_query_bytes=float(np.mean(qbytes)),
        mean_servers_contacted=float(np.mean(servers)),
        mean_matches=float(np.mean(matches)),
        update_bytes_window=(
            system.update_overhead(settings.update_window_seconds)
            if measure_updates
            else 0
        ),
        storage_bytes_mean=float(np.mean(list(storage.values()))),
        storage_bytes_max=int(max(storage.values())),
        levels=system.levels,
    )


def measure_sword(
    system: SwordSystem,
    queries: Sequence[Query],
    clients: Sequence[int],
    settings: ExperimentSettings,
    *,
    measure_updates: bool = True,
) -> TrialMeasurement:
    lat, qbytes, servers, matches = [], [], [], []
    for q, c in zip(queries, clients):
        o = system.execute_query(q, int(c))
        lat.append(o.latency)
        qbytes.append(o.query_bytes)
        servers.append(o.servers_contacted)
        matches.append(o.total_matches)
    storage = system.storage_bytes_by_server()
    return TrialMeasurement(
        mean_latency_s=float(np.mean(lat)),
        latency_std_s=float(np.std(lat)),
        latency_p90_s=float(np.percentile(lat, 90)),
        mean_query_bytes=float(np.mean(qbytes)),
        mean_servers_contacted=float(np.mean(servers)),
        mean_matches=float(np.mean(matches)),
        update_bytes_window=(
            system.update_overhead(settings.update_window_seconds)
            if measure_updates
            else 0
        ),
        storage_bytes_mean=float(np.mean(list(storage.values()))),
        storage_bytes_max=int(max(storage.values())),
        levels=0,
    )


def measure_central(
    system: CentralSystem,
    queries: Sequence[Query],
    clients: Sequence[int],
    settings: ExperimentSettings,
) -> TrialMeasurement:
    lat = [system.execute_query(q, int(c)).latency for q, c in zip(queries, clients)]
    return TrialMeasurement(
        mean_latency_s=float(np.mean(lat)),
        mean_query_bytes=float(np.mean([q.size_bytes for q in queries])),
        mean_servers_contacted=1.0,
        update_bytes_window=system.update_overhead(settings.update_window_seconds),
        storage_bytes_mean=float(system.storage_bytes()),
        storage_bytes_max=system.storage_bytes(),
        levels=1,
    )


def run_trial(
    settings: ExperimentSettings,
    seed: int,
    *,
    overlap_factor: Optional[float] = None,
    include_sword: bool = True,
    include_central: bool = False,
    measure_updates: bool = True,
) -> TrialResult:
    """One seeded trial with paired systems over the same workload."""
    wcfg, stores = build_workload(settings, seed, overlap_factor=overlap_factor)
    queries, clients = trial_queries(settings, wcfg, seed)
    roads = build_roads(settings, stores, seed)
    result = TrialResult(
        roads=measure_roads(
            roads, queries, clients, settings, measure_updates=measure_updates
        )
    )
    if include_sword:
        sword = build_sword(settings, stores, seed)
        result.sword = measure_sword(
            sword, queries, clients, settings, measure_updates=measure_updates
        )
    if include_central:
        central = build_central(settings, stores, seed)
        result.central = measure_central(central, queries, clients, settings)
    return result


def average_trials(
    settings: ExperimentSettings,
    *,
    overlap_factor: Optional[float] = None,
    include_sword: bool = True,
    include_central: bool = False,
    measure_updates: bool = True,
) -> Dict[str, TrialMeasurement]:
    """Run ``settings.runs`` trials and average every numeric field."""
    trials = [
        run_trial(
            settings,
            settings.seed + run,
            overlap_factor=overlap_factor,
            include_sword=include_sword,
            include_central=include_central,
            measure_updates=measure_updates,
        )
        for run in range(settings.runs)
    ]
    out: Dict[str, TrialMeasurement] = {"roads": _mean([t.roads for t in trials])}
    if include_sword:
        out["sword"] = _mean([t.sword for t in trials])
    if include_central:
        out["central"] = _mean([t.central for t in trials])
    return out


def _mean(measurements: List[TrialMeasurement]) -> TrialMeasurement:
    return TrialMeasurement(
        mean_latency_s=float(np.mean([m.mean_latency_s for m in measurements])),
        latency_std_s=float(np.mean([m.latency_std_s for m in measurements])),
        latency_p90_s=float(np.mean([m.latency_p90_s for m in measurements])),
        mean_query_bytes=float(np.mean([m.mean_query_bytes for m in measurements])),
        mean_servers_contacted=float(
            np.mean([m.mean_servers_contacted for m in measurements])
        ),
        mean_matches=float(np.mean([m.mean_matches for m in measurements])),
        update_bytes_window=int(
            np.mean([m.update_bytes_window for m in measurements])
        ),
        storage_bytes_mean=float(
            np.mean([m.storage_bytes_mean for m in measurements])
        ),
        storage_bytes_max=int(max(m.storage_bytes_max for m in measurements)),
        levels=int(round(np.mean([m.levels for m in measurements]))),
    )
