"""Experiment drivers: one function per evaluation figure.

Every driver returns a list of row dicts — the same series the paper
plots — and takes an :class:`~repro.experiments.config.ExperimentSettings`
so benchmarks can run them at paper scale or scaled down. Use
:mod:`repro.experiments.report` to print them as aligned tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..prototype.backend import BackendCostModel
from ..prototype.response import (
    CentralResponder,
    RoadsResponder,
    summarize_responses,
)
from ..sim.rng import SeedSequenceFactory
from ..workload.generator import WorkloadConfig, generate_node_stores, merge_stores
from ..workload.queries import generate_selectivity_groups
from .config import (
    DEGREE_SWEEP,
    DIMENSION_SWEEP,
    NODE_SWEEP,
    OVERLAP_SWEEP,
    RECORDS_SWEEP,
    SELECTIVITY_SWEEP,
    ExperimentSettings,
)
from .runner import (
    average_trials,
    build_central,
    build_roads,
    build_workload,
)

Row = Dict[str, float]


def fig3_latency_vs_nodes(
    settings: ExperimentSettings = ExperimentSettings.paper(),
    node_sweep: Sequence[int] = NODE_SWEEP,
) -> List[Row]:
    """Figure 3: query latency vs number of nodes.

    Expected shape: ROADS grows logarithmically (with jumps at hierarchy
    level boundaries) and sits 40-60% below SWORD, which grows linearly.
    """
    rows: List[Row] = []
    for n in node_sweep:
        s = settings.with_(num_nodes=n)
        avg = average_trials(s, measure_updates=False)
        rows.append(
            {
                "nodes": n,
                "roads_latency_ms": avg["roads"].mean_latency_s * 1000,
                "sword_latency_ms": avg["sword"].mean_latency_s * 1000,
                "roads_levels": avg["roads"].levels,
            }
        )
    return rows


def fig4_update_overhead_vs_nodes(
    settings: ExperimentSettings = ExperimentSettings.paper(),
    node_sweep: Sequence[int] = NODE_SWEEP,
) -> List[Row]:
    """Figure 4: update message overhead vs number of nodes (log scale).

    Expected shape: ROADS 1-2 orders of magnitude below SWORD.
    """
    rows: List[Row] = []
    for n in node_sweep:
        s = settings.with_(num_nodes=n, num_queries=1)
        avg = average_trials(s, measure_updates=True)
        rows.append(
            {
                "nodes": n,
                "roads_update_bytes": avg["roads"].update_bytes_window,
                "sword_update_bytes": avg["sword"].update_bytes_window,
                "ratio": (
                    avg["sword"].update_bytes_window
                    / max(1, avg["roads"].update_bytes_window)
                ),
            }
        )
    return rows


def fig5_query_overhead_vs_nodes(
    settings: ExperimentSettings = ExperimentSettings.paper(),
    node_sweep: Sequence[int] = NODE_SWEEP,
) -> List[Row]:
    """Figure 5: query message overhead vs number of nodes.

    Expected shape: ROADS 2-5x above SWORD (it must visit every owner
    with possibly-matching data — the voluntary-sharing cost).
    """
    rows: List[Row] = []
    for n in node_sweep:
        s = settings.with_(num_nodes=n)
        avg = average_trials(s, measure_updates=False)
        rows.append(
            {
                "nodes": n,
                "roads_query_bytes": avg["roads"].mean_query_bytes,
                "sword_query_bytes": avg["sword"].mean_query_bytes,
                "ratio": (
                    avg["roads"].mean_query_bytes
                    / max(1.0, avg["sword"].mean_query_bytes)
                ),
            }
        )
    return rows


def fig6_latency_vs_dimensions(
    settings: ExperimentSettings = ExperimentSettings.paper(),
    dimension_sweep: Sequence[int] = DIMENSION_SWEEP,
) -> List[Row]:
    """Figure 6: latency vs query dimensionality.

    Expected shape: ROADS latency falls (~40% from 2 to 8 dimensions, as
    every dimension confines the search); SWORD stays flat (one ring is
    used regardless of dimensionality).
    """
    rows: List[Row] = []
    for q in dimension_sweep:
        s = settings.with_(query_dimensions=q)
        avg = average_trials(s, measure_updates=False)
        rows.append(
            {
                "dimensions": q,
                "roads_latency_ms": avg["roads"].mean_latency_s * 1000,
                "sword_latency_ms": avg["sword"].mean_latency_s * 1000,
            }
        )
    return rows


def fig7_query_overhead_vs_dimensions(
    settings: ExperimentSettings = ExperimentSettings.paper(),
    dimension_sweep: Sequence[int] = DIMENSION_SWEEP,
) -> List[Row]:
    """Figure 7: query overhead vs dimensionality.

    Expected shape: SWORD grows linearly (bigger query messages over the
    same path); ROADS dips first (smaller search scope) then rises again
    (scope reduction flattens out while messages keep growing).
    """
    rows: List[Row] = []
    for q in dimension_sweep:
        s = settings.with_(query_dimensions=q)
        avg = average_trials(s, measure_updates=False)
        rows.append(
            {
                "dimensions": q,
                "roads_query_bytes": avg["roads"].mean_query_bytes,
                "sword_query_bytes": avg["sword"].mean_query_bytes,
            }
        )
    return rows


def fig8_update_overhead_vs_records(
    settings: ExperimentSettings = ExperimentSettings.paper(),
    records_sweep: Sequence[int] = RECORDS_SWEEP,
) -> List[Row]:
    """Figure 8: update overhead vs records per node.

    Expected shape: ROADS constant (fixed-size summaries); SWORD linear
    (each record is re-exported).
    """
    rows: List[Row] = []
    for k in records_sweep:
        s = settings.with_(records_per_node=k, num_queries=1)
        avg = average_trials(s, measure_updates=True)
        rows.append(
            {
                "records_per_node": k,
                "roads_update_bytes": avg["roads"].update_bytes_window,
                "sword_update_bytes": avg["sword"].update_bytes_window,
            }
        )
    return rows


def fig9_latency_vs_overlap(
    settings: ExperimentSettings = ExperimentSettings.paper(),
    overlap_sweep: Sequence[float] = OVERLAP_SWEEP,
) -> List[Row]:
    """Figure 9: ROADS latency vs data overlap factor.

    Expected shape: latency creeps up slightly (~8% over Of = 1..12) as
    more servers hold matching records.
    """
    rows: List[Row] = []
    for of in overlap_sweep:
        avg = average_trials(
            settings,
            overlap_factor=float(of),
            include_sword=False,
            measure_updates=False,
        )
        rows.append(
            {
                "overlap_factor": of,
                "roads_latency_ms": avg["roads"].mean_latency_s * 1000,
                "roads_query_bytes": avg["roads"].mean_query_bytes,
            }
        )
    return rows


def fig10_latency_vs_degree(
    settings: ExperimentSettings = ExperimentSettings.paper(),
    degree_sweep: Sequence[int] = DEGREE_SWEEP,
) -> List[Row]:
    """Figure 10: ROADS latency vs node degree.

    Expected shape: latency falls as the hierarchy flattens (degree 4 to
    12 cut the paper's latency from ~1000 ms to ~650 ms); query overhead
    falls for the same reason.
    """
    rows: List[Row] = []
    for k in degree_sweep:
        s = settings.with_(max_children=k)
        avg = average_trials(s, include_sword=False, measure_updates=False)
        rows.append(
            {
                "degree": k,
                "roads_latency_ms": avg["roads"].mean_latency_s * 1000,
                "roads_query_bytes": avg["roads"].mean_query_bytes,
                "levels": avg["roads"].levels,
            }
        )
    return rows


def fig11_response_time_vs_selectivity(
    settings: ExperimentSettings = ExperimentSettings.paper(),
    selectivity_sweep: Sequence[float] = SELECTIVITY_SWEEP,
    *,
    queries_per_group: int = 200,
    cost_model: Optional[BackendCostModel] = None,
) -> List[Row]:
    """Figure 11: prototype total response time vs query selectivity.

    Expected shape: the central repository wins at low selectivity (one
    round trip); as selectivity grows, retrieval dominates and ROADS'
    parallel per-owner retrieval becomes comparable (~1%) then better
    (~3%).
    """
    seed = settings.seed
    wcfg, stores = build_workload(settings, seed)
    reference = merge_stores(stores)
    groups = generate_selectivity_groups(
        wcfg,
        reference,
        targets=selectivity_sweep,
        queries_per_group=queries_per_group,
        dimensions=settings.query_dimensions,
    )
    roads = build_roads(settings, stores, seed)
    central = build_central(settings, stores, seed)
    roads_resp = RoadsResponder(roads, cost_model)
    central_resp = CentralResponder(central, cost_model)
    rng = SeedSequenceFactory(seed).fresh_generator("fig11-clients")

    rows: List[Row] = []
    for group in groups:
        clients = rng.integers(0, settings.num_nodes, size=len(group.queries))
        r_out = [
            roads_resp.respond(q, int(c)) for q, c in zip(group.queries, clients)
        ]
        c_out = [
            central_resp.respond(q, int(c)) for q, c in zip(group.queries, clients)
        ]
        r_sum, c_sum = summarize_responses(r_out), summarize_responses(c_out)
        rows.append(
            {
                "selectivity_pct": group.target * 100,
                "roads_mean_ms": r_sum["mean_seconds"] * 1000,
                "roads_p90_ms": r_sum["p90_seconds"] * 1000,
                "central_mean_ms": c_sum["mean_seconds"] * 1000,
                "central_p90_ms": c_sum["p90_seconds"] * 1000,
                "queries": r_sum["queries"],
            }
        )
    return rows
