"""Reusable shape validators for reproduction criteria.

EXPERIMENTS.md states each figure's acceptance criteria in prose ("ROADS
grows logarithmically, SWORD linearly, ROADS 40-60% lower"); this module
states them as code. The validators return a list of human-readable
failure strings (empty = all criteria met), so benchmarks, the CLI
selftest, and ad-hoc notebooks can all check a row set the same way.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

Rows = Sequence[Dict]


def _series(rows: Rows, column: str) -> np.ndarray:
    return np.array([float(r[column]) for r in rows])


def check_dominates(
    rows: Rows, winner: str, loser: str, *, min_factor: float = 1.0
) -> List[str]:
    """*winner* column strictly below *loser* at every point, by at least
    *min_factor* on average."""
    failures = []
    w, l = _series(rows, winner), _series(rows, loser)
    if not (w < l).all():
        failures.append(f"{winner} not below {loser} at every point")
    if np.mean(l / np.maximum(w, 1e-12)) < min_factor:
        failures.append(
            f"mean {loser}/{winner} factor below {min_factor}"
        )
    return failures


def check_growth_order(
    rows: Rows,
    x: str,
    y: str,
    *,
    order: str,
    linear_fraction: float = 0.4,
    sublinear_fraction: float = 0.6,
) -> List[str]:
    """Check a series grows ~linearly, sub-linearly, or stays constant.

    ``order`` is one of ``"linear"``, ``"sublinear"``, ``"constant"``.
    Linear: end/start growth at least ``linear_fraction`` of the x ratio.
    Sublinear: growth at most ``sublinear_fraction`` of the x ratio.
    Constant: within 10% across the sweep.
    """
    xs, ys = _series(rows, x), _series(rows, y)
    if len(xs) < 2:
        return [f"need at least two points to judge growth of {y}"]
    x_ratio = xs[-1] / xs[0]
    y_ratio = ys[-1] / max(ys[0], 1e-12)
    if order == "linear":
        if y_ratio < linear_fraction * x_ratio:
            return [
                f"{y} grew {y_ratio:.2f}x over a {x_ratio:.2f}x sweep; "
                "expected ~linear"
            ]
    elif order == "sublinear":
        if y_ratio > sublinear_fraction * x_ratio:
            return [
                f"{y} grew {y_ratio:.2f}x over a {x_ratio:.2f}x sweep; "
                "expected sublinear"
            ]
    elif order == "constant":
        if ys.max() / max(ys.min(), 1e-12) > 1.1:
            return [f"{y} varies more than 10% across the sweep"]
    else:
        raise ValueError(f"unknown growth order {order!r}")
    return []


def check_monotone(
    rows: Rows, y: str, *, direction: str, tolerance: float = 0.0
) -> List[str]:
    """Series rises or falls across the sweep (endpoints, with slack)."""
    ys = _series(rows, y)
    if direction == "increasing":
        ok = ys[-1] >= ys[0] * (1 - tolerance)
    elif direction == "decreasing":
        ok = ys[-1] <= ys[0] * (1 + tolerance)
    else:
        raise ValueError(f"unknown direction {direction!r}")
    if not ok:
        return [f"{y} not {direction} across the sweep ({ys[0]:g} -> {ys[-1]:g})"]
    return []


def check_crossover(
    rows: Rows, x: str, a: str, b: str
) -> List[str]:
    """*a* starts above *b* and ends at or below it — and report where.

    Returns failures; on success the crossover position can be read with
    :func:`crossover_position`.
    """
    av, bv = _series(rows, a), _series(rows, b)
    failures = []
    if not av[0] > bv[0]:
        failures.append(f"{a} does not start above {b}")
    if not av[-1] <= bv[-1] * 1.1:
        failures.append(f"{a} never becomes comparable to {b}")
    return failures


def crossover_position(rows: Rows, x: str, a: str, b: str):
    """First x at which *a* drops to or below *b* (None if never)."""
    for r in rows:
        if float(r[a]) <= float(r[b]):
            return r[x]
    return None


def check_ratio_band(
    rows: Rows, numerator: str, denominator: str, lo: float, hi: float
) -> List[str]:
    """Per-row ratio stays within [lo, hi]."""
    n, d = _series(rows, numerator), _series(rows, denominator)
    ratios = n / np.maximum(d, 1e-12)
    failures = []
    if ratios.min() < lo:
        failures.append(
            f"{numerator}/{denominator} fell to {ratios.min():.2f} < {lo}"
        )
    if ratios.max() > hi:
        failures.append(
            f"{numerator}/{denominator} rose to {ratios.max():.2f} > {hi}"
        )
    return failures


def validate_fig3(rows: Rows) -> List[str]:
    """ROADS below SWORD everywhere; SWORD ~linear; ROADS sublinear."""
    return (
        check_dominates(rows, "roads_latency_ms", "sword_latency_ms")
        + check_growth_order(
            rows, "nodes", "sword_latency_ms", order="linear"
        )
        + check_growth_order(
            rows, "nodes", "roads_latency_ms", order="sublinear"
        )
    )


def validate_fig4(rows: Rows) -> List[str]:
    """ROADS 1-2 orders of magnitude below SWORD."""
    return check_dominates(
        rows, "roads_update_bytes", "sword_update_bytes", min_factor=10.0
    ) + check_ratio_band(
        rows, "sword_update_bytes", "roads_update_bytes", 10.0, 10_000.0
    )


def validate_fig5(rows: Rows) -> List[str]:
    """SWORD cheaper; ROADS within a small-single-digit factor."""
    return check_dominates(
        rows, "sword_query_bytes", "roads_query_bytes"
    ) + check_ratio_band(
        rows, "roads_query_bytes", "sword_query_bytes", 1.0, 8.0
    )


def validate_fig8(rows: Rows) -> List[str]:
    """ROADS constant in records; SWORD ~linear."""
    return check_growth_order(
        rows, "records_per_node", "roads_update_bytes", order="constant"
    ) + check_growth_order(
        rows, "records_per_node", "sword_update_bytes", order="linear",
        linear_fraction=0.7,
    )


def validate_fig11(rows: Rows) -> List[str]:
    """Central wins at low selectivity; ROADS comparable/better by 3%."""
    return check_crossover(
        rows, "selectivity_pct", "roads_mean_ms", "central_mean_ms"
    ) + check_monotone(
        rows, "central_mean_ms", direction="increasing"
    )


def validate_load_plane(rows: Rows) -> List[str]:
    """The bottleneck story: root entry saturates, overlay stays flat.

    Rows come from :func:`repro.experiments.load.offered_load_rows`,
    one per (offered rate, overlay on/off) pair.
    """
    failures: List[str] = []
    if not rows:
        return ["load_plane produced no rows"]
    no_ov = sorted(
        (r for r in rows if not r["use_overlay"]),
        key=lambda r: float(r["rate"]),
    )
    ov = sorted(
        (r for r in rows if r["use_overlay"]),
        key=lambda r: float(r["rate"]),
    )
    if len(no_ov) < 2 or len(ov) < 2:
        return ["load_plane sweep needs >= 2 rates per overlay setting"]
    # Root entry: queue depth and tail latency must grow with offered
    # load, and the top rate must push the root past its queue bound.
    lo, hi = no_ov[0], no_ov[-1]
    if float(hi["root_queue_max"]) <= float(lo["root_queue_max"]):
        failures.append(
            "no-overlay root queue depth did not grow with offered load "
            f"({float(lo['root_queue_max']):g} -> "
            f"{float(hi['root_queue_max']):g})"
        )
    if float(hi["latency_p95"]) <= float(lo["latency_p95"]):
        failures.append(
            "no-overlay p95 latency did not grow with offered load "
            f"({float(lo['latency_p95']):g} -> "
            f"{float(hi['latency_p95']):g})"
        )
    if float(hi["root_shed"]) + float(hi["shed_queries"]) <= 0:
        failures.append(
            "no-overlay top rate shed nothing: the root never saturated"
        )
    # Overlay: flat latency across the sweep, and clearly below the
    # saturated root at the top rate.
    p95s = [float(r["latency_p95"]) for r in ov]
    if max(p95s) > 3.0 * max(min(p95s), 1e-9):
        failures.append(
            "overlay p95 latency not flat across the sweep "
            f"({min(p95s):g} -> {max(p95s):g})"
        )
    if not float(ov[-1]["latency_p95"]) < float(hi["latency_p95"]):
        failures.append(
            "overlay p95 at the top rate is not below the root-entry p95"
        )
    if float(ov[-1]["root_queue_max"]) >= float(hi["root_queue_max"]):
        failures.append(
            "overlay root queue at the top rate is not below root-entry's"
        )
    return failures
