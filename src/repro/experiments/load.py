"""Offered load vs latency/goodput: the root bottleneck, made real.

Figures 5/7 argue the replication overlay removes the root bottleneck,
but a sequential query replayer can only show that as message *counts*.
With the concurrent serving plane the claim becomes a queueing
experiment: every server gets a single-server bounded queue
(:class:`~repro.net.transport.ServiceConfig`), an open-loop
:class:`~repro.roads.load.LoadGenerator` offers Poisson query traffic
while the update plane free-runs, and overload shows up the way it does
in a deployment — queueing delay, then load-shed queries.

Without the overlay every query enters at the root, so the root's
utilisation is the full arrival rate times the service time: past
saturation its queue depth and the p95 latency climb with offered load,
and past the queue bound queries get shed. With the overlay the same
stream enters at each client's own server and the per-server load stays
a small fraction of capacity — flat latency at every swept rate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..net.transport import ServiceConfig
from ..roads import LoadConfig, LoadGenerator, RetryPolicy, RoadsConfig, RoadsSystem
from ..sim.rng import SeedSequenceFactory
from ..summaries.config import SummaryConfig
from ..workload import WorkloadConfig, generate_node_stores
from ..workload.queries import generate_queries
from .config import ExperimentSettings

#: offered rates (queries/s) swept by the ``load_plane`` bench scenario
RATE_SWEEP = (5.0, 20.0, 60.0)
#: arrival window per run, virtual seconds
DEFAULT_HORIZON = 12.0
#: per-message service time — root capacity 1/0.025 = 40 msg/s, so the
#: top swept rate drives the no-overlay root past saturation (rho = 1.5)
SERVICE_TIME = 0.025
#: waiting-room bound: beyond this the server sheds (rejects) messages
QUEUE_LIMIT = 24
#: client patience under load: shorter timeout, one extra retry, real
#: exponential backoff so shed queries don't hammer a saturated server
LOAD_RETRY = RetryPolicy(timeout=2.0, retries=2, backoff_base=0.2)


def offered_load_rows(
    settings: ExperimentSettings,
    rates: Sequence[float] = RATE_SWEEP,
    *,
    horizon: float = DEFAULT_HORIZON,
    service: Optional[ServiceConfig] = None,
) -> List[Dict[str, object]]:
    """One row per (offered rate, overlay on/off) pair.

    Each run rebuilds the same federation (same seed), installs the
    service model on every server, starts the free-running update plane,
    and offers a Poisson query stream for *horizon* virtual seconds. The
    row reports client-observed latency percentiles, goodput, shed
    counts, and the root's queue statistics.
    """
    n = min(settings.num_nodes, 32)
    records = min(settings.records_per_node, 60)
    buckets = min(settings.histogram_buckets, 200)
    svc = service or ServiceConfig(
        service_time=SERVICE_TIME, queue_limit=QUEUE_LIMIT
    )
    wcfg = WorkloadConfig(
        num_nodes=n, records_per_node=records, seed=settings.seed
    )
    queries = generate_queries(
        wcfg,
        num_queries=min(settings.num_queries, 40),
        dimensions=settings.query_dimensions,
        range_length=settings.query_range_length,
        seed_label="load-queries",
    )
    rows: List[Dict[str, object]] = []
    for rate in rates:
        for use_overlay in (False, True):
            stores = generate_node_stores(wcfg)
            config = RoadsConfig(
                num_nodes=n,
                records_per_node=records,
                max_children=settings.max_children,
                summary=SummaryConfig(histogram_buckets=buckets),
                summary_interval=settings.summary_interval,
                record_interval=settings.record_interval,
                delta_updates=True,
                seed=settings.seed,
            )
            system = RoadsSystem.build(config, stores)
            system.enable_service(svc)
            system.update_plane.start()
            # Drain the initial summary propagation so the load run
            # starts from a converged plane, not the startup burst.
            system.sim.run(until=system.sim.now + 2.0)
            seeds = SeedSequenceFactory(settings.seed)
            gen = LoadGenerator(
                system,
                queries,
                LoadConfig(
                    rate=float(rate),
                    horizon=float(horizon),
                    use_overlay=use_overlay,
                    retry=LOAD_RETRY,
                ),
                seeds.fresh_generator(f"load-{rate}"),
            )
            report = gen.run()
            root = system.hierarchy.root.server_id
            root_stats = system.network.service_stats(root)
            all_stats = [
                system.network.service_stats(s.server_id)
                for s in system.hierarchy
            ]
            elapsed = max(report.drained_at - report.started_at, 1e-9)
            summary = report.summary()
            rows.append({
                "rate": float(rate),
                "use_overlay": use_overlay,
                "offered": float(report.offered),
                "completed": float(report.completed),
                "ok": float(report.ok),
                "shed_queries": float(report.shed_queries),
                "rejections": float(report.rejections),
                "goodput": float(report.goodput),
                "latency_p50": float(summary["latency_p50"] or 0.0),
                "latency_p95": float(summary["latency_p95"] or 0.0),
                "latency_max": float(summary["latency_max"] or 0.0),
                "root_queue_max": float(root_stats["max_depth"]),
                "root_served": float(root_stats["served"]),
                "root_shed": float(root_stats["shed"]),
                "root_utilization": float(root_stats["busy_seconds"])
                / elapsed,
                "mean_queue_max": (
                    sum(float(s["max_depth"]) for s in all_stats)
                    / max(len(all_stats), 1)
                ),
                "messages_shed_total": float(
                    system.network.counters()["shed"]
                ),
            })
    return rows
