"""Table I: storage overhead comparison, analytical and measured.

The analytical side evaluates the paper's formulas (``repro.analysis``).
The measured side builds real (smaller) systems over one workload and
reports the bytes each design actually stores per server, demonstrating
the same ordering: ROADS orders of magnitude below SWORD and the central
repository, and independent of the record count.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.model import (
    PAPER_TABLE1_VALUES,
    ModelParams,
    table1 as analytical_table1,
    update_overheads,
)
from .config import ExperimentSettings
from .runner import (
    build_central,
    build_roads,
    build_sword,
    build_workload,
)


def analytical_rows(params: ModelParams = ModelParams()) -> List[Dict]:
    """Formula values next to the paper's printed exemplary values."""
    ours = analytical_table1(params)
    return [
        {
            "design": design,
            "formula_units": ours[design],
            "paper_exemplary_units": PAPER_TABLE1_VALUES[design],
        }
        for design in ("ROADS", "SWORD", "Central")
    ]


def analytical_update_rows(params: ModelParams = ModelParams()) -> List[Dict]:
    """Equations (1)-(3) in units/second for the example parameters."""
    ours = update_overheads(params)
    return [
        {"design": d, "update_units_per_second": v} for d, v in ours.items()
    ]


def measured_rows(
    settings: ExperimentSettings = ExperimentSettings.quick(),
) -> List[Dict]:
    """Per-server storage measured from real system builds."""
    seed = settings.seed
    _, stores = build_workload(settings, seed)
    roads = build_roads(settings, stores, seed)
    sword = build_sword(settings, stores, seed)
    central = build_central(settings, stores, seed)

    roads_storage = roads.storage_bytes_by_server()
    sword_storage = sword.storage_bytes_by_server()
    return [
        {
            "design": "ROADS",
            "mean_bytes_per_server": sum(roads_storage.values()) / len(roads_storage),
            "max_bytes_per_server": max(roads_storage.values()),
        },
        {
            "design": "SWORD",
            "mean_bytes_per_server": sum(sword_storage.values()) / len(sword_storage),
            "max_bytes_per_server": max(sword_storage.values()),
        },
        {
            "design": "Central",
            "mean_bytes_per_server": float(central.storage_bytes()),
            "max_bytes_per_server": central.storage_bytes(),
        },
    ]
