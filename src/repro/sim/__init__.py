"""Discrete-event simulation substrate: scheduler, metrics, RNG streams."""

from .engine import Event, PeriodicTask, SimulationError, Simulator
from .metrics import (
    CATEGORIES,
    MAINTENANCE,
    QUERY,
    RESULT,
    UPDATE,
    MetricsCollector,
)
from .rng import SeedSequenceFactory

__all__ = [
    "Simulator",
    "Event",
    "PeriodicTask",
    "SimulationError",
    "MetricsCollector",
    "SeedSequenceFactory",
    "UPDATE",
    "QUERY",
    "MAINTENANCE",
    "RESULT",
    "CATEGORIES",
]
