"""Discrete-event simulation engine.

A minimal, deterministic event scheduler: events are ``(time, seq, fn)``
triples on a binary heap; ties in time break by insertion order so runs
are reproducible. Nodes in the network layers are reactive actors whose
handlers schedule further events.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for scheduler misuse (negative delays, running backwards)."""


class Event:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "fn", "cancelled", "fired", "label", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[[], None],
        sim=None,
        label: Optional[str] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self.fired = False
        #: profiling frame name for this event's handler (None = generic);
        #: schedule sites only pay for it when a profiler is attached
        self.label = label
        self._sim = sim

    def cancel(self) -> None:
        """Cancel the event; no-op if already cancelled or fired."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        # Keep the owning simulator's live-event counter exact so
        # ``Simulator.pending`` stays O(1).
        if self._sim is not None:
            self._sim._pending -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Heap-based discrete-event scheduler with a virtual clock."""

    def __init__(self):
        self._now = 0.0
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._processed = 0
        # Live (not-yet-fired, not-cancelled) event count, maintained on
        # schedule/cancel/fire so ``pending`` never scans the heap.
        self._pending = 0
        #: optional call-path profiler
        #: (:class:`repro.telemetry.profiling.CallPathProfiler`); when
        #: set, the dispatch loop opens a ``sim.dispatch`` frame, every
        #: handler invocation gets a child frame named after its event
        #: label (``sim.event`` when unlabeled), and processed events
        #: land in the ``sim.events`` counter. ``None`` (the default)
        #: keeps the hot path free — the unprofiled loop is untouched.
        self.profiler = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live (not-yet-fired, non-cancelled) events. O(1)."""
        return self._pending

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(
        self,
        delay: float,
        fn: Callable[[], None],
        label: Optional[str] = None,
    ) -> Event:
        """Run *fn* at ``now + delay``; returns a cancellable handle.

        *label* names the handler's profiling frame; pass it only when a
        profiler is attached (it is dead weight otherwise).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        ev = Event(self._now + delay, next(self._seq), fn, self, label)
        heapq.heappush(self._queue, ev)
        self._pending += 1
        return ev

    def schedule_at(
        self,
        time: float,
        fn: Callable[[], None],
        label: Optional[str] = None,
    ) -> Event:
        """Run *fn* at absolute virtual *time* (must be >= now)."""
        return self.schedule(time - self._now, fn, label)

    def schedule_periodic(
        self,
        interval: float,
        fn: Callable[[], None],
        *,
        first_delay: Optional[float] = None,
        jitter: float = 0.0,
        rng=None,
        label: Optional[str] = None,
    ) -> "PeriodicTask":
        """Run *fn* every *interval* seconds until the task is stopped."""
        if interval <= 0:
            raise SimulationError("interval must be positive")
        task = PeriodicTask(self, interval, fn, jitter=jitter, rng=rng, label=label)
        task.start(first_delay if first_delay is not None else interval)
        return task

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains, *until*, or *max_events*.

        Returns the number of events processed by this call. The clock is
        advanced to *until* when given, even if the queue drains earlier.
        """
        if self.profiler is not None:
            return self._run_profiled(until, max_events)
        processed = 0
        while self._queue:
            ev = self._queue[0]
            if until is not None and ev.time > until:
                break
            heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            if max_events is not None and processed >= max_events:
                heapq.heappush(self._queue, ev)
                break
            self._now = ev.time
            ev.fired = True
            self._pending -= 1
            ev.fn()
            processed += 1
            self._processed += 1
        if until is not None and self._now < until:
            self._now = until
        return processed

    def _run_profiled(
        self, until: Optional[float], max_events: Optional[int]
    ) -> int:
        """The :meth:`run` loop under a ``sim.dispatch`` frame.

        Every handler invocation opens a child frame named after its
        event's schedule-site label, so the dispatch loop's wall time
        decomposes by event kind and plane in the call-path tree.
        """
        prof = self.profiler
        processed = 0
        prof.enter("sim.dispatch")
        try:
            while self._queue:
                ev = self._queue[0]
                if until is not None and ev.time > until:
                    break
                heapq.heappop(self._queue)
                if ev.cancelled:
                    continue
                if max_events is not None and processed >= max_events:
                    heapq.heappush(self._queue, ev)
                    break
                self._now = ev.time
                ev.fired = True
                self._pending -= 1
                prof.enter(ev.label or "sim.event")
                try:
                    ev.fn()
                finally:
                    prof.exit()
                processed += 1
                self._processed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            prof.exit()
            prof.count("sim.events", processed)
        return processed

    def step(self) -> bool:
        """Process a single event; returns False when the queue is empty."""
        prof = self.profiler
        if prof is not None:
            prof.enter("sim.dispatch")
        try:
            while self._queue:
                ev = heapq.heappop(self._queue)
                if ev.cancelled:
                    continue
                self._now = ev.time
                ev.fired = True
                self._pending -= 1
                if prof is None:
                    ev.fn()
                else:
                    prof.enter(ev.label or "sim.event")
                    try:
                        ev.fn()
                    finally:
                        prof.exit()
                        prof.count("sim.events")
                self._processed += 1
                return True
            return False
        finally:
            if prof is not None:
                prof.exit()


class PeriodicTask:
    """Repeating event created by :meth:`Simulator.schedule_periodic`."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        fn,
        *,
        jitter: float = 0.0,
        rng=None,
        label: Optional[str] = None,
    ):
        self._sim = sim
        self._interval = interval
        self._fn = fn
        self._jitter = jitter
        self._rng = rng
        self._label = label
        self._event: Optional[Event] = None
        self._stopped = False
        self.fired = 0

    def start(self, first_delay: float) -> None:
        self._event = self._sim.schedule(first_delay, self._tick, self._label)

    def _next_delay(self) -> float:
        if self._jitter and self._rng is not None:
            return self._interval * (1.0 + self._jitter * (2.0 * self._rng.random() - 1.0))
        return self._interval

    def _tick(self) -> None:
        if self._stopped:
            return
        self.fired += 1
        self._fn()
        if not self._stopped:
            self._event = self._sim.schedule(
                self._next_delay(), self._tick, self._label
            )

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self._event.cancel()

    @property
    def stopped(self) -> bool:
        return self._stopped
