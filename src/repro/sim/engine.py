"""Discrete-event simulation engine.

A minimal, deterministic event scheduler: events are ``(time, seq, fn)``
triples dispatched in strict ``(time, seq)`` order so runs are
reproducible. Nodes in the network layers are reactive actors whose
handlers schedule further events.

Dispatch is backed by two structures with identical ordering semantics:

* a **hierarchical timing wheel** (:class:`TimingWheel`) — a sparse,
  two-level calendar queue that absorbs the periodic planes' dense
  near-future traffic (summary pushes, replica fan-out, message
  deliveries) with O(1) bucket appends and one lazy sort per bucket;
* a **binary heap** retained for aperiodic / far-future one-shot events
  (TTL expiries, drill timers) beyond the wheel horizon.

Every pop merges the wheel's next event against the heap top by
``(time, seq)``, so the interleaving is byte-identical to the historical
pure-heap dispatcher — ties in time still break by insertion order.
"""

from __future__ import annotations

import bisect
import heapq
import itertools
from typing import Callable, Dict, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for scheduler misuse (negative delays, running backwards)."""


#: process-wide default for ``Simulator(use_wheel=...)``. The
#: equivalence tripwire flips this to run entire scenarios on the pure
#: heap dispatcher and assert the wheel changes nothing observable.
DEFAULT_USE_WHEEL = True


class Event:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "fn", "cancelled", "fired", "label", "_sim", "_in_heap")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[[], None],
        sim=None,
        label: Optional[str] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self.fired = False
        #: profiling frame name for this event's handler (None = generic);
        #: schedule sites only pay for it when a profiler is attached
        self.label = label
        self._sim = sim
        #: whether the event sits on the overflow heap (vs the wheel);
        #: lets ``cancel`` keep the heap's tombstone ratio exact.
        self._in_heap = False

    def cancel(self) -> None:
        """Cancel the event; no-op if already cancelled or fired."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        # Keep the owning simulator's live-event counter exact so
        # ``Simulator.pending`` stays O(1); heap tombstones are counted
        # so the scheduler can compact them before they dominate.
        sim = self._sim
        if sim is not None:
            sim._pending -= 1
            if self._in_heap:
                sim._note_heap_cancel()

    def __lt__(self, other: "Event") -> bool:
        # Hot path for heap sifts, bucket sorts and bisects: avoid the
        # tuple allocation of ``(time, seq) < (time, seq)``.
        t = self.time
        ot = other.time
        return t < ot or (t == ot and self.seq < other.seq)


class TimingWheel:
    """Sparse two-level calendar queue with exact ``(time, seq)`` ordering.

    Level 0 buckets events by ``floor(time / tick)``; level 1 by the same
    at granularity ``tick * fanout``. Buckets are dict-sparse (empty slots
    cost nothing) and unsorted until they become *current*, at which point
    one Timsort puts them in ``(time, seq)`` order. Events landing in the
    slot currently being drained are bisect-inserted past the drain
    cursor, which preserves exact ordering for same-slot schedules made
    from inside handlers.
    """

    __slots__ = (
        "tick",
        "fanout",
        "horizon",
        "_b0",
        "_b1",
        "_h0",
        "_h1",
        "_current",
        "_ci",
        "_cslot",
        "_len",
    )

    def __init__(self, tick: float = 0.05, fanout: int = 256):
        if tick <= 0:
            raise SimulationError("wheel tick must be positive")
        if fanout < 2:
            raise SimulationError("wheel fanout must be at least 2")
        self.tick = tick
        self.fanout = fanout
        #: absolute reach of the wheel from t=0 slot arithmetic; the
        #: simulator keeps events further than this *relative* distance
        #: on the overflow heap.
        self.horizon = tick * fanout * fanout
        self._b0: Dict[int, List[Event]] = {}
        self._b1: Dict[int, List[Event]] = {}
        self._h0: List[int] = []
        self._h1: List[int] = []
        self._current: List[Event] = []
        self._ci = 0
        self._cslot = -1
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def push(self, ev: Event) -> None:
        self._len += 1
        s0 = int(ev.time / self.tick)
        if s0 <= self._cslot:
            # Event lands in the slot being drained: keep the drained
            # prefix intact and insert into the sorted remainder.
            bisect.insort(self._current, ev, self._ci)
        elif s0 - self._cslot < self.fanout:
            b = self._b0.get(s0)
            if b is None:
                self._b0[s0] = [ev]
                heapq.heappush(self._h0, s0)
            else:
                b.append(ev)
        else:
            s1 = s0 // self.fanout
            b = self._b1.get(s1)
            if b is None:
                self._b1[s1] = [ev]
                heapq.heappush(self._h1, s1)
            else:
                b.append(ev)

    def _cascade(self) -> None:
        """Spill level-1 buckets due at or before the next level-0 bucket.

        A level-1 bucket ``s1`` covers level-0 slots
        ``[s1*fanout, (s1+1)*fanout)``; it must be redistributed before
        any level-0 slot at or past its start is drained.
        """
        h0, h1 = self._h0, self._h1
        b0, b1 = self._b0, self._b1
        fanout = self.fanout
        tick = self.tick
        while h1 and (not h0 or h1[0] * fanout <= h0[0]):
            s1 = heapq.heappop(h1)
            for ev in b1.pop(s1):
                s0 = int(ev.time / tick)
                b = b0.get(s0)
                if b is None:
                    b0[s0] = [ev]
                    heapq.heappush(h0, s0)
                else:
                    b.append(ev)

    def peek(self) -> Optional[Event]:
        """Next event in ``(time, seq)`` order, or None. Primes buckets."""
        while self._ci >= len(self._current):
            if self._h1:
                self._cascade()
            if not self._h0:
                if self._current:
                    self._current = []
                    self._ci = 0
                return None
            slot = heapq.heappop(self._h0)
            bucket = self._b0.pop(slot)
            bucket.sort()
            self._current = bucket
            self._ci = 0
            self._cslot = slot
        return self._current[self._ci]

    def pop(self) -> Event:
        """Remove and return the next event (call :meth:`peek` first)."""
        ev = self.peek()
        if ev is None:
            raise IndexError("pop from empty timing wheel")
        self._ci += 1
        self._len -= 1
        return ev


class Simulator:
    """Wheel-and-heap discrete-event scheduler with a virtual clock."""

    #: minimum heap size before tombstone compaction is considered
    _COMPACT_MIN = 64

    def __init__(
        self,
        *,
        use_wheel: Optional[bool] = None,
        wheel_tick: float = 0.05,
        wheel_fanout: int = 256,
    ):
        if use_wheel is None:
            use_wheel = DEFAULT_USE_WHEEL
        self._now = 0.0
        #: overflow heap: aperiodic / far-future one-shots beyond the
        #: wheel horizon (and everything, when the wheel is disabled)
        self._queue: List[Event] = []
        self._wheel: Optional[TimingWheel] = (
            TimingWheel(wheel_tick, wheel_fanout) if use_wheel else None
        )
        self._seq = itertools.count()
        self._processed = 0
        # Live (not-yet-fired, not-cancelled) event count, maintained on
        # schedule/cancel/fire so ``pending`` never scans the structures.
        self._pending = 0
        #: cancelled-but-unpopped events still sitting on the heap
        self._heap_cancelled = 0
        #: optional call-path profiler
        #: (:class:`repro.telemetry.profiling.CallPathProfiler`); when
        #: set, the dispatch loop opens a ``sim.dispatch`` frame, every
        #: handler invocation gets a child frame named after its event
        #: label (``sim.event`` when unlabeled), and processed events
        #: land in the ``sim.events`` counter. ``None`` (the default)
        #: keeps the hot path free — the unprofiled loop is untouched.
        self.profiler = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live (not-yet-fired, non-cancelled) events. O(1)."""
        return self._pending

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(
        self,
        delay: float,
        fn: Callable[[], None],
        label: Optional[str] = None,
    ) -> Event:
        """Run *fn* at ``now + delay``; returns a cancellable handle.

        *label* names the handler's profiling frame; pass it only when a
        profiler is attached (it is dead weight otherwise).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        ev = Event(self._now + delay, next(self._seq), fn, self, label)
        wheel = self._wheel
        if wheel is not None and delay < wheel.horizon:
            wheel.push(ev)
        else:
            ev._in_heap = True
            heapq.heappush(self._queue, ev)
        self._pending += 1
        return ev

    def schedule_at(
        self,
        time: float,
        fn: Callable[[], None],
        label: Optional[str] = None,
    ) -> Event:
        """Run *fn* at absolute virtual *time* (must be >= now)."""
        return self.schedule(time - self._now, fn, label)

    def schedule_periodic(
        self,
        interval: float,
        fn: Callable[[], None],
        *,
        first_delay: Optional[float] = None,
        jitter: float = 0.0,
        rng=None,
        label: Optional[str] = None,
    ) -> "PeriodicTask":
        """Run *fn* every *interval* seconds until the task is stopped."""
        if interval <= 0:
            raise SimulationError("interval must be positive")
        task = PeriodicTask(self, interval, fn, jitter=jitter, rng=rng, label=label)
        task.start(first_delay if first_delay is not None else interval)
        return task

    # -- merged wheel/heap access -------------------------------------------------
    def _peek(self) -> Optional[Event]:
        """Next event in global ``(time, seq)`` order without removing it."""
        heap = self._queue
        hev = heap[0] if heap else None
        wheel = self._wheel
        wev = wheel.peek() if wheel is not None else None
        if wev is None:
            return hev
        if hev is None or wev < hev:
            return wev
        return hev

    def _pop(self, ev: Event) -> None:
        """Remove *ev*, the event just returned by :meth:`_peek`."""
        if ev._in_heap:
            heapq.heappop(self._queue)
            if ev.cancelled:
                self._heap_cancelled -= 1
        else:
            self._wheel.pop()

    def _note_heap_cancel(self) -> None:
        """Count a heap tombstone; compact once they dominate the heap.

        Cancelled events stay in place until popped; under churn-heavy
        drills (mass cancellations) they would otherwise inflate memory
        and pop cost indefinitely. When more than half the heap is dead
        and the heap is non-trivial, rebuild it without tombstones —
        heapify is O(n), amortized O(1) per cancellation.
        """
        self._heap_cancelled += 1
        n = len(self._queue)
        if n >= self._COMPACT_MIN and self._heap_cancelled * 2 > n:
            self._queue = [ev for ev in self._queue if not ev.cancelled]
            heapq.heapify(self._queue)
            self._heap_cancelled = 0

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains, *until*, or *max_events*.

        Returns the number of events processed by this call. The clock is
        advanced to *until* when given, even if the queue drains earlier.
        """
        if self.profiler is not None:
            return self._run_profiled(until, max_events)
        processed = 0
        while True:
            ev = self._peek()
            if ev is None:
                break
            if until is not None and ev.time > until:
                break
            self._pop(ev)
            if ev.cancelled:
                continue
            if max_events is not None and processed >= max_events:
                # Put the not-yet-due event back; the wheel has no
                # re-insert, so the heap absorbs it (ordering unaffected).
                ev._in_heap = True
                heapq.heappush(self._queue, ev)
                break
            self._now = ev.time
            ev.fired = True
            self._pending -= 1
            ev.fn()
            processed += 1
            self._processed += 1
        if until is not None and self._now < until:
            self._now = until
        return processed

    def _run_profiled(
        self, until: Optional[float], max_events: Optional[int]
    ) -> int:
        """The :meth:`run` loop under a ``sim.dispatch`` frame.

        Every handler invocation opens a child frame named after its
        event's schedule-site label, so the dispatch loop's wall time
        decomposes by event kind and plane in the call-path tree.
        """
        prof = self.profiler
        processed = 0
        prof.enter("sim.dispatch")
        try:
            while True:
                ev = self._peek()
                if ev is None:
                    break
                if until is not None and ev.time > until:
                    break
                self._pop(ev)
                if ev.cancelled:
                    continue
                if max_events is not None and processed >= max_events:
                    ev._in_heap = True
                    heapq.heappush(self._queue, ev)
                    break
                self._now = ev.time
                ev.fired = True
                self._pending -= 1
                prof.enter(ev.label or "sim.event")
                try:
                    ev.fn()
                finally:
                    prof.exit()
                processed += 1
                self._processed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            prof.exit()
            prof.count("sim.events", processed)
        return processed

    def step(self) -> bool:
        """Process a single event; returns False when the queue is empty."""
        prof = self.profiler
        if prof is not None:
            prof.enter("sim.dispatch")
        try:
            while True:
                ev = self._peek()
                if ev is None:
                    return False
                self._pop(ev)
                if ev.cancelled:
                    continue
                self._now = ev.time
                ev.fired = True
                self._pending -= 1
                if prof is None:
                    ev.fn()
                else:
                    prof.enter(ev.label or "sim.event")
                    try:
                        ev.fn()
                    finally:
                        prof.exit()
                        prof.count("sim.events")
                self._processed += 1
                return True
        finally:
            if prof is not None:
                prof.exit()


class PeriodicTask:
    """Repeating event created by :meth:`Simulator.schedule_periodic`."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        fn,
        *,
        jitter: float = 0.0,
        rng=None,
        label: Optional[str] = None,
    ):
        self._sim = sim
        self._interval = interval
        self._fn = fn
        self._jitter = jitter
        self._rng = rng
        self._label = label
        self._event: Optional[Event] = None
        self._stopped = False
        self.fired = 0

    def start(self, first_delay: float) -> None:
        self._event = self._sim.schedule(first_delay, self._tick, self._label)

    def _next_delay(self) -> float:
        if self._jitter and self._rng is not None:
            return self._interval * (1.0 + self._jitter * (2.0 * self._rng.random() - 1.0))
        return self._interval

    def _tick(self) -> None:
        if self._stopped:
            return
        self.fired += 1
        self._fn()
        if not self._stopped:
            self._event = self._sim.schedule(
                self._next_delay(), self._tick, self._label
            )

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self._event.cancel()

    @property
    def stopped(self) -> bool:
        return self._stopped
