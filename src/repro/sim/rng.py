"""Deterministic random-stream management.

Every stochastic component draws from its own named child stream of one
root seed, so changing the number of draws in one component (e.g. the
workload generator) does not perturb another (e.g. the delay space), and
repeated runs with the same seed are bit-identical.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class SeedSequenceFactory:
    """Derives independent, reproducible ``numpy`` generators by name."""

    def __init__(self, root_seed: int = 0):
        if root_seed < 0:
            raise ValueError("root_seed must be non-negative")
        self.root_seed = int(root_seed)
        self._cache: Dict[str, np.random.Generator] = {}

    def _derive(self, name: str) -> int:
        digest = hashlib.blake2b(
            f"{self.root_seed}:{name}".encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "little")

    def generator(self, name: str) -> np.random.Generator:
        """The named child generator (created once, then shared)."""
        gen = self._cache.get(name)
        if gen is None:
            gen = np.random.default_rng(self._derive(name))
            self._cache[name] = gen
        return gen

    def fresh_generator(self, name: str) -> np.random.Generator:
        """A new generator for *name*, independent of the cached one."""
        return np.random.default_rng(self._derive(name))

    def spawn(self, name: str) -> "SeedSequenceFactory":
        """A child factory whose streams are disjoint from this one's."""
        return SeedSequenceFactory(self._derive(f"spawn:{name}"))
