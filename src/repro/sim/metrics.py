"""Traffic and latency accounting.

The evaluation's three metrics (Section V) are byte counts per message
category and query latencies:

* ``update`` — resource record / summary export and aggregation traffic,
* ``query`` — query forwarding traffic,
* ``maintenance`` — heartbeats and overlay summary replication traffic,
* ``result`` — record return traffic (prototype benchmark only).

:class:`MetricsCollector` keeps its historical global-totals API but is
now a facade over a per-``(server, category, phase)``
:class:`~repro.telemetry.metrics.MetricsRegistry`, so the same counters
that feed the category totals also attribute load to individual servers
and protocol phases (the paper's per-server bottleneck analysis).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..telemetry.metrics import MetricsRegistry

UPDATE = "update"
QUERY = "query"
MAINTENANCE = "maintenance"
RESULT = "result"

CATEGORIES = (UPDATE, QUERY, MAINTENANCE, RESULT)


class MetricsCollector:
    """Accumulates per-category message/byte counts and latency samples.

    The category-keyed views (:attr:`bytes_by_category`,
    :attr:`messages_by_category`) are computed **plain dicts** — reading
    a missing category can no longer materialise a spurious zero entry
    the way the old ``defaultdict`` fields did.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.latency_samples: List[float] = []

    def record_message(
        self,
        category: str,
        size_bytes: int,
        *,
        server: Optional[int] = None,
        phase: str = "",
    ) -> None:
        """Count one message; optionally attribute it to a *server* (the
        node bearing its load, normally the receiver) and a protocol
        *phase* (``"forward"``, ``"aggregate"``, ``"heartbeat"``, ...)."""
        if size_bytes < 0:
            raise ValueError(f"negative message size: {size_bytes}")
        self.registry.count_message(
            category, size_bytes, server=server, phase=phase
        )

    def record_messages(
        self,
        category: str,
        total_bytes: int,
        count: int,
        *,
        server: Optional[int] = None,
        phase: str = "",
    ) -> None:
        """Count *count* messages totalling *total_bytes* in one update.

        Equivalent to *count* :meth:`record_message` calls against the
        same ``(category, server, phase)`` key — the batched send path
        uses it to fold a whole destination group into two dict updates.
        """
        if total_bytes < 0:
            raise ValueError(f"negative message bytes: {total_bytes}")
        if count < 0:
            raise ValueError(f"negative message count: {count}")
        if count == 0:
            return
        self.registry.count_message(
            category, total_bytes, server=server, phase=phase, count=count
        )

    def uncount_message(
        self,
        category: str,
        size_bytes: int,
        *,
        server: Optional[int] = None,
        phase: str = "",
    ) -> None:
        """Roll back one recorded message (bytes that never hit the wire)."""
        self.registry.uncount_message(
            category, size_bytes, server=server, phase=phase
        )

    def record_latency(
        self, seconds: float, *, server: Optional[int] = None
    ) -> None:
        if seconds < 0:
            raise ValueError(f"negative latency: {seconds}")
        self.latency_samples.append(seconds)
        self.registry.observe("latency", seconds, server=server)

    # -- read-out -----------------------------------------------------------------
    @property
    def bytes_by_category(self) -> Dict[str, int]:
        """Plain-dict roll-up: category -> total bytes."""
        return self.registry.totals_by_category()[0]

    @property
    def messages_by_category(self) -> Dict[str, int]:
        """Plain-dict roll-up: category -> total messages."""
        return self.registry.totals_by_category()[1]

    def bytes(self, category: str) -> int:
        return self.registry.bytes_total(category)

    def messages(self, category: str) -> int:
        return self.registry.messages_total(category)

    def per_server(
        self,
        category: Optional[str] = None,
        phase: Optional[str] = None,
    ) -> Dict[int, Tuple[int, int]]:
        """``server -> (messages, bytes)`` for the attributed records."""
        return self.registry.per_server(category=category, phase=phase)

    @property
    def total_bytes(self) -> int:
        return self.registry.bytes_total()

    @property
    def total_messages(self) -> int:
        return self.registry.messages_total()

    def mean_latency(self) -> float:
        if not self.latency_samples:
            return 0.0
        return float(np.mean(self.latency_samples))

    def percentile_latency(self, pct: float) -> float:
        if not self.latency_samples:
            return 0.0
        return float(np.percentile(self.latency_samples, pct))

    def reset(self, categories: Optional[Iterable[str]] = None) -> None:
        """Zero all counters, or only the given *categories*."""
        self.registry.reset(categories)
        if categories is None:
            self.latency_samples.clear()

    def snapshot(self) -> Dict[str, int]:
        """Immutable copy of the byte counters for later diffing."""
        return self.registry.totals_by_category()[0]

    def summary(self) -> Dict[str, Dict[str, float]]:
        by_bytes, by_msgs = self.registry.totals_by_category()
        return {
            "bytes": by_bytes,
            "messages": by_msgs,
            "latency": {
                "count": len(self.latency_samples),
                "mean": self.mean_latency(),
                "p90": self.percentile_latency(90),
            },
        }
