"""Traffic and latency accounting.

The evaluation's three metrics (Section V) are byte counts per message
category and query latencies:

* ``update`` — resource record / summary export and aggregation traffic,
* ``query`` — query forwarding traffic,
* ``maintenance`` — heartbeats and overlay summary replication traffic,
* ``result`` — record return traffic (prototype benchmark only).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

UPDATE = "update"
QUERY = "query"
MAINTENANCE = "maintenance"
RESULT = "result"

CATEGORIES = (UPDATE, QUERY, MAINTENANCE, RESULT)


@dataclass
class MetricsCollector:
    """Accumulates per-category message/byte counts and latency samples."""

    bytes_by_category: Dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    messages_by_category: Dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    latency_samples: List[float] = field(default_factory=list)

    def record_message(self, category: str, size_bytes: int) -> None:
        if size_bytes < 0:
            raise ValueError(f"negative message size: {size_bytes}")
        self.bytes_by_category[category] += size_bytes
        self.messages_by_category[category] += 1

    def record_latency(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative latency: {seconds}")
        self.latency_samples.append(seconds)

    # -- read-out -----------------------------------------------------------------
    def bytes(self, category: str) -> int:
        return self.bytes_by_category.get(category, 0)

    def messages(self, category: str) -> int:
        return self.messages_by_category.get(category, 0)

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_category.values())

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_category.values())

    def mean_latency(self) -> float:
        if not self.latency_samples:
            return 0.0
        return float(np.mean(self.latency_samples))

    def percentile_latency(self, pct: float) -> float:
        if not self.latency_samples:
            return 0.0
        return float(np.percentile(self.latency_samples, pct))

    def reset(self, categories=None) -> None:
        """Zero all counters, or only the given *categories*."""
        if categories is None:
            self.bytes_by_category.clear()
            self.messages_by_category.clear()
            self.latency_samples.clear()
        else:
            for c in categories:
                self.bytes_by_category.pop(c, None)
                self.messages_by_category.pop(c, None)

    def snapshot(self) -> Dict[str, int]:
        """Immutable copy of the byte counters for later diffing."""
        return dict(self.bytes_by_category)

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {
            "bytes": dict(self.bytes_by_category),
            "messages": dict(self.messages_by_category),
            "latency": {
                "count": len(self.latency_samples),
                "mean": self.mean_latency(),
                "p90": self.percentile_latency(90),
            },
        }
