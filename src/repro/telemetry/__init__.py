"""Unified telemetry: structured spans, per-server metrics, exporters.

The telemetry layer mirrors how the paper evaluates ROADS (Section V):
per-server load attribution, per-category byte counts, and per-phase
latency distributions. It has three cooperating pieces:

* :class:`Telemetry` — an event bus plus a span API. ``tel.span("query.
  forward", server=7)`` opens a context manager stamped with sim-clock
  times, parent/child span ids and a tag dict; closed spans and point
  events land in a bounded ring buffer (:class:`EventBus`).
* :class:`MetricsRegistry` — counters, byte gauges and streaming
  percentile histograms keyed by ``(server, category, phase)``. The
  global :class:`~repro.sim.metrics.MetricsCollector` is now a facade
  over one of these.
* exporters — JSON-Lines event dumps, Prometheus-style text snapshots,
  and Chrome ``trace_event`` JSON loadable in Perfetto /
  ``chrome://tracing`` (:mod:`repro.telemetry.export`).
* causal tracing — :class:`TraceContext` coordinates propagated on
  every message, :func:`assemble_traces` span trees and
  :func:`critical_path` latency attribution
  (:mod:`repro.telemetry.tracing`).
* health probes — :class:`HealthProbe` periodic samplers feeding
  SLO-style :class:`HealthReport` verdicts
  (:mod:`repro.telemetry.probes`).
* time series — :class:`SeriesSampler` periodic gauge snapshots into
  bounded downsampling :class:`RingSeries` rings
  (:mod:`repro.telemetry.series`).
* flight recorder — :class:`FlightRecorder` per-server event rings that
  freeze SLO breaches into :class:`PostmortemBundle` evidence windows
  (:mod:`repro.telemetry.recorder`).
* profiling — :class:`CallPathProfiler` hierarchical dual-clock
  hot-path attribution with collapsed-stack / speedscope exporters and
  hotspot diffing (:mod:`repro.telemetry.profiling`).

When no telemetry is attached (the default), instrumented code paths
skip all recording; :data:`NULL_TELEMETRY` is a shared no-op recorder
for call sites that prefer unconditional calls.
"""

from .events import EventBus, TelemetryEvent, TraceEvent
from .histogram import StreamingHistogram
from .metrics import MetricKey, MetricsRegistry
from .core import NULL_TELEMETRY, NullTelemetry, Span, Telemetry
from .export import (
    chrome_trace,
    prometheus_text,
    read_jsonl,
    read_series_jsonl,
    series_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
    write_series_jsonl,
)
from .profiling import (
    CallPathProfiler,
    PROFILE_SCHEMA,
    census_fingerprint,
    collapsed_stacks,
    diff_documents,
    flatten_document,
    format_top,
    format_tree,
    hotspot_shares,
    parse_collapsed,
    parse_speedscope,
    speedscope_document,
    top_frames,
)
from .probes import (
    HealthCheck,
    HealthProbe,
    HealthReport,
    HealthSLO,
    HealthSample,
    judge_sample,
)
from .quality import DivergenceAttribution, QualityPlane, QualityReport
from .recorder import FlightRecorder, PostmortemBundle
from .report import per_server_load_rows, root_load_share
from .series import (
    RingSeries,
    RollupPoint,
    SeriesConfig,
    SeriesSampler,
    sparkline,
)
from .tracing import (
    CriticalPath,
    PATH_CATEGORIES,
    SpanNode,
    TraceContext,
    TraceTree,
    assemble_traces,
    critical_path,
    diff_critical_paths,
    path_category,
)

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "Span",
    "EventBus",
    "TelemetryEvent",
    "TraceEvent",
    "StreamingHistogram",
    "MetricKey",
    "MetricsRegistry",
    "chrome_trace",
    "prometheus_text",
    "read_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
    "per_server_load_rows",
    "root_load_share",
    "TraceContext",
    "TraceTree",
    "SpanNode",
    "CriticalPath",
    "PATH_CATEGORIES",
    "assemble_traces",
    "critical_path",
    "diff_critical_paths",
    "path_category",
    "HealthProbe",
    "HealthSample",
    "HealthSLO",
    "HealthCheck",
    "HealthReport",
    "judge_sample",
    "RingSeries",
    "RollupPoint",
    "SeriesConfig",
    "SeriesSampler",
    "sparkline",
    "series_jsonl",
    "read_series_jsonl",
    "write_series_jsonl",
    "FlightRecorder",
    "PostmortemBundle",
    "QualityPlane",
    "QualityReport",
    "DivergenceAttribution",
    "CallPathProfiler",
    "PROFILE_SCHEMA",
    "census_fingerprint",
    "collapsed_stacks",
    "diff_documents",
    "flatten_document",
    "format_top",
    "format_tree",
    "hotspot_shares",
    "parse_collapsed",
    "parse_speedscope",
    "speedscope_document",
    "top_frames",
]
