"""Federation health probes: continuous sampling and SLO-style reports.

A :class:`HealthProbe` rides the simulator on a fixed sim-time cadence
and snapshots the signals that tell an operator whether the federation
is healthy *right now*: service-queue depths, shed/lost/dropped message
counts, the dispatcher's pending-event backlog, per-server summary
staleness (from :meth:`UpdatePlane.staleness_snapshot`) and the
replication-coverage fraction (how much of the overlay's expected
replica set each server actually holds). Sampling is passive — no
messages are sent, no randomness is consumed — so enabling a probe
never changes simulation outcomes.

:meth:`HealthProbe.report` folds the sampled series into a
:class:`HealthReport`: one :class:`HealthCheck` per SLO dimension with
the observed value, the threshold it was judged against, and a verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: probe sample event name on the telemetry bus
PROBE_EVENT = "probe.sample"


@dataclass(frozen=True)
class HealthSample:
    """One probe tick's snapshot of the federation."""

    t: float
    #: messages currently queued or in service across all service queues
    queue_depth_total: int
    #: deepest single service queue at this instant
    queue_depth_max: int
    #: cumulative network counters at this instant
    sent: int
    delivered: int
    lost: int
    dropped: int
    shed: int
    #: dispatcher events not yet run (in-flight messages + timers)
    pending: int
    #: soft-state summary entries held across the federation
    summary_entries: int
    #: mean/max age of held summaries, seconds
    summary_age_mean: float
    summary_age_max: float
    #: fraction of held summaries older than the staleness threshold
    stale_fraction: float
    #: fraction of expected overlay replicas actually held (1.0 = full)
    coverage: float
    #: shadow-oracle answer quality (1.0 when no quality plane is armed
    #: or nothing has been audited yet)
    precision: float = 1.0
    recall: float = 1.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "t": self.t,
            "queue_depth_total": float(self.queue_depth_total),
            "queue_depth_max": float(self.queue_depth_max),
            "sent": float(self.sent),
            "delivered": float(self.delivered),
            "lost": float(self.lost),
            "dropped": float(self.dropped),
            "shed": float(self.shed),
            "pending": float(self.pending),
            "summary_entries": float(self.summary_entries),
            "summary_age_mean": self.summary_age_mean,
            "summary_age_max": self.summary_age_max,
            "stale_fraction": self.stale_fraction,
            "coverage": self.coverage,
            "precision": self.precision,
            "recall": self.recall,
        }


@dataclass(frozen=True)
class HealthSLO:
    """Thresholds a :class:`HealthReport` judges the sampled series by."""

    #: highest acceptable fraction of stale summary entries (any sample)
    max_stale_fraction: float = 0.10
    #: lowest acceptable replication-coverage fraction (any sample)
    min_coverage: float = 0.99
    #: highest acceptable shed/sent ratio over the whole window
    max_shed_fraction: float = 0.05
    #: highest acceptable lost/sent ratio over the whole window
    max_loss_fraction: float = 0.10
    #: deepest acceptable single service queue (None = don't judge)
    max_queue_depth: Optional[int] = None
    #: lowest acceptable shadow-oracle precision/recall (None = don't
    #: judge; only meaningful when the system has a quality plane)
    min_precision: Optional[float] = None
    min_recall: Optional[float] = None


@dataclass(frozen=True)
class HealthCheck:
    """One SLO dimension's verdict."""

    name: str
    ok: bool
    value: float
    threshold: float
    detail: str = ""

    def format(self) -> str:
        mark = "ok " if self.ok else "FAIL"
        out = (
            f"[{mark}] {self.name:<14} value={self.value:.4g} "
            f"threshold={self.threshold:.4g}"
        )
        return out + (f"  ({self.detail})" if self.detail else "")


@dataclass
class HealthReport:
    """SLO evaluation of a probe's sampled window."""

    samples: int
    window_start: float
    window_end: float
    checks: List[HealthCheck] = field(default_factory=list)
    last: Optional[HealthSample] = None

    @property
    def healthy(self) -> bool:
        return all(c.ok for c in self.checks)

    def to_dict(self) -> Dict[str, object]:
        return {
            "healthy": self.healthy,
            "samples": self.samples,
            "window": [self.window_start, self.window_end],
            "checks": [
                {
                    "name": c.name,
                    "ok": c.ok,
                    "value": c.value,
                    "threshold": c.threshold,
                    "detail": c.detail,
                }
                for c in self.checks
            ],
            "last_sample": self.last.to_dict() if self.last else None,
        }

    def format(self) -> str:
        verdict = "HEALTHY" if self.healthy else "UNHEALTHY"
        lines = [
            f"federation {verdict}: {self.samples} samples over "
            f"[{self.window_start:.2f}s, {self.window_end:.2f}s]"
        ]
        lines.extend(c.format() for c in self.checks)
        if self.last is not None:
            s = self.last
            lines.append(
                f"last sample @ {s.t:.2f}s: queue depth {s.queue_depth_total}"
                f" (max {s.queue_depth_max}), pending {s.pending}, "
                f"sent {s.sent} / delivered {s.delivered} / lost {s.lost}"
                f" / shed {s.shed}, summaries {s.summary_entries} "
                f"(stale {s.stale_fraction:.1%}), coverage {s.coverage:.1%}"
            )
        return "\n".join(lines)


def judge_sample(
    sample: HealthSample, slo: HealthSLO
) -> List[HealthCheck]:
    """Judge one *instantaneous* sample against *slo*.

    Unlike :meth:`HealthProbe.report` — which folds the worst value seen
    across the whole sampled window and therefore never "recovers" — this
    judges a single snapshot, which is what breach-transition detection
    needs: a check can go ok → fail → ok again as the run unfolds.
    """
    sent = max(1, sample.sent)
    checks = [
        HealthCheck(
            name="staleness",
            ok=sample.stale_fraction <= slo.max_stale_fraction,
            value=sample.stale_fraction,
            threshold=slo.max_stale_fraction,
            detail=f"stale_fraction at t={sample.t:.2f}s",
        ),
        HealthCheck(
            name="coverage",
            ok=sample.coverage >= slo.min_coverage,
            value=sample.coverage,
            threshold=slo.min_coverage,
            detail=f"replication coverage at t={sample.t:.2f}s",
        ),
        HealthCheck(
            name="shedding",
            ok=sample.shed / sent <= slo.max_shed_fraction,
            value=sample.shed / sent,
            threshold=slo.max_shed_fraction,
            detail=f"{sample.shed} shed of {sample.sent} sent",
        ),
        HealthCheck(
            name="loss",
            ok=sample.lost / sent <= slo.max_loss_fraction,
            value=sample.lost / sent,
            threshold=slo.max_loss_fraction,
            detail=f"{sample.lost} lost of {sample.sent} sent",
        ),
    ]
    if slo.max_queue_depth is not None:
        checks.append(
            HealthCheck(
                name="queue_depth",
                ok=sample.queue_depth_max <= slo.max_queue_depth,
                value=float(sample.queue_depth_max),
                threshold=float(slo.max_queue_depth),
                detail=f"deepest single service queue at t={sample.t:.2f}s",
            )
        )
    if slo.min_precision is not None:
        checks.append(
            HealthCheck(
                name="precision",
                ok=sample.precision >= slo.min_precision,
                value=sample.precision,
                threshold=slo.min_precision,
                detail=f"oracle precision at t={sample.t:.2f}s",
            )
        )
    if slo.min_recall is not None:
        checks.append(
            HealthCheck(
                name="recall",
                ok=sample.recall >= slo.min_recall,
                value=sample.recall,
                threshold=slo.min_recall,
                detail=f"oracle recall at t={sample.t:.2f}s",
            )
        )
    return checks


class HealthProbe:
    """Periodic health sampler bound to one :class:`RoadsSystem`.

    Parameters
    ----------
    system:
        The federation to watch (its simulator drives the cadence).
    interval:
        Sim-seconds between samples.
    stale_after:
        Staleness threshold forwarded to
        :meth:`UpdatePlane.staleness_snapshot` (None = the plane's
        default of 1.5 update intervals).
    slo:
        When set, every sample is additionally judged instantaneously
        (:func:`judge_sample`); a check transitioning ok → fail appends
        to :attr:`breaches` and fires ``on_breach`` exactly once per
        transition (it re-arms only after the check recovers).
    on_breach:
        ``fn(check, sample)`` breach-transition hook — the flight
        recorder's :meth:`~repro.telemetry.recorder.FlightRecorder.bind`
        installs its postmortem trigger here.
    """

    def __init__(
        self,
        system,
        *,
        interval: float = 1.0,
        stale_after: Optional[float] = None,
        slo: Optional[HealthSLO] = None,
        on_breach: Optional[
            Callable[[HealthCheck, HealthSample], None]
        ] = None,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.system = system
        self.interval = interval
        self.stale_after = stale_after
        self.slo = slo
        self.on_breach = on_breach
        self.samples: List[HealthSample] = []
        #: checks captured at each ok → fail transition, in order
        self.breaches: List[HealthCheck] = []
        self._check_ok: Dict[str, bool] = {}
        self._observing = False
        self._task = None

    # -- cadence ------------------------------------------------------------------
    def start(self) -> "HealthProbe":
        """Begin sampling every ``interval`` sim-seconds (jitter-free)."""
        if self._task is None:
            self._task = self.system.sim.schedule_periodic(
                self.interval, self.sample, first_delay=self.interval,
                label="telemetry.probe",
            )
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    # -- one snapshot --------------------------------------------------------------
    def _coverage(self) -> float:
        """Held / expected overlay replicas, over all alive servers."""
        from ..overlay.replication import replication_sources

        expected = 0
        held = 0
        for server in self.system.hierarchy:
            if not server.alive:
                continue
            sources = [
                s for s in replication_sources(server) if s.alive
            ]
            expected += len(sources)
            held += sum(
                1
                for s in sources
                if s.server_id in server.replicated_summaries
            )
        if expected == 0:
            return 1.0
        return held / expected

    def sample(self) -> HealthSample:
        """Take (and record) one snapshot at the current sim time."""
        system = self.system
        net = system.network
        counters = net.counters()
        depth_total = 0
        depth_max = 0
        for server in system.hierarchy:
            depth = int(net.service_stats(server.server_id)["depth"])
            depth_total += depth
            if depth > depth_max:
                depth_max = depth
        if system.update_plane is not None:
            stale = system.update_plane.staleness_snapshot(
                stale_after=self.stale_after
            )
        else:
            stale = {}
        quality = getattr(system, "quality", None)
        sample = HealthSample(
            t=system.sim.now,
            queue_depth_total=depth_total,
            queue_depth_max=depth_max,
            sent=counters["sent"],
            delivered=counters["delivered"],
            lost=counters["lost"],
            dropped=counters["dropped"],
            shed=counters["shed"],
            pending=system.sim.pending,
            summary_entries=int(stale.get("entries", 0.0)),
            summary_age_mean=stale.get("age_mean", 0.0),
            summary_age_max=stale.get("age_max", 0.0),
            stale_fraction=stale.get("stale_fraction", 0.0),
            coverage=self._coverage(),
            precision=(
                quality.precision if quality is not None else 1.0
            ),
            recall=quality.recall if quality is not None else 1.0,
        )
        self.samples.append(sample)
        tel = system.telemetry
        if tel is not None:
            tel.event(
                PROBE_EVENT,
                queue_depth=depth_total,
                queue_depth_max=depth_max,
                pending=sample.pending,
                shed=sample.shed,
                lost=sample.lost,
                stale_fraction=sample.stale_fraction,
                coverage=sample.coverage,
            )
        if self.slo is not None:
            self.observe(sample)
        return sample

    def observe(self, sample: HealthSample) -> List[HealthCheck]:
        """Judge *sample* against the probe's SLO; fire breach hooks.

        Each named check fires ``on_breach`` only on its ok → fail
        transition — a check that keeps failing stays silent until it
        recovers and fails again, so one incident yields one postmortem.
        Returns the checks that transitioned to failing this call.
        """
        if self.slo is None or self._observing:
            # A breach handler may take a fresh sample (e.g. to attach a
            # report); that nested sample must not re-enter SLO judging
            # and clobber the transition state mid-incident.
            return []
        self._observing = True
        try:
            fired: List[HealthCheck] = []
            for check in judge_sample(sample, self.slo):
                was_ok = self._check_ok.get(check.name, True)
                self._check_ok[check.name] = check.ok
                if was_ok and not check.ok:
                    fired.append(check)
                    self.breaches.append(check)
                    if self.on_breach is not None:
                        self.on_breach(check, sample)
            return fired
        finally:
            self._observing = False

    # -- SLO evaluation --------------------------------------------------------------
    def report(self, slo: HealthSLO = HealthSLO()) -> HealthReport:
        """Judge the sampled window against *slo*."""
        if not self.samples:
            self.sample()
        samples = self.samples
        last = samples[-1]
        sent = max(1, last.sent)
        worst_stale = max(s.stale_fraction for s in samples)
        worst_coverage = min(s.coverage for s in samples)
        worst_depth = max(s.queue_depth_max for s in samples)
        checks = [
            HealthCheck(
                name="staleness",
                ok=worst_stale <= slo.max_stale_fraction,
                value=worst_stale,
                threshold=slo.max_stale_fraction,
                detail="worst stale_fraction across samples",
            ),
            HealthCheck(
                name="coverage",
                ok=worst_coverage >= slo.min_coverage,
                value=worst_coverage,
                threshold=slo.min_coverage,
                detail="worst replication coverage across samples",
            ),
            HealthCheck(
                name="shedding",
                ok=last.shed / sent <= slo.max_shed_fraction,
                value=last.shed / sent,
                threshold=slo.max_shed_fraction,
                detail=f"{last.shed} shed of {last.sent} sent",
            ),
            HealthCheck(
                name="loss",
                ok=last.lost / sent <= slo.max_loss_fraction,
                value=last.lost / sent,
                threshold=slo.max_loss_fraction,
                detail=f"{last.lost} lost of {last.sent} sent",
            ),
        ]
        if slo.max_queue_depth is not None:
            checks.append(
                HealthCheck(
                    name="queue_depth",
                    ok=worst_depth <= slo.max_queue_depth,
                    value=float(worst_depth),
                    threshold=float(slo.max_queue_depth),
                    detail="deepest single service queue across samples",
                )
            )
        if slo.min_precision is not None:
            worst_precision = min(s.precision for s in samples)
            checks.append(
                HealthCheck(
                    name="precision",
                    ok=worst_precision >= slo.min_precision,
                    value=worst_precision,
                    threshold=slo.min_precision,
                    detail="worst oracle precision across samples",
                )
            )
        if slo.min_recall is not None:
            worst_recall = min(s.recall for s in samples)
            checks.append(
                HealthCheck(
                    name="recall",
                    ok=worst_recall >= slo.min_recall,
                    value=worst_recall,
                    threshold=slo.min_recall,
                    detail="worst oracle recall across samples",
                )
            )
        return HealthReport(
            samples=len(samples),
            window_start=samples[0].t,
            window_end=last.t,
            checks=checks,
            last=last,
        )
