"""The time-series metrics plane: sim-clock sampling into bounded rings.

Spans and the end-of-run metrics registry answer "what happened over the
whole run"; a :class:`HealthProbe` answers "is the federation healthy
now". Neither gives a *time-resolved* view — how queue depth, staleness
or shed rate evolved as a run unfolded — which is exactly the signal
replica-aware planning and fault drills consume. :class:`SeriesSampler`
provides it: a sim-clock-driven periodic sampler that snapshots
per-server and per-plane gauges into bounded downsampling ring buffers.

Each gauge lives in a :class:`RingSeries`: a raw window of the most
recent ``(t, value)`` points plus coarser :class:`RollupPoint` buckets
(count/min/max/mean/p95 over ``rollup_every`` consecutive raw points),
so a long run keeps a full-resolution recent view and a downsampled
long-horizon one in O(raw_window + rollup_window) memory per gauge.

**Zero perturbation.** Sampling only *reads* state: network counters,
service-queue depths, the dispatcher's pending count, and the update
plane's staleness snapshot. No messages are sent, no simulation
randomness is consumed, and telemetry ids are untouched, so a seeded
run with sampling enabled produces byte-identical query outcomes and
latencies to the same run without it — the same determinism tripwire
the tracing plane holds, asserted by the ``series_overhead`` bench
scenario.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

#: spark characters, lowest to highest
_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Iterable[float], *, width: int = 60) -> str:
    """Render *values* as a unicode sparkline (empty string when empty).

    When there are more values than *width*, consecutive values are
    averaged into ``width`` buckets so the line always fits.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if len(vals) > width:
        per = len(vals) / width
        folded = []
        for i in range(width):
            chunk = vals[int(i * per): max(int((i + 1) * per), int(i * per) + 1)]
            folded.append(sum(chunk) / len(chunk))
        vals = folded
    lo = min(vals)
    hi = max(vals)
    span = hi - lo
    if span <= 0:
        return _SPARK_CHARS[0] * len(vals)
    steps = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[int(round((v - lo) / span * steps))] for v in vals
    )


@dataclass(frozen=True)
class RollupPoint:
    """One downsampled bucket of ``count`` consecutive raw samples."""

    t_start: float
    t_end: float
    count: int
    vmin: float
    vmax: float
    mean: float
    p95: float

    def to_dict(self) -> Dict[str, float]:
        return {
            "t_start": self.t_start,
            "t_end": self.t_end,
            "count": float(self.count),
            "min": self.vmin,
            "max": self.vmax,
            "mean": self.mean,
            "p95": self.p95,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, float]) -> "RollupPoint":
        return cls(
            t_start=float(d["t_start"]),
            t_end=float(d["t_end"]),
            count=int(d["count"]),
            vmin=float(d["min"]),
            vmax=float(d["max"]),
            mean=float(d["mean"]),
            p95=float(d["p95"]),
        )


def _fold(points: List[Tuple[float, float]]) -> RollupPoint:
    values = sorted(v for _, v in points)
    n = len(values)
    # Nearest-rank p95 over the bucket's raw values.
    rank = min(n - 1, max(0, int(round(0.95 * (n - 1)))))
    return RollupPoint(
        t_start=points[0][0],
        t_end=points[-1][0],
        count=n,
        vmin=values[0],
        vmax=values[-1],
        mean=sum(values) / n,
        p95=values[rank],
    )


class RingSeries:
    """Bounded downsampling ring buffer for one gauge.

    Keeps the most recent ``raw_window`` raw ``(t, value)`` points; every
    ``rollup_every`` appended points are folded into one
    :class:`RollupPoint`, of which the most recent ``rollup_window`` are
    kept. Appends are O(1) amortised; memory is strictly bounded.
    """

    __slots__ = ("name", "server", "raw", "rollups", "_chunk",
                 "rollup_every", "appended")

    def __init__(
        self,
        name: str,
        *,
        server: Optional[int] = None,
        raw_window: int = 512,
        rollup_every: int = 16,
        rollup_window: int = 256,
    ):
        if raw_window < 1 or rollup_every < 1 or rollup_window < 1:
            raise ValueError("ring windows must be >= 1")
        self.name = name
        self.server = server
        self.raw: deque = deque(maxlen=raw_window)
        self.rollups: deque = deque(maxlen=rollup_window)
        self._chunk: List[Tuple[float, float]] = []
        self.rollup_every = rollup_every
        #: total points ever appended (evicted points still count)
        self.appended = 0

    def append(self, t: float, value: float) -> None:
        point = (float(t), float(value))
        self.raw.append(point)
        self.appended += 1
        self._chunk.append(point)
        if len(self._chunk) >= self.rollup_every:
            self.rollups.append(_fold(self._chunk))
            self._chunk = []

    @property
    def last(self) -> Optional[Tuple[float, float]]:
        return self.raw[-1] if self.raw else None

    def points(self) -> List[Tuple[float, float]]:
        """Snapshot of the retained raw points, oldest first."""
        return list(self.raw)

    def values(self) -> List[float]:
        return [v for _, v in self.raw]

    def window(self, t_start: float, t_end: float) -> List[Tuple[float, float]]:
        """Raw points with ``t_start <= t <= t_end``, oldest first."""
        return [(t, v) for t, v in self.raw if t_start <= t <= t_end]

    def rollups_in(self, t_start: float, t_end: float) -> List[RollupPoint]:
        """Rollup buckets overlapping ``[t_start, t_end]``."""
        return [
            r for r in self.rollups
            if r.t_end >= t_start and r.t_start <= t_end
        ]

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "server": self.server,
            "appended": self.appended,
            "raw": [[t, v] for t, v in self.raw],
            "rollups": [r.to_dict() for r in self.rollups],
        }

    def __len__(self) -> int:
        return len(self.raw)


@dataclass(frozen=True)
class SeriesConfig:
    """Sampling cadence and ring bounds for a :class:`SeriesSampler`."""

    #: sim-seconds between samples
    interval: float = 0.25
    #: raw points retained per gauge
    raw_window: int = 512
    #: raw points folded into one rollup bucket
    rollup_every: int = 16
    #: rollup buckets retained per gauge
    rollup_window: int = 256
    #: staleness threshold forwarded to the update plane (None = default)
    stale_after: Optional[float] = None
    #: also keep per-server service-queue series (depth/waiting/shed)
    per_server: bool = True

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")


class SeriesSampler:
    """Periodic gauge sampler bound to one :class:`RoadsSystem`.

    On each tick the sampler reads, without side effects:

    * network counters (sent/delivered/lost/dropped/shed),
    * the dispatcher's pending-event backlog and in-flight updates,
    * per-category byte totals (query and update traffic so far),
    * the update plane's staleness snapshot (entries, ages, fraction),
    * per-server service-queue gauges (depth, waiting-room occupancy,
      cumulative shed) when ``per_server`` is on,

    and appends one point per gauge to its :class:`RingSeries`.
    Federation-wide gauges key on ``server=None``.
    """

    def __init__(self, system, config: SeriesConfig = SeriesConfig()):
        self.system = system
        self.config = config
        self._series: Dict[Tuple[str, Optional[int]], RingSeries] = {}
        self._task = None
        self.samples = 0

    # -- cadence -------------------------------------------------------------------
    def start(self) -> "SeriesSampler":
        """Begin sampling every ``config.interval`` sim-seconds."""
        if self._task is None:
            self._task = self.system.sim.schedule_periodic(
                self.config.interval, self.sample,
                first_delay=self.config.interval,
                label="telemetry.sample",
            )
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    # -- access --------------------------------------------------------------------
    def series(
        self, name: str, server: Optional[int] = None
    ) -> Optional[RingSeries]:
        return self._series.get((name, server))

    def names(self) -> List[str]:
        return sorted({name for name, _ in self._series})

    def all_series(self) -> List[RingSeries]:
        """Every ring, federation-wide gauges first, then per-server."""
        return [
            self._series[k]
            for k in sorted(
                self._series,
                key=lambda k: (k[1] is not None, k[1] if k[1] is not None else -1, k[0]),
            )
        ]

    def _ring(self, name: str, server: Optional[int] = None) -> RingSeries:
        key = (name, server)
        ring = self._series.get(key)
        if ring is None:
            cfg = self.config
            ring = self._series[key] = RingSeries(
                name,
                server=server,
                raw_window=cfg.raw_window,
                rollup_every=cfg.rollup_every,
                rollup_window=cfg.rollup_window,
            )
        return ring

    # -- one tick ------------------------------------------------------------------
    def sample(self) -> None:
        """Take one snapshot of every gauge at the current sim time."""
        system = self.system
        now = system.sim.now
        net = system.network
        counters = net.counters()
        record = self._ring
        for key, value in counters.items():
            record(f"net.{key}").append(now, value)
        # Dispatch mix: cumulative handler invocations per message kind,
        # read from the transport's always-on per-kind counters — a
        # ``repro watch`` sparkline per kind, no profiler required.
        for kind in sorted(net.delivered_by_kind):
            record(f"dispatch.{kind}").append(
                now, net.delivered_by_kind[kind]
            )
        record("sim.pending").append(now, system.sim.pending)
        registry = system.metrics.registry
        from ..sim.metrics import QUERY, UPDATE

        record("bytes.query").append(now, registry.bytes_total(QUERY))
        record("bytes.update").append(now, registry.bytes_total(UPDATE))
        plane = system.update_plane
        if plane is not None:
            record("update.inflight").append(now, plane.inflight)
            stale = plane.staleness_snapshot(
                stale_after=self.config.stale_after
            )
            record("summary.entries").append(now, stale["entries"])
            record("summary.age_mean").append(now, stale["age_mean"])
            record("summary.age_max").append(now, stale["age_max"])
            record("summary.stale_fraction").append(
                now, stale["stale_fraction"]
            )
        depth_total = 0.0
        waiting_total = 0.0
        for server in system.hierarchy:
            sid = server.server_id
            stats = net.service_stats(sid)
            depth_total += stats["depth"]
            waiting_total += stats["waiting"]
            if self.config.per_server:
                record("service.depth", sid).append(now, stats["depth"])
                record("service.waiting", sid).append(now, stats["waiting"])
                record("service.shed", sid).append(now, stats["shed"])
        record("service.depth_total").append(now, depth_total)
        record("service.waiting_total").append(now, waiting_total)
        quality = getattr(system, "quality", None)
        if quality is not None:
            record("quality.audits").append(now, quality.audits)
            record("quality.precision").append(now, quality.precision)
            record("quality.recall").append(now, quality.recall)
            record("quality.fp_rate").append(now, quality.fp_rate)
            record("quality.divergence_age").append(
                now, quality.divergence_age_mean
            )
            if self.config.per_server:
                for sid in sorted(quality.per_node):
                    counts = quality.per_node[sid]
                    record("quality.fp", sid).append(now, counts["fp"])
                    record("quality.fn", sid).append(now, counts["fn"])
        self.samples += 1

    # -- export --------------------------------------------------------------------
    def rows(
        self,
        *,
        t_start: float = float("-inf"),
        t_end: float = float("inf"),
        rollups: bool = True,
    ) -> List[Dict[str, object]]:
        """Flat JSONL-ready rows for every gauge within the time window.

        Raw points become ``{"kind": "raw", "metric", "server", "t",
        "value"}``; rollup buckets become ``{"kind": "rollup", ...}``
        with the bucket statistics inline — the time-series schema the
        bench observatory and ``repro watch --format jsonl`` share.
        """
        out: List[Dict[str, object]] = []
        for ring in self.all_series():
            for t, v in ring.window(t_start, t_end):
                out.append({
                    "kind": "raw",
                    "metric": ring.name,
                    "server": ring.server,
                    "t": t,
                    "value": v,
                })
            if rollups:
                for r in ring.rollups_in(t_start, t_end):
                    out.append({
                        "kind": "rollup",
                        "metric": ring.name,
                        "server": ring.server,
                        **r.to_dict(),
                    })
        return out

    def window_dict(
        self, t_start: float, t_end: float
    ) -> List[Dict[str, object]]:
        """Per-gauge window snapshot for a postmortem bundle."""
        out: List[Dict[str, object]] = []
        for ring in self.all_series():
            points = ring.window(t_start, t_end)
            if not points and not ring.rollups_in(t_start, t_end):
                continue
            out.append({
                "name": ring.name,
                "server": ring.server,
                "raw": [[t, v] for t, v in points],
                "rollups": [
                    r.to_dict() for r in ring.rollups_in(t_start, t_end)
                ],
            })
        return out

    def format(
        self,
        *,
        metrics: Optional[List[str]] = None,
        width: int = 60,
    ) -> str:
        """Sparkline dashboard of the federation-wide gauges."""
        lines: List[str] = []
        wanted = set(metrics) if metrics else None
        for ring in self.all_series():
            if ring.server is not None:
                continue
            if wanted is not None and ring.name not in wanted:
                continue
            vals = ring.values()
            if not vals:
                continue
            lines.append(
                f"{ring.name:<24} {sparkline(vals, width=width)}  "
                f"last={vals[-1]:.4g} min={min(vals):.4g} max={max(vals):.4g}"
            )
        return "\n".join(lines)
