"""Telemetry exporters: JSON-Lines, Prometheus text, Chrome trace_event.

* :func:`write_jsonl` / :func:`read_jsonl` — lossless event dump, one
  JSON object per line; round-trips :class:`TelemetryEvent` exactly.
* :func:`prometheus_text` — text-format metrics snapshot
  (``roads_bytes_total{category="query",server="3",phase="forward"} 42``)
  suitable for a Prometheus scrape or a plain diff in tests.
* :func:`chrome_trace` — the Chrome ``trace_event`` JSON Object Format:
  spans become complete (``"ph": "X"``) events and point events become
  instants (``"ph": "i"``), timestamps in microseconds, grouped by the
  ``server`` tag as the pid so Perfetto / ``chrome://tracing`` renders
  one track per server; overlapping spans within a server are fanned out
  to distinct ``tid`` lanes so none of them hide each other. Events that
  carry causal-trace tags additionally emit flow events (``"ph": "s"`` /
  ``"ph": "f"``) whenever parent and child live on different pids, so
  Perfetto draws the sender→receiver arrows of every traced hop.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Union

from .events import TelemetryEvent
from .metrics import MetricsRegistry

_PathLike = Union[str, "os.PathLike[str]"]  # noqa: F821 - doc only


# -- JSON-Lines ----------------------------------------------------------------
def to_jsonl(events: Iterable[TelemetryEvent]) -> str:
    return "\n".join(json.dumps(e.to_dict(), sort_keys=True) for e in events)


def write_jsonl(events: Iterable[TelemetryEvent], path) -> int:
    """Write one JSON object per event; returns the event count."""
    lines = [json.dumps(e.to_dict(), sort_keys=True) for e in events]
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)


def read_jsonl(path) -> List[TelemetryEvent]:
    out: List[TelemetryEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(TelemetryEvent.from_dict(json.loads(line)))
    return out


# -- time-series JSON-Lines ----------------------------------------------------
def series_jsonl(rows: Iterable[Dict[str, object]]) -> str:
    """Render time-series rows as JSONL (one object per line).

    Rows follow the schema produced by
    :meth:`repro.telemetry.series.SeriesSampler.rows`: raw points are
    ``{"kind": "raw", "metric": ..., "server": ..., "t": ..., "value":
    ...}`` and downsampled buckets are ``{"kind": "rollup", "metric":
    ..., "server": ..., "t_start": ..., "t_end": ..., "count": ...,
    "min": ..., "max": ..., "mean": ..., "p95": ...}`` — the schema the
    bench observatory and ``repro watch --format jsonl`` share.
    """
    return "\n".join(json.dumps(r, sort_keys=True) for r in rows)


def write_series_jsonl(rows: Iterable[Dict[str, object]], path) -> int:
    """Write time-series rows as JSONL; returns the row count."""
    lines = [json.dumps(r, sort_keys=True) for r in rows]
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)


def read_series_jsonl(path) -> List[Dict[str, object]]:
    out: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


# -- Prometheus text format ----------------------------------------------------
def _escape_label_value(value: str) -> str:
    # Text exposition format: backslash, double-quote and newline must be
    # escaped inside label values.
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_str(labels: Dict[str, str]) -> str:
    # Empty values are kept: `server=""` (registry-level totals) must stay
    # distinguishable from a series that has no server label at all.
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in labels.items()
    )
    return "{" + inner + "}" if inner else ""


def prometheus_text(
    registry: MetricsRegistry, prefix: str = "roads"
) -> str:
    """Render the registry as Prometheus text exposition format."""
    lines: List[str] = []
    rows = registry.rows()
    lines.append(f"# HELP {prefix}_messages_total Messages per (category, server, phase).")
    lines.append(f"# TYPE {prefix}_messages_total counter")
    for r in rows:
        labels = _label_str({
            "category": str(r["category"]),
            "server": "" if r["server"] is None else str(r["server"]),
            "phase": str(r["phase"]),
        })
        lines.append(f"{prefix}_messages_total{labels} {r['messages']}")
    lines.append(f"# HELP {prefix}_bytes_total Bytes per (category, server, phase).")
    lines.append(f"# TYPE {prefix}_bytes_total counter")
    for r in rows:
        labels = _label_str({
            "category": str(r["category"]),
            "server": "" if r["server"] is None else str(r["server"]),
            "phase": str(r["phase"]),
        })
        lines.append(f"{prefix}_bytes_total{labels} {r['bytes']}")
    hists = registry.snapshot()["histograms"]
    if hists:
        lines.append(f"# HELP {prefix}_observation Streaming histogram summaries.")
        lines.append(f"# TYPE {prefix}_observation summary")
        for h in hists:
            base = {
                "name": str(h["name"]),
                "server": "" if h["server"] is None else str(h["server"]),
                "phase": str(h["phase"]),
            }
            for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
                labels = _label_str({**base, "quantile": str(q)})
                lines.append(f"{prefix}_observation{labels} {h[key]:.9g}")
            labels = _label_str(base)
            lines.append(f"{prefix}_observation_count{labels} {h['count']}")
    return "\n".join(lines) + "\n"


def write_prometheus(registry: MetricsRegistry, path, prefix: str = "roads") -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(registry, prefix))


# -- Chrome trace_event format -------------------------------------------------
def _trace_pid(event: TelemetryEvent) -> int:
    server = event.tags.get("server")
    if server is None:
        server = event.tags.get("dst")
    try:
        return int(server)
    except (TypeError, ValueError):
        return 0


def _assign_lanes(
    spans: List[Dict[str, object]],
) -> None:
    """Give overlapping spans within one pid distinct ``tid`` lanes.

    Greedy interval colouring: spans sorted by start time (longest first
    on ties) take the lowest-numbered lane that is already free at their
    start. Non-overlapping spans share lane 0; concurrent spans fan out
    to higher lanes instead of overwriting each other.
    """
    order = sorted(
        range(len(spans)),
        key=lambda i: (spans[i]["ts"], -spans[i]["dur"]),
    )
    lane_free_at: List[float] = []
    for i in order:
        start = float(spans[i]["ts"])
        end = start + float(spans[i]["dur"])
        for lane, free_at in enumerate(lane_free_at):
            if free_at <= start:
                break
        else:
            lane = len(lane_free_at)
            lane_free_at.append(0.0)
        lane_free_at[lane] = end
        spans[i]["tid"] = lane


def _causal_flows(
    tagged: List[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Flow-event pairs for cross-pid causal edges.

    For every causally-tagged entry whose parent entry sits on a
    different pid, emit a flow start (``"ph": "s"``) anchored to the
    parent's lane and a flow finish (``"ph": "f"``, binding point
    ``"e"`` = enclosing slice) anchored to the child's, with the child's
    span id as the flow id. Perfetto then draws the sender→receiver
    arrow of the hop. Runs after lane assignment so the anchors carry
    their final ``tid``.
    """
    by_sid: Dict[int, Dict[str, object]] = {}
    for entry in tagged:
        sid = int(entry["args"]["span_id"])
        prev = by_sid.get(sid)
        # A span outranks an instant that carried the same context
        # (matching :func:`repro.telemetry.tracing.assemble_traces`).
        if prev is None or (prev["ph"] != "X" and entry["ph"] == "X"):
            by_sid[sid] = entry
    flows: List[Dict[str, object]] = []
    for entry in by_sid.values():
        parent = by_sid.get(int(entry["args"].get("parent_span_id", 0)))
        if parent is None or parent is entry or parent["pid"] == entry["pid"]:
            continue
        child_ts = float(entry["ts"])
        parent_end = float(parent["ts"]) + float(parent.get("dur", 0.0))
        fid = int(entry["args"]["span_id"])
        common = {"name": "causal", "cat": "causal", "id": fid}
        flows.append({
            **common, "ph": "s",
            "ts": min(parent_end, child_ts),
            "pid": parent["pid"], "tid": parent["tid"],
        })
        flows.append({
            **common, "ph": "f", "bp": "e",
            "ts": child_ts,
            "pid": entry["pid"], "tid": entry["tid"],
        })
    return flows


def chrome_trace(
    events: Sequence[TelemetryEvent],
    *,
    process_name: str = "roads",
) -> Dict[str, object]:
    """Convert bus events into a ``chrome://tracing``-loadable object."""
    trace_events: List[Dict[str, object]] = []
    spans_by_pid: Dict[int, List[Dict[str, object]]] = {}
    tagged: List[Dict[str, object]] = []
    pids = set()
    for e in events:
        pid = _trace_pid(e)
        pids.add(pid)
        ts_us = e.ts * 1e6
        args = {k: v for k, v in e.tags.items()}
        if e.kind == "span":
            entry = {
                "name": e.name,
                "cat": e.name.split(".")[0],
                "ph": "X",
                "ts": ts_us,
                "dur": e.dur * 1e6,
                "pid": pid,
                "tid": 0,
                "args": args,
            }
            trace_events.append(entry)
            spans_by_pid.setdefault(pid, []).append(entry)
        else:
            entry = {
                "name": e.name,
                "cat": e.name.split(".")[0],
                "ph": "i",
                "s": "p",  # process-scoped instant
                "ts": ts_us,
                "pid": pid,
                "tid": 0,
                "args": args,
            }
            trace_events.append(entry)
        if "trace_id" in args and "span_id" in args:
            tagged.append(entry)
    for spans in spans_by_pid.values():
        _assign_lanes(spans)
    trace_events.extend(_causal_flows(tagged))
    for pid in sorted(pids):
        trace_events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"{process_name} server {pid}"},
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    events: Sequence[TelemetryEvent],
    path,
    *,
    process_name: str = "roads",
) -> int:
    """Write Chrome trace JSON; returns the number of trace events."""
    doc = chrome_trace(events, process_name=process_name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])
