"""Causal distributed tracing: context propagation and span trees.

The event bus records *what* happened; this module records *why*. A
:class:`TraceContext` is a frozen (trace id, span id, parent span id,
baggage) tuple minted by :meth:`Telemetry.new_trace` and forked with
:meth:`Telemetry.fork` at every causal hop — the client's first contact,
the message's transit, the service-queue wait, the service slot, the
server's summary match, the redirect, the reject notice, the retry, and
the update plane's ``summary-full`` / ``summary-keepalive`` deliveries.
Instrumented code attaches ``ctx.tags()`` to the events it emits, so the
flat event stream carries explicit parent edges that survive export and
re-import.

:func:`assemble_traces` folds a stream of :class:`TelemetryEvent` back
into one :class:`TraceTree` per trace id; :func:`critical_path` walks
from a chosen leaf (by default the last ``query.arrive``) to the root
and attributes every second of the end-to-end latency to the hop that
spent it — **wire** (``net.transit``), **queue** (``service.wait``),
**service** (``service.serve``) or **processing** (everything else:
client think time, timeout waits, backoff). For a complete trace the
segment sum telescopes exactly to ``leaf end - root start``, which for a
search trace is the reported query latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .events import TelemetryEvent

#: critical-path categories, in reporting order
PATH_CATEGORIES = ("wire", "queue", "service", "processing")

#: span-name prefix -> critical-path category; anything unlisted is
#: client/server-side processing (timeout waits, backoff, think time)
_CATEGORY_BY_NAME = {
    "net.transit": "wire",
    "service.wait": "queue",
    "service.serve": "service",
}


def path_category(name: str) -> str:
    """The critical-path category a span name accounts under."""
    return _CATEGORY_BY_NAME.get(name, "processing")


@dataclass(frozen=True)
class TraceContext:
    """Immutable causal coordinates carried on a message or span.

    ``baggage`` is a sorted tuple of ``(key, value)`` pairs that rides
    along every fork — use it for trace-scoped labels (query id, scope
    index) that each hop should repeat into its tags.
    """

    trace_id: int
    span_id: int
    parent_span_id: int = 0
    baggage: Tuple[Tuple[str, object], ...] = ()

    def child(self, span_id: int, **baggage) -> "TraceContext":
        """Fork: same trace, new span parented to this one."""
        extra = tuple(sorted(baggage.items())) if baggage else ()
        return TraceContext(
            trace_id=self.trace_id,
            span_id=span_id,
            parent_span_id=self.span_id,
            baggage=self.baggage + extra,
        )

    def tags(self) -> Dict[str, object]:
        """Tag dict instrumented code attaches to emitted events."""
        out: Dict[str, object] = dict(self.baggage)
        out["trace_id"] = self.trace_id
        out["span_id"] = self.span_id
        out["parent_span_id"] = self.parent_span_id
        return out


@dataclass
class SpanNode:
    """One event in an assembled trace tree (span or instant)."""

    event: TelemetryEvent
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.event.name

    @property
    def start(self) -> float:
        return self.event.ts

    @property
    def end(self) -> float:
        return self.event.ts + self.event.dur

    @property
    def span_id(self) -> int:
        return int(self.event.tags["span_id"])

    @property
    def parent_span_id(self) -> int:
        return int(self.event.tags.get("parent_span_id", 0))

    @property
    def category(self) -> str:
        return path_category(self.event.name)


@dataclass
class TraceTree:
    """All causally-tagged events of one trace, linked by parent edges."""

    trace_id: int
    nodes: Dict[int, SpanNode] = field(default_factory=dict)
    #: nodes whose parent span never produced an event (the trace root
    #: plus any hop whose parent was lost to ring-buffer eviction)
    roots: List[SpanNode] = field(default_factory=list)

    @property
    def root(self) -> Optional[SpanNode]:
        """The earliest-starting root (the minted trace origin)."""
        if not self.roots:
            return None
        return min(self.roots, key=lambda n: (n.start, n.span_id))

    def __len__(self) -> int:
        return len(self.nodes)

    def find(self, name: str) -> List[SpanNode]:
        """All nodes with the given event name, in start order."""
        out = [n for n in self.nodes.values() if n.name == name]
        out.sort(key=lambda n: (n.start, n.span_id))
        return out

    def subtree(self, node: SpanNode) -> List[SpanNode]:
        """*node* and every descendant (pre-order)."""
        out: List[SpanNode] = []
        stack = [node]
        while stack:
            n = stack.pop()
            out.append(n)
            stack.extend(reversed(n.children))
        return out

    def ancestors(self, node: SpanNode) -> List[SpanNode]:
        """Chain from *node*'s parent up to its root, nearest first."""
        out: List[SpanNode] = []
        seen = {node.span_id}
        cur = self.nodes.get(node.parent_span_id)
        while cur is not None and cur.span_id not in seen:
            out.append(cur)
            seen.add(cur.span_id)
            cur = self.nodes.get(cur.parent_span_id)
        return out

    def format(self, *, max_nodes: int = 200) -> str:
        """Indented human-readable rendering of the causal tree."""
        lines: List[str] = []
        origin = self.root.start if self.root is not None else 0.0

        def walk(node: SpanNode, depth: int) -> None:
            if len(lines) >= max_nodes:
                return
            rel = (node.start - origin) * 1000
            dur = node.event.dur * 1000
            shape = f"{dur:8.2f} ms" if node.event.kind == "span" else "   instant "
            detail = " ".join(
                f"{k}={v}"
                for k, v in sorted(node.event.tags.items())
                if k not in ("trace_id", "span_id", "parent_span_id")
            )
            lines.append(
                f"{rel:9.2f} ms  {shape}  {'  ' * depth}{node.name}"
                + (f"  [{detail}]" if detail else "")
            )
            for child in sorted(
                node.children, key=lambda n: (n.start, n.span_id)
            ):
                walk(child, depth + 1)

        for root in sorted(self.roots, key=lambda n: (n.start, n.span_id)):
            walk(root, 0)
        if len(self.nodes) > max_nodes:
            lines.append(f"... ({len(self.nodes) - max_nodes} more nodes)")
        return "\n".join(lines)


def assemble_traces(
    events: Iterable[TelemetryEvent],
) -> Dict[int, TraceTree]:
    """Group causally-tagged events into one :class:`TraceTree` each.

    Only events carrying ``trace_id``/``span_id`` tags participate;
    untagged events (plain metrics spans) are ignored. When two events
    carry the same span id, a span outranks an instant (``net.transit``
    subsumes the ``net.send`` instant of the same hop); among equals the
    first occurrence wins.
    """
    trees: Dict[int, TraceTree] = {}
    for e in events:
        tags = e.tags
        if "trace_id" not in tags or "span_id" not in tags:
            continue
        tid = int(tags["trace_id"])
        tree = trees.get(tid)
        if tree is None:
            tree = trees[tid] = TraceTree(trace_id=tid)
        sid = int(tags["span_id"])
        existing = tree.nodes.get(sid)
        if existing is not None:
            if existing.event.kind != "span" and e.kind == "span":
                tree.nodes[sid] = SpanNode(event=e)
            continue
        tree.nodes[sid] = SpanNode(event=e)
    for tree in trees.values():
        for node in tree.nodes.values():
            parent = tree.nodes.get(node.parent_span_id)
            if parent is None or parent is node:
                tree.roots.append(node)
            else:
                parent.children.append(node)
        for node in tree.nodes.values():
            node.children.sort(key=lambda n: (n.start, n.span_id))
        tree.roots.sort(key=lambda n: (n.start, n.span_id))
    return trees


@dataclass
class PathSegment:
    """One hop's contribution to the end-to-end latency."""

    node: SpanNode
    seconds: float

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def category(self) -> str:
        return self.node.category


@dataclass
class CriticalPath:
    """The latency decomposition along one leaf-to-root chain.

    ``total`` equals ``leaf end - root start``; for a search trace whose
    root span starts at query initiation and whose leaf is the last
    ``query.arrive``, that is exactly the reported query latency.
    """

    leaf: Optional[SpanNode]
    root: Optional[SpanNode]
    segments: List[PathSegment] = field(default_factory=list)

    @property
    def total(self) -> float:
        return sum(s.seconds for s in self.segments)

    def by_category(self) -> Dict[str, float]:
        out = {c: 0.0 for c in PATH_CATEGORIES}
        for seg in self.segments:
            out[seg.category] = out.get(seg.category, 0.0) + seg.seconds
        return out

    @property
    def dominant(self) -> str:
        """The category that spent the most of the end-to-end latency."""
        by = self.by_category()
        return max(PATH_CATEGORIES, key=lambda c: by.get(c, 0.0))

    def format(self) -> str:
        lines = [
            f"critical path: {self.total * 1000:.2f} ms over "
            f"{len(self.segments)} hops (dominant: {self.dominant})"
        ]
        by = self.by_category()
        for cat in PATH_CATEGORIES:
            secs = by.get(cat, 0.0)
            share = secs / self.total if self.total > 0 else 0.0
            lines.append(f"  {cat:<10} {secs * 1000:9.2f} ms  {share:6.1%}")
        for seg in self.segments:
            lines.append(
                f"    {seg.seconds * 1000:9.3f} ms  {seg.category:<10} "
                f"{seg.name}"
            )
        return "\n".join(lines)


def critical_path(
    tree: TraceTree,
    *,
    root: Optional[SpanNode] = None,
    leaf: Optional[SpanNode] = None,
    leaf_name: str = "query.arrive",
) -> CriticalPath:
    """Latency attribution along the chain that finished last.

    Picks the latest-ending ``leaf_name`` node under *root* (default:
    the whole trace under its origin root), then walks leaf-to-root.
    Each hop is charged the interval between its own start and the point
    the next-lower hop took over, so the segment sum telescopes to
    ``leaf end - root start`` — no double counting, no gaps.
    """
    if root is None:
        root = tree.root
    if root is None:
        return CriticalPath(leaf=None, root=None)
    if leaf is None:
        candidates = [
            n for n in tree.subtree(root) if n.name == leaf_name
        ]
        if not candidates:
            return CriticalPath(leaf=None, root=root)
        leaf = max(candidates, key=lambda n: (n.end, n.span_id))
    chain = [leaf]
    for anc in tree.ancestors(leaf):
        chain.append(anc)
        if anc is root:
            break
    else:
        # Leaf does not descend from the requested root; nothing to sum.
        return CriticalPath(leaf=leaf, root=root)
    segments: List[PathSegment] = []
    deadline = leaf.end
    for node in chain:
        seconds = max(0.0, deadline - max(node.start, root.start))
        if seconds > 0.0:
            segments.append(PathSegment(node=node, seconds=seconds))
        deadline = min(deadline, max(node.start, root.start))
        if deadline <= root.start:
            break
    return CriticalPath(leaf=leaf, root=root, segments=segments)


def diff_critical_paths(
    a: CriticalPath,
    b: CriticalPath,
    *,
    label_a: str = "A",
    label_b: str = "B",
) -> str:
    """Side-by-side comparison of two critical paths.

    Renders both paths' totals, the per-category
    (wire/queue/service/processing) attribution with absolute deltas,
    and the two hop chains aligned row-by-row — the answer to "these two
    searches took different times: *where* did the extra milliseconds
    go?". Powers ``repro trace --diff``.
    """
    width = max(len(label_a), len(label_b))
    lines = [
        f"{label_a:<{width}}  total {a.total * 1000:9.2f} ms over "
        f"{len(a.segments)} hops (dominant: {a.dominant})",
        f"{label_b:<{width}}  total {b.total * 1000:9.2f} ms over "
        f"{len(b.segments)} hops (dominant: {b.dominant})",
        f"{'delta':<{width}}        {(b.total - a.total) * 1000:+9.2f} ms",
        "",
        f"  {'category':<10} {label_a + ' ms':>10} {label_b + ' ms':>10} "
        f"{'delta ms':>10}",
    ]
    by_a = a.by_category()
    by_b = b.by_category()
    for cat in PATH_CATEGORIES:
        va = by_a.get(cat, 0.0) * 1000
        vb = by_b.get(cat, 0.0) * 1000
        lines.append(
            f"  {cat:<10} {va:10.3f} {vb:10.3f} {vb - va:+10.3f}"
        )
    lines.append("")
    name_w = max(
        [len(f"{s.category}:{s.name}") for s in a.segments + b.segments]
        + [len("(no hop)")]
    )
    lines.append(
        f"  {label_a + ' hop':<{name_w + 14}} {label_b + ' hop'}"
    )
    for i in range(max(len(a.segments), len(b.segments))):
        sa = a.segments[i] if i < len(a.segments) else None
        sb = b.segments[i] if i < len(b.segments) else None
        left = (
            f"{sa.seconds * 1000:9.3f} ms  {sa.category}:{sa.name}"
            if sa is not None else f"{'':>9}     (no hop)"
        )
        right = (
            f"{sb.seconds * 1000:9.3f} ms  {sb.category}:{sb.name}"
            if sb is not None else f"{'':>9}     (no hop)"
        )
        lines.append(f"  {left:<{name_w + 14}} {right}")
    return "\n".join(lines)
