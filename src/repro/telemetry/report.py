"""Per-server load attribution tables.

This is the observability core of the paper's bottleneck argument: in
the basic hierarchy every query enters at the root, so the root's share
of query-forward traffic approaches 1; with the replication overlay the
same workload spreads across start servers (Fig. 5/7). The helpers here
roll the :class:`~repro.telemetry.metrics.MetricsRegistry` up into rows
suitable for :func:`repro.experiments.report.format_table`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .metrics import MetricsRegistry


def per_server_load_rows(
    registry: MetricsRegistry,
    *,
    category: str = "query",
    phase: Optional[str] = "forward",
    top: Optional[int] = None,
    root_id: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Per-server message/byte load rows, hottest first.

    Each row: ``server``, ``messages``, ``bytes``, ``share`` (of the
    category's messages) and ``role`` (``"root"`` for the root server).
    """
    loads = registry.per_server(category=category, phase=phase)
    total_msgs = sum(m for m, _ in loads.values())
    rows = []
    for server, (msgs, byts) in sorted(
        loads.items(), key=lambda kv: (-kv[1][0], -kv[1][1], kv[0])
    ):
        rows.append({
            "server": server,
            "messages": msgs,
            "bytes": byts,
            "share": (msgs / total_msgs) if total_msgs else 0.0,
            "role": "root" if server == root_id else "",
        })
    if top is not None:
        rows = rows[:top]
    return rows


def root_load_share(
    registry: MetricsRegistry,
    root_id: int,
    *,
    category: str = "query",
    phase: Optional[str] = "forward",
) -> float:
    """Fraction of the category's messages the root server absorbed."""
    loads = registry.per_server(category=category, phase=phase)
    total = sum(m for m, _ in loads.values())
    if total == 0:
        return 0.0
    return loads.get(root_id, (0, 0))[0] / total
