"""Per-(server, category, phase) metrics registry.

The paper's evaluation attributes load to individual servers (the root
bottleneck of Fig. 5/7 is a *per-server* observation, not a global sum).
:class:`MetricsRegistry` therefore keys every counter, byte gauge and
histogram by :class:`MetricKey` — ``server`` (``None`` for unattributed
/ global records), ``category`` (the traffic class, e.g. ``"query"``)
and ``phase`` (the protocol step, e.g. ``"forward"``, ``"aggregate"``,
``"heartbeat"``). Aggregations across any axis are simple sums, so the
old global-only :class:`~repro.sim.metrics.MetricsCollector` view is a
cheap roll-up over this store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .histogram import StreamingHistogram


@dataclass(frozen=True, order=True)
class MetricKey:
    """Attribution key: which server, which traffic class, which step."""

    category: str
    server: Optional[int] = None
    phase: str = ""

    def __post_init__(self) -> None:
        # Order=True needs comparable fields; normalise server None -> -1
        # only in sort helpers, not here, so keep server Optional but
        # guard against accidental float ids.
        if self.server is not None and not isinstance(self.server, int):
            object.__setattr__(self, "server", int(self.server))

    def labels(self) -> Dict[str, str]:
        return {
            "category": self.category,
            "server": "" if self.server is None else str(self.server),
            "phase": self.phase,
        }


def _sort_key(key: MetricKey) -> Tuple:
    return (key.category, -1 if key.server is None else key.server, key.phase)


class MetricsRegistry:
    """Counters, byte gauges and streaming histograms per metric key."""

    def __init__(self):
        self._messages: Dict[MetricKey, int] = {}
        self._bytes: Dict[MetricKey, int] = {}
        self._histograms: Dict[MetricKey, StreamingHistogram] = {}

    # -- recording ----------------------------------------------------------------
    def count_message(
        self,
        category: str,
        size_bytes: int,
        *,
        server: Optional[int] = None,
        phase: str = "",
        count: int = 1,
    ) -> None:
        key = MetricKey(category=category, server=server, phase=phase)
        self._messages[key] = self._messages.get(key, 0) + count
        self._bytes[key] = self._bytes.get(key, 0) + size_bytes

    def uncount_message(
        self,
        category: str,
        size_bytes: int,
        *,
        server: Optional[int] = None,
        phase: str = "",
    ) -> None:
        """Roll back one previously counted message (e.g. a send by an
        already-failed node whose bytes never hit the wire)."""
        self.count_message(
            category, -size_bytes, server=server, phase=phase, count=-1
        )

    def observe(
        self,
        name: str,
        value: float,
        *,
        server: Optional[int] = None,
        phase: str = "",
    ) -> None:
        """Record one sample into the named streaming histogram."""
        key = MetricKey(category=name, server=server, phase=phase)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = StreamingHistogram()
        hist.record(value)

    # -- roll-ups ----------------------------------------------------------------
    def categories(self) -> List[str]:
        cats = {k.category for k in self._messages}
        return sorted(cats)

    def bytes_total(self, category: Optional[str] = None) -> int:
        return sum(
            v for k, v in self._bytes.items()
            if category is None or k.category == category
        )

    def messages_total(self, category: Optional[str] = None) -> int:
        return sum(
            v for k, v in self._messages.items()
            if category is None or k.category == category
        )

    def totals_by_category(self) -> Tuple[Dict[str, int], Dict[str, int]]:
        """(bytes per category, messages per category) as plain dicts."""
        by_bytes: Dict[str, int] = {}
        by_msgs: Dict[str, int] = {}
        for k, v in self._bytes.items():
            by_bytes[k.category] = by_bytes.get(k.category, 0) + v
        for k, v in self._messages.items():
            by_msgs[k.category] = by_msgs.get(k.category, 0) + v
        return by_bytes, by_msgs

    def per_server(
        self,
        category: Optional[str] = None,
        phase: Optional[str] = None,
    ) -> Dict[int, Tuple[int, int]]:
        """``server -> (messages, bytes)`` filtered by category/phase.

        Unattributed records (``server=None``) are excluded — they have
        no server to charge.
        """
        out: Dict[int, Tuple[int, int]] = {}
        for k in set(self._messages) | set(self._bytes):
            if k.server is None:
                continue
            if category is not None and k.category != category:
                continue
            if phase is not None and k.phase != phase:
                continue
            msgs, byts = out.get(k.server, (0, 0))
            out[k.server] = (
                msgs + self._messages.get(k, 0),
                byts + self._bytes.get(k, 0),
            )
        # Fully rolled-back servers (e.g. only failed-sender messages)
        # carry no load.
        return {s: v for s, v in out.items() if v != (0, 0)}

    def histogram(
        self,
        name: str,
        *,
        server: Optional[int] = None,
        phase: str = "",
    ) -> Optional[StreamingHistogram]:
        return self._histograms.get(
            MetricKey(category=name, server=server, phase=phase)
        )

    def merged_histogram(self, name: str) -> StreamingHistogram:
        """All servers' histograms for *name* folded into one."""
        out = StreamingHistogram()
        for k, h in self._histograms.items():
            if k.category == name:
                out.merge(h)
        return out

    # -- lifecycle ----------------------------------------------------------------
    def reset(self, categories: Optional[Iterable[str]] = None) -> None:
        if categories is None:
            self._messages.clear()
            self._bytes.clear()
            self._histograms.clear()
            return
        drop = set(categories)
        for table in (self._messages, self._bytes, self._histograms):
            for k in [k for k in table if k.category in drop]:
                del table[k]

    # -- snapshots ----------------------------------------------------------------
    def rows(self) -> List[Dict[str, object]]:
        """One plain-dict row per metric key, deterministically ordered."""
        keys = sorted(set(self._messages) | set(self._bytes), key=_sort_key)
        return [
            {
                "category": k.category,
                "server": k.server,
                "phase": k.phase,
                "messages": self._messages.get(k, 0),
                "bytes": self._bytes.get(k, 0),
            }
            for k in keys
        ]

    def snapshot(self) -> Dict[str, object]:
        """Nested plain-dict snapshot (JSON-serialisable)."""
        by_bytes, by_msgs = self.totals_by_category()
        return {
            "bytes_by_category": by_bytes,
            "messages_by_category": by_msgs,
            "rows": self.rows(),
            "histograms": [
                {
                    "name": k.category,
                    "server": k.server,
                    "phase": k.phase,
                    **h.summary(),
                }
                for k, h in sorted(
                    self._histograms.items(), key=lambda kv: _sort_key(kv[0])
                )
            ],
        }
