"""The profiling plane: hierarchical hot-path attribution.

The flat :class:`~repro.bench.profiler.WallClockProfiler` told perf PRs
*that* ``sim.dispatch`` dominates bench wall time but not *why*: nested
sections double-counted (``query.execute`` encloses the ``sim.dispatch``
seconds of its event loop, so summing sections overshot the total) and
nothing attributed dispatch time to the event kinds, planes or servers
burning it. :class:`CallPathProfiler` replaces the flat section map with
a call-path tree:

* **Frames** are keyed by (parent path, name); ``enter(name)`` /
  ``exit()`` push and pop the current path, accumulating *cumulative*
  wall seconds per frame. *Self* seconds — cumulative minus the
  children's cumulative — form an exact partition of the root total, so
  "where does the time actually go" finally has a well-defined answer.
* **Dual clocks.** Each frame carries host wall seconds
  (``time.perf_counter``) *and* the virtual sim seconds that elapsed
  while it was open (when a sim clock is bound), so a hot frame can be
  read both as "costs host CPU" and "covers this much simulated time".
* **Labeled dispatch.** The engine wraps every event callback in a frame
  named after the event's schedule-site label (``net.deliver:query``,
  ``update.epoch``, ``service.serve:query-response`` …), and the
  transport's handler invocations record an **event census** —
  deliveries per message kind per server — alongside the timings, so
  the dispatch loop's time decomposes by event kind and plane and the
  message mix is fingerprintable.
* **Exporters.** :func:`collapsed_stacks` emits Brendan Gregg
  collapsed-stack lines (``a;b;c <self µs>``) ready for any flame-graph
  tool; :func:`speedscope_document` emits a speedscope-schema JSON
  loadable at speedscope.app; :func:`diff_documents` compares two
  profile dumps hotspot by hotspot.

**Non-perturbation.** The profiler only reads host clocks and Python
state: it sends no messages, consumes no simulation randomness, and
never touches telemetry ids, so a seeded run with profiling enabled is
byte-identical — same outcomes, same latencies — to the same run
without it. ``tests/test_profiling.py`` asserts this tripwire per seed.

The disabled path stays free: instrumented call sites cache the profiler
reference (``None`` by default) and guard on a single ``is not None``.
"""

from __future__ import annotations

import hashlib
import json
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Tuple

#: profile document schema identifier; bump on incompatible changes
PROFILE_SCHEMA = "roads.profile/1"

#: frame name used for engine events scheduled without a label
UNLABELED_EVENT = "sim.event"


class Frame:
    """One node of the call-path tree.

    Identity is the path from the root, so the same section name under
    two different parents is two frames — that is what makes *self*
    seconds a partition instead of a hot-path soup.
    """

    __slots__ = (
        "name", "parent", "children", "calls",
        "cum_wall", "cum_sim", "_active",
    )

    def __init__(self, name: str, parent: Optional["Frame"]):
        self.name = name
        self.parent = parent
        self.children: Dict[str, "Frame"] = {}
        self.calls = 0
        #: wall seconds spent inside this frame, children included
        self.cum_wall = 0.0
        #: virtual sim seconds that elapsed while this frame was open
        self.cum_sim = 0.0
        # Re-entrancy depth: recursive re-entry of the same frame only
        # accumulates when the outermost entry exits, so cumulative
        # time is never double-counted.
        self._active = 0

    @property
    def self_wall(self) -> float:
        """Wall seconds in this frame minus its children (never < 0)."""
        return max(
            0.0, self.cum_wall - sum(c.cum_wall for c in self.children.values())
        )

    def path(self) -> Tuple[str, ...]:
        names: List[str] = []
        frame: Optional[Frame] = self
        while frame is not None and frame.parent is not None:
            names.append(frame.name)
            frame = frame.parent
        return tuple(reversed(names))

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "calls": self.calls,
            "cum_seconds": self.cum_wall,
            "self_seconds": self.self_wall,
            "sim_seconds": self.cum_sim,
            "children": [
                self.children[k].to_dict() for k in sorted(self.children)
            ],
        }


class _Section:
    """Context manager over one ``enter``/``exit`` pair."""

    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: "CallPathProfiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Section":
        self._profiler.enter(self._name)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler.exit()


class CallPathProfiler:
    """Hierarchical dual-clock wall profiler with an event census."""

    __slots__ = ("_root", "_stack", "_counters", "_census", "_clock")

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._root = Frame("(root)", None)
        # (frame, wall t0, sim t0) triples for the open frames
        self._stack: List[Tuple[Frame, float, float]] = []
        self._counters: Dict[str, int] = {}
        # kind -> server -> deliveries
        self._census: Dict[str, Dict[int, int]] = {}
        self._clock = clock

    # -- clocks -------------------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Bind the virtual (sim) clock for the dual-clock columns."""
        self._clock = clock

    # -- recording ----------------------------------------------------------------
    def enter(self, name: str) -> None:
        """Open a frame named *name* under the current call path."""
        parent = self._stack[-1][0] if self._stack else self._root
        frame = parent.children.get(name)
        if frame is None:
            frame = parent.children[name] = Frame(name, parent)
        frame.calls += 1
        frame._active += 1
        clock = self._clock
        self._stack.append(
            (frame, perf_counter(), clock() if clock is not None else 0.0)
        )

    def exit(self) -> None:
        """Close the innermost open frame."""
        if not self._stack:
            raise RuntimeError("profiler exit() without a matching enter()")
        frame, wall_t0, sim_t0 = self._stack.pop()
        frame._active -= 1
        if frame._active == 0:
            frame.cum_wall += perf_counter() - wall_t0
            clock = self._clock
            if clock is not None:
                frame.cum_sim += clock() - sim_t0

    def section(self, name: str) -> _Section:
        """``with profiler.section("net.send"): ...``"""
        return _Section(self, name)

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Fold an already-measured interval in as a leaf frame.

        The frame lands under the *current* call path, so externally
        timed intervals still attribute hierarchically.
        """
        parent = self._stack[-1][0] if self._stack else self._root
        frame = parent.children.get(name)
        if frame is None:
            frame = parent.children[name] = Frame(name, parent)
        frame.calls += calls
        frame.cum_wall += seconds

    def count(self, name: str, n: int = 1) -> None:
        """Bump a plain counter (no timing attached)."""
        self._counters[name] = self._counters.get(name, 0) + n

    def census(self, kind: str, server: int, n: int = 1) -> None:
        """Record *n* deliveries of message *kind* at *server*."""
        per_server = self._census.get(kind)
        if per_server is None:
            per_server = self._census[kind] = {}
        per_server[server] = per_server.get(server, 0) + n

    # -- flat projection (WallClockProfiler semantics) ------------------------------
    def flat(self) -> Dict[str, Dict[str, float]]:
        """Per-name totals: ``{name: {calls, seconds, self_seconds}}``.

        ``self_seconds`` summed over every frame of a name partitions
        the total exactly (no double counting); ``seconds`` keeps the
        historical cumulative reading — time spent inside sections of
        that name — counting only *top-most* occurrences, so a section
        nested inside itself (recursion, re-entered dispatch loops) is
        not double-counted either.
        """
        out: Dict[str, Dict[str, float]] = {}

        def visit(frame: Frame, ancestors: frozenset) -> None:
            for child in frame.children.values():
                entry = out.get(child.name)
                if entry is None:
                    entry = out[child.name] = {
                        "calls": 0, "seconds": 0.0, "self_seconds": 0.0,
                    }
                entry["calls"] += child.calls
                entry["self_seconds"] += child.self_wall
                if child.name not in ancestors:
                    entry["seconds"] += child.cum_wall
                visit(child, ancestors | {child.name})

        visit(self._root, frozenset())
        return out

    @property
    def total_seconds(self) -> float:
        """Wall seconds across all top-level frames (the partition total)."""
        return sum(c.cum_wall for c in self._root.children.values())

    def seconds(self, name: str) -> float:
        """Cumulative wall seconds inside sections named *name*."""
        flat = self.flat().get(name)
        return flat["seconds"] if flat is not None else 0.0

    def self_seconds(self, name: str) -> float:
        """Exclusive (self) wall seconds across frames named *name*."""
        flat = self.flat().get(name)
        return flat["self_seconds"] if flat is not None else 0.0

    def calls(self, name: str) -> int:
        flat = self.flat().get(name)
        return int(flat["calls"]) if flat is not None else 0

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    @property
    def section_names(self) -> List[str]:
        return sorted(self.flat())

    def events_per_second(
        self, events: Optional[int] = None, section: str = "sim.dispatch"
    ) -> float:
        """Engine throughput: events processed per wall second.

        *events* defaults to the ``sim.events`` counter maintained by
        the instrumented :class:`~repro.sim.engine.Simulator`.
        """
        n = self.counter("sim.events") if events is None else events
        secs = self.seconds(section)
        return n / secs if secs > 0 else 0.0

    # -- read-out -----------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Flat JSON dump in the historical WallClockProfiler shape."""
        flat = self.flat()
        return {
            "sections": {
                name: {
                    "calls": int(flat[name]["calls"]),
                    "seconds": flat[name]["seconds"],
                    "self_seconds": flat[name]["self_seconds"],
                }
                for name in sorted(flat)
            },
            "counters": dict(sorted(self._counters.items())),
        }

    def document(self) -> Dict[str, object]:
        """The full hierarchical profile document (JSON-serialisable)."""
        census = {
            kind: {
                str(server): self._census[kind][server]
                for server in sorted(self._census[kind])
            }
            for kind in sorted(self._census)
        }
        return {
            "schema": PROFILE_SCHEMA,
            "total_seconds": self.total_seconds,
            "tree": self._root.to_dict(),
            "counters": dict(sorted(self._counters.items())),
            "census": census,
            "census_fingerprint": census_fingerprint(census),
        }

    def reset(self) -> None:
        self._root = Frame("(root)", None)
        self._stack = []
        self._counters.clear()
        self._census.clear()


# -- census fingerprint ---------------------------------------------------------
def census_fingerprint(census: Dict[str, Dict]) -> str:
    """Stable short hash of a deliveries-per-kind-per-server census.

    Deterministic per seed and configuration: two runs whose dispatch
    mixes differ in any (kind, server, count) triple get different
    fingerprints, so baseline comparisons can gate on the mix without
    committing the full census.
    """
    canonical = {
        str(kind): {
            str(server): int(count)
            for server, count in sorted(
                servers.items(), key=lambda kv: str(kv[0])
            )
        }
        for kind, servers in sorted(census.items())
    }
    doc = json.dumps(canonical, sort_keys=True)
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:16]


# -- document helpers -----------------------------------------------------------
def _walk(
    node: Dict[str, object], path: Tuple[str, ...] = ()
) -> Iterable[Tuple[Tuple[str, ...], Dict[str, object]]]:
    """Yield ``(path, node)`` for every non-root node of a document tree."""
    for child in node.get("children", ()):
        child_path = path + (child["name"],)
        yield child_path, child
        yield from _walk(child, child_path)


def flatten_document(document: Dict[str, object]) -> Dict[str, Dict[str, float]]:
    """Recompute the flat per-name projection from a loaded document."""
    out: Dict[str, Dict[str, float]] = {}

    def visit(node: Dict[str, object], ancestors: frozenset) -> None:
        for child in node.get("children", ()):
            name = child["name"]
            entry = out.get(name)
            if entry is None:
                entry = out[name] = {
                    "calls": 0, "seconds": 0.0, "self_seconds": 0.0,
                }
            entry["calls"] += int(child["calls"])
            entry["self_seconds"] += float(child["self_seconds"])
            if name not in ancestors:
                entry["seconds"] += float(child["cum_seconds"])
            visit(child, ancestors | {name})

    visit(document["tree"], frozenset())
    return out


def hotspot_shares(
    document: Dict[str, object], *, min_share: float = 0.0
) -> Dict[str, float]:
    """Per-name share of total self time, the regression-gate currency."""
    total = float(document["total_seconds"])
    if total <= 0:
        return {}
    return {
        name: entry["self_seconds"] / total
        for name, entry in sorted(flatten_document(document).items())
        if entry["self_seconds"] / total >= min_share
    }


def top_frames(
    document: Dict[str, object], k: int = 15
) -> List[Dict[str, object]]:
    """Top-*k* frame names by self time, with shares and call counts."""
    total = float(document["total_seconds"])
    flat = flatten_document(document)
    rows = [
        {
            "section": name,
            "calls": int(entry["calls"]),
            "self_s": entry["self_seconds"],
            "cum_s": entry["seconds"],
            "share": entry["self_seconds"] / total if total > 0 else 0.0,
        }
        for name, entry in flat.items()
    ]
    rows.sort(key=lambda r: (-r["self_s"], r["section"]))
    return rows[:k]


def format_top(document: Dict[str, object], k: int = 15) -> str:
    """Human-readable top-*k* self-time table."""
    rows = top_frames(document, k)
    total = float(document["total_seconds"])
    lines = [
        f"{'section':<36} {'calls':>9} {'self s':>9} {'cum s':>9} {'share':>7}"
    ]
    for r in rows:
        lines.append(
            f"{r['section']:<36} {r['calls']:>9} {r['self_s']:>9.3f} "
            f"{r['cum_s']:>9.3f} {r['share']:>6.1%}"
        )
    lines.append(f"{'total (self-time partition)':<36} {'':>9} {total:>9.3f}")
    return "\n".join(lines)


def format_tree(
    document: Dict[str, object],
    *,
    max_depth: int = 5,
    min_share: float = 0.01,
) -> str:
    """Indented call-path tree, hottest cumulative branches first."""
    total = float(document["total_seconds"])
    lines: List[str] = []

    def visit(node: Dict[str, object], depth: int) -> None:
        children = sorted(
            node.get("children", ()),
            key=lambda c: -float(c["cum_seconds"]),
        )
        for child in children:
            cum = float(child["cum_seconds"])
            share = cum / total if total > 0 else 0.0
            if share < min_share:
                continue
            lines.append(
                f"{'  ' * depth}{child['name']}  "
                f"cum={cum:.3f}s ({share:.1%})  "
                f"self={float(child['self_seconds']):.3f}s  "
                f"calls={int(child['calls'])}"
            )
            if depth + 1 < max_depth:
                visit(child, depth + 1)

    visit(document["tree"], 0)
    return "\n".join(lines) if lines else "(empty profile)"


# -- collapsed-stack export ------------------------------------------------------
def collapsed_stacks(document: Dict[str, object]) -> str:
    """Brendan Gregg collapsed-stack lines: ``a;b;c <self µs>``.

    One line per call path with non-zero self time, value in integer
    microseconds — the input format of ``flamegraph.pl`` and every
    flame-graph renderer descended from it.
    """
    lines: List[str] = []
    for path, node in _walk(document["tree"]):
        micros = int(round(float(node["self_seconds"]) * 1e6))
        if micros > 0:
            lines.append(";".join(path) + f" {micros}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_collapsed(text: str) -> Dict[Tuple[str, ...], int]:
    """Inverse of :func:`collapsed_stacks`: ``{path: self µs}``."""
    out: Dict[Tuple[str, ...], int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, value = line.rpartition(" ")
        path = tuple(stack.split(";"))
        out[path] = out.get(path, 0) + int(value)
    return out


# -- speedscope export -----------------------------------------------------------
_SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def speedscope_document(
    document: Dict[str, object], *, name: str = "repro profile"
) -> Dict[str, object]:
    """Speedscope-schema JSON for the call-path tree (sampled profile).

    Every call path with non-zero self time becomes one weighted sample,
    so the rendered flame graph's widths are the tree's self-time
    partition. Load the result at https://www.speedscope.app/ or with
    the ``speedscope`` CLI.
    """
    frame_index: Dict[str, int] = {}
    frames: List[Dict[str, str]] = []
    samples: List[List[int]] = []
    weights: List[int] = []
    for path, node in _walk(document["tree"]):
        micros = int(round(float(node["self_seconds"]) * 1e6))
        if micros <= 0:
            continue
        stack: List[int] = []
        for frame_name in path:
            idx = frame_index.get(frame_name)
            if idx is None:
                idx = frame_index[frame_name] = len(frames)
                frames.append({"name": frame_name})
            stack.append(idx)
        samples.append(stack)
        weights.append(micros)
    end_value = sum(weights)
    return {
        "$schema": _SPEEDSCOPE_SCHEMA,
        "name": name,
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "microseconds",
                "startValue": 0,
                "endValue": end_value,
                "samples": samples,
                "weights": weights,
            }
        ],
        "exporter": "repro.telemetry.profiling",
    }


def parse_speedscope(doc: Dict[str, object]) -> Dict[Tuple[str, ...], int]:
    """Path → weight (µs) map from a speedscope sampled profile."""
    frames = doc["shared"]["frames"]
    profile = doc["profiles"][0]
    out: Dict[Tuple[str, ...], int] = {}
    for stack, weight in zip(profile["samples"], profile["weights"]):
        path = tuple(frames[i]["name"] for i in stack)
        out[path] = out.get(path, 0) + int(weight)
    return out


# -- profile diffing -------------------------------------------------------------
def diff_documents(
    doc_a: Dict[str, object],
    doc_b: Dict[str, object],
    *,
    label_a: str = "A",
    label_b: str = "B",
    k: int = 20,
) -> str:
    """Side-by-side hotspot comparison of two profile documents.

    Rows are per section name: self seconds and share of total under
    each profile, the share delta (percentage points), and the census
    verdict; sorted by absolute share delta so the biggest hot-path
    shifts lead.
    """
    shares_a = hotspot_shares(doc_a)
    shares_b = hotspot_shares(doc_b)
    flat_a = flatten_document(doc_a)
    flat_b = flatten_document(doc_b)
    names = sorted(set(shares_a) | set(shares_b))
    rows = []
    for name in names:
        sa = shares_a.get(name, 0.0)
        sb = shares_b.get(name, 0.0)
        rows.append((abs(sb - sa), name, sa, sb))
    rows.sort(key=lambda r: (-r[0], r[1]))
    lines = [
        f"{'section':<36} {label_a + ' self s':>12} {label_a + ' %':>8} "
        f"{label_b + ' self s':>12} {label_b + ' %':>8} {'Δ share':>9}"
    ]
    for _, name, sa, sb in rows[:k]:
        self_a = flat_a.get(name, {}).get("self_seconds", 0.0)
        self_b = flat_b.get(name, {}).get("self_seconds", 0.0)
        lines.append(
            f"{name:<36} {self_a:>12.3f} {sa:>7.1%} "
            f"{self_b:>12.3f} {sb:>7.1%} {sb - sa:>+8.1%}"
        )
    total_a = float(doc_a["total_seconds"])
    total_b = float(doc_b["total_seconds"])
    lines.append(
        f"{'total':<36} {total_a:>12.3f} {'':>8} {total_b:>12.3f}"
    )
    fp_a = doc_a.get("census_fingerprint")
    fp_b = doc_b.get("census_fingerprint")
    if fp_a and fp_b:
        verdict = "identical" if fp_a == fp_b else "DIFFERENT"
        lines.append(
            f"event census: {verdict} ({label_a}={fp_a} {label_b}={fp_b})"
        )
    return "\n".join(lines)
