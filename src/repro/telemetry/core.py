"""The telemetry recorder: span API over the event bus.

:class:`Telemetry` binds a clock (the sim's virtual clock in practice),
an :class:`~repro.telemetry.events.EventBus` and a
:class:`~repro.telemetry.metrics.MetricsRegistry`. Spans form a stack —
the simulation is single-threaded, so the enclosing open span is always
the parent — and are emitted to the bus when closed.

:class:`NullTelemetry` (singleton :data:`NULL_TELEMETRY`) is the
disabled recorder: every operation is a no-op and ``span()`` returns a
shared inert context manager, so instrumented code can call it
unconditionally without allocating.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from .events import EventBus, TelemetryEvent
from .metrics import MetricsRegistry
from .tracing import TraceContext


class Span:
    """An open (or closed) span; use as a context manager."""

    __slots__ = ("telemetry", "name", "tags", "span_id", "parent_id",
                 "start", "end", "_closed")

    def __init__(
        self,
        telemetry: "Telemetry",
        name: str,
        tags: Dict[str, object],
        span_id: int,
        parent_id: int,
        start: float,
    ):
        self.telemetry = telemetry
        self.name = name
        self.tags = tags
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self._closed = False

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def annotate(self, **tags) -> "Span":
        """Attach extra tags to an open span."""
        self.tags.update(tags)
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.telemetry._close_span(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.tags.setdefault("error", exc_type.__name__)
        self.close()


class _NullSpan:
    """Shared inert span returned by :class:`NullTelemetry`."""

    __slots__ = ()
    name = ""
    span_id = 0
    parent_id = 0
    start = 0.0
    end = 0.0
    duration = 0.0
    tags: Dict[str, object] = {}

    def annotate(self, **tags) -> "_NullSpan":
        return self

    def close(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Telemetry:
    """Event bus + span API + metrics registry behind one handle.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current (sim) time in
        seconds. Bind later with :meth:`bind_clock` when the simulator
        does not exist yet.
    capacity:
        Ring-buffer size of the event bus.
    enabled:
        When False, ``event``/``span`` become no-ops (metrics recorded
        through the registry directly are unaffected).
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        *,
        capacity: int = 65536,
        enabled: bool = True,
    ):
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.bus = EventBus(capacity)
        self.metrics = MetricsRegistry()
        self.enabled = enabled
        #: optional wall-clock section profiler
        #: (:class:`repro.bench.profiler.WallClockProfiler`); attach it
        #: *before* building a system — instrumented components cache the
        #: reference at construction time so the disabled path stays free.
        self.profiler = None
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._stack: List[Span] = []

    # -- clock ----------------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        # Keep the profiler's virtual clock in sync so its dual-clock
        # columns read sim time once the simulator exists.
        if self.profiler is not None:
            bind = getattr(self.profiler, "bind_clock", None)
            if bind is not None:
                bind(clock)

    # -- wall-clock profiling ------------------------------------------------------
    def attach_profiler(self, profiler) -> None:
        """Install a wall-clock section profiler (call before ``build``)."""
        self.profiler = profiler
        bind = getattr(profiler, "bind_clock", None)
        if bind is not None and getattr(profiler, "_clock", None) is None:
            bind(self._clock)

    @property
    def now(self) -> float:
        return self._clock()

    # -- causal trace contexts -----------------------------------------------------
    def new_trace(self, **baggage) -> Optional[TraceContext]:
        """Mint the root context of a new causal trace (None if disabled).

        Ids come from this recorder's counters, so a fixed build order
        yields identical ids run to run — traces are reproducible and
        never consume simulation randomness.
        """
        if not self.enabled:
            return None
        return TraceContext(
            trace_id=next(self._trace_ids),
            span_id=next(self._span_ids),
            parent_span_id=0,
            baggage=tuple(sorted(baggage.items())) if baggage else (),
        )

    def fork(
        self, ctx: Optional[TraceContext], **baggage
    ) -> Optional[TraceContext]:
        """Fork a child context of *ctx* (None in, or disabled: None out)."""
        if not self.enabled or ctx is None:
            return None
        return ctx.child(next(self._span_ids), **baggage)

    # -- recording ----------------------------------------------------------------
    def event(self, name: str, **tags) -> Optional[TelemetryEvent]:
        """Record a point event at the current clock time."""
        if not self.enabled:
            return None
        parent = self._stack[-1].span_id if self._stack else 0
        ev = TelemetryEvent(
            ts=self._clock(), name=name, kind="event", parent_id=parent,
            tags=tags,
        )
        self.bus.emit(ev)
        return ev

    def span(self, name: str, **tags):
        """Open a span; close it by exiting the ``with`` block."""
        if not self.enabled:
            return _NULL_SPAN
        parent = self._stack[-1].span_id if self._stack else 0
        span = Span(
            self, name, tags, next(self._span_ids), parent, self._clock()
        )
        self._stack.append(span)
        return span

    def emit_span(
        self, name: str, start: float, end: float, /, **tags
    ) -> None:
        """Record an already-measured interval (no nesting bookkeeping).

        The first three parameters are positional-only so tags named
        ``name``/``start``/``end`` stay usable.
        """
        if not self.enabled:
            return
        parent = self._stack[-1].span_id if self._stack else 0
        self.bus.emit(
            TelemetryEvent(
                ts=start, name=name, kind="span", dur=max(0.0, end - start),
                span_id=next(self._span_ids), parent_id=parent, tags=tags,
            )
        )

    def _close_span(self, span: Span) -> None:
        span.end = self._clock()
        # Pop up to and including this span; out-of-order closes (span
        # closed after its parent) degrade gracefully.
        if span in self._stack:
            while self._stack:
                top = self._stack.pop()
                if top is span:
                    break
        self.bus.emit(
            TelemetryEvent(
                ts=span.start, name=span.name, kind="span",
                dur=span.duration, span_id=span.span_id,
                parent_id=span.parent_id, tags=span.tags,
            )
        )

    # -- convenience ----------------------------------------------------------------
    def events(self):
        return self.bus.events()

    def clear(self) -> None:
        self.bus.clear()

    def __len__(self) -> int:
        return len(self.bus)


class NullTelemetry(Telemetry):
    """A telemetry recorder that records nothing, at near-zero cost."""

    def __init__(self):
        super().__init__(capacity=1, enabled=False)

    def event(self, name: str, **tags) -> None:
        return None

    def span(self, name: str, **tags) -> _NullSpan:
        return _NULL_SPAN

    def emit_span(
        self, name: str, start: float, end: float, /, **tags
    ) -> None:
        return None

    def new_trace(self, **baggage) -> None:
        return None

    def fork(self, ctx, **baggage) -> None:
        return None


#: shared disabled recorder for unconditional call sites
NULL_TELEMETRY = NullTelemetry()
