"""Telemetry events and the bounded event bus.

Two event shapes live here:

* :class:`TelemetryEvent` — the bus's wire unit: a point event
  (``kind="event"``) or a closed span (``kind="span"``, with a
  duration), stamped with sim-clock times and a tag dict;
* :class:`TraceEvent` — the structured replacement for the raw
  ``(time, event, subject, detail)`` tuples that
  :class:`~repro.roads.client.QueryOutcome` used to accumulate. It
  iterates and indexes exactly like that 4-tuple, so existing
  consumers keep working unchanged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Tuple


@dataclass
class TelemetryEvent:
    """One recorded point event or closed span."""

    ts: float
    name: str
    kind: str = "event"  # "event" | "span"
    dur: float = 0.0
    span_id: int = 0
    parent_id: int = 0
    tags: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ts": self.ts,
            "name": self.name,
            "kind": self.kind,
            "dur": self.dur,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "tags": dict(self.tags),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "TelemetryEvent":
        return cls(
            ts=float(d["ts"]),
            name=str(d["name"]),
            kind=str(d.get("kind", "event")),
            dur=float(d.get("dur", 0.0)),
            span_id=int(d.get("span_id", 0)),
            parent_id=int(d.get("parent_id", 0)),
            tags=dict(d.get("tags", {})),
        )


@dataclass(frozen=True)
class TraceEvent:
    """One step of a query execution, tuple-compatible.

    The legacy trace format was ``(sim time, event, subject, detail)``;
    this dataclass unpacks and indexes identically so code written
    against the tuples (``for t, ev, subj, det in outcome.trace``) is
    unaffected.
    """

    time: float
    event: str
    subject: str
    detail: str = ""

    def as_tuple(self) -> Tuple[float, str, str, str]:
        return (self.time, self.event, self.subject, self.detail)

    def __iter__(self) -> Iterator:
        return iter(self.as_tuple())

    def __getitem__(self, index):
        return self.as_tuple()[index]

    def __len__(self) -> int:
        return 4


class EventBus:
    """Bounded ring buffer of telemetry events with optional subscribers.

    Appends are O(1); once ``capacity`` is reached the oldest events are
    evicted (``dropped`` counts them). Subscribers are called on every
    emit — they see even events that later fall out of the ring.
    """

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._subscribers: List[Callable[[TelemetryEvent], None]] = []
        self.emitted = 0
        self.dropped = 0

    def emit(self, event: TelemetryEvent) -> None:
        self.emitted += 1
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        for fn in self._subscribers:
            fn(event)

    def subscribe(self, fn: Callable[[TelemetryEvent], None]) -> Callable[[], None]:
        """Register *fn* on every emit; returns an unsubscribe callable."""
        self._subscribers.append(fn)

        def unsubscribe() -> None:
            if fn in self._subscribers:
                self._subscribers.remove(fn)

        return unsubscribe

    def events(self) -> List[TelemetryEvent]:
        """Snapshot of the retained events, oldest first."""
        return list(self._events)

    def drain(self) -> List[TelemetryEvent]:
        """Return and clear the retained events."""
        out = list(self._events)
        self._events.clear()
        return out

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TelemetryEvent]:
        return iter(list(self._events))
