"""The federation flight recorder: black-box rings and postmortems.

An aircraft flight recorder keeps the last few minutes of everything;
when something goes wrong, that window is the evidence. This module is
the federation's equivalent: a :class:`FlightRecorder` rides the
telemetry bus keeping a fixed-size ring of recent events, spans and
message dispositions *per server*, and — when a
:class:`~repro.telemetry.probes.HealthProbe` SLO check transitions to
failing, or on explicit :meth:`FlightRecorder.trigger` — freezes the
evidence into a :class:`PostmortemBundle`:

* the breach window's time series (from an attached
  :class:`~repro.telemetry.series.SeriesSampler`),
* the per-server event-ring contents,
* every assembled causal trace tree that overlaps the window,
* the offending :class:`HealthCheck` and full ``HealthReport``.

Bundles round-trip through JSON (:meth:`PostmortemBundle.dump` /
:meth:`PostmortemBundle.load`) and render human-readably
(:meth:`PostmortemBundle.format`) — ``repro postmortem`` is the CLI
front end. Recording is passive: the recorder only observes events the
bus already emits, so arming it never changes simulation outcomes.
"""

from __future__ import annotations

import json
import re
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from .events import TelemetryEvent
from .series import sparkline
from .tracing import assemble_traces

#: bundle file-format version
BUNDLE_SCHEMA = 1


def _ring_key(event: TelemetryEvent) -> Optional[int]:
    """The server a bus event is attributed to (None = unattributed)."""
    server = event.tags.get("server")
    if server is None:
        server = event.tags.get("dst")
    try:
        return int(server)
    except (TypeError, ValueError):
        return None


@dataclass
class PostmortemBundle:
    """Frozen evidence window around one SLO breach (or manual trigger)."""

    reason: str
    triggered_at: float
    window_start: float
    window_end: float
    #: the failing :class:`HealthCheck`, as a dict (None = manual trigger)
    check: Optional[Dict[str, object]] = None
    #: the full :class:`HealthReport` at trigger time, as a dict
    report: Optional[Dict[str, object]] = None
    #: per-gauge breach-window time series (raw points + rollups)
    series: List[Dict[str, object]] = field(default_factory=list)
    #: per-server event rings: ``{"server": id|None, "events": [...]}``
    rings: List[Dict[str, object]] = field(default_factory=list)
    #: causal trace trees overlapping the window:
    #: ``{"trace_id": id, "events": [...]}``
    traces: List[Dict[str, object]] = field(default_factory=list)
    #: shadow-oracle evidence at trigger time (cumulative snapshot plus
    #: the last audited query's full ``QualityReport`` with per-summary
    #: divergence attributions); None when no quality plane is armed
    quality: Optional[Dict[str, object]] = None

    # -- round-trip ----------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": BUNDLE_SCHEMA,
            "reason": self.reason,
            "triggered_at": self.triggered_at,
            "window": [self.window_start, self.window_end],
            "check": self.check,
            "report": self.report,
            "series": self.series,
            "rings": self.rings,
            "traces": self.traces,
            "quality": self.quality,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "PostmortemBundle":
        window = d.get("window", [0.0, 0.0])
        return cls(
            reason=str(d["reason"]),
            triggered_at=float(d["triggered_at"]),
            window_start=float(window[0]),
            window_end=float(window[1]),
            check=d.get("check"),
            report=d.get("report"),
            series=list(d.get("series", [])),
            rings=list(d.get("rings", [])),
            traces=list(d.get("traces", [])),
            quality=d.get("quality"),
        )

    def dump(self, path) -> Path:
        """Write the bundle as JSON; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, sort_keys=True)
        return path

    @classmethod
    def load(cls, path) -> "PostmortemBundle":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    # -- convenience ----------------------------------------------------------------
    @property
    def ring_events(self) -> int:
        return sum(len(r["events"]) for r in self.rings)

    def trace_trees(self):
        """Re-assembled :class:`TraceTree` objects, largest first."""
        events: List[TelemetryEvent] = []
        for t in self.traces:
            events.extend(TelemetryEvent.from_dict(e) for e in t["events"])
        trees = assemble_traces(events)
        return sorted(trees.values(), key=lambda t: (-len(t), t.trace_id))

    def format(self, *, max_nodes: int = 60, width: int = 60) -> str:
        """Human-readable postmortem: verdicts, series, causal trees."""
        lines = [
            f"postmortem: {self.reason} @ {self.triggered_at:.3f}s "
            f"(window [{self.window_start:.3f}s, {self.window_end:.3f}s])"
        ]
        if self.check:
            c = self.check
            lines.append(
                f"  failing check: {c.get('name')} "
                f"value={float(c.get('value', 0.0)):.4g} "
                f"threshold={float(c.get('threshold', 0.0)):.4g}"
            )
        if self.report:
            for c in self.report.get("checks", []):
                mark = "ok " if c.get("ok") else "FAIL"
                lines.append(
                    f"  [{mark}] {c.get('name'):<14} "
                    f"value={float(c.get('value', 0.0)):.4g} "
                    f"threshold={float(c.get('threshold', 0.0)):.4g}"
                )
        shown = 0
        for s in self.series:
            if s.get("server") is not None or not s.get("raw"):
                continue
            vals = [v for _, v in s["raw"]]
            lines.append(
                f"  {s['name']:<24} {sparkline(vals, width=width)}  "
                f"last={vals[-1]:.4g}"
            )
            shown += 1
        if not shown:
            lines.append("  (no series captured in the breach window)")
        if self.quality:
            snap = self.quality.get("snapshot", {})
            lines.append(
                "  answer quality: "
                f"precision={float(snap.get('precision', 1.0)):.4g} "
                f"recall={float(snap.get('recall', 1.0)):.4g} "
                f"fp={int(snap.get('fp', 0))} fn={int(snap.get('fn', 0))} "
                f"over {int(snap.get('audits', 0))} audits"
            )
            last = self.quality.get("last_report") or {}
            for a in last.get("attributions", [])[:5]:
                age = a.get("staleness_age")
                lines.append(
                    f"    {a.get('kind')}: server {a.get('server_id')} via "
                    f"{a.get('table')}[{a.get('src_id')}] @ holder "
                    f"{a.get('holder_id')} (L{a.get('holder_level')}), "
                    f"dim={a.get('dimension')}, "
                    f"age={age if age is None else format(float(age), '.3g')}"
                    f", {a.get('reason')}"
                )
        lines.append(
            f"  event rings: {len(self.rings)} rings, "
            f"{self.ring_events} events"
        )
        trees = self.trace_trees()
        lines.append(f"  overlapping causal traces: {len(trees)}")
        for tree in trees[:3]:
            lines.append(f"  trace {tree.trace_id} ({len(tree)} nodes):")
            for row in tree.format(max_nodes=max_nodes).splitlines():
                lines.append(f"    {row}")
        return "\n".join(lines)


class FlightRecorder:
    """Per-server black-box event rings plus postmortem capture.

    Parameters
    ----------
    telemetry:
        The recorder subscribes to this recorder's event bus; every
        emitted event lands in the ring of the server it is attributed
        to (the ``server`` tag, else ``dst``, else the unattributed
        ring).
    sampler:
        Optional :class:`~repro.telemetry.series.SeriesSampler` whose
        breach-window points are frozen into each bundle.
    ring_size:
        Events retained per server ring.
    window_before:
        Sim-seconds of history a bundle's series window covers.
    max_trace_trees:
        Cap on causal trees stored per bundle (largest kept).
    max_bundles:
        Bundles retained in :attr:`bundles` (oldest evicted).
    dump_dir:
        When set, every captured bundle is also written under this
        directory as ``postmortem_<n>_<reason>.json``.
    """

    def __init__(
        self,
        telemetry,
        *,
        sampler=None,
        ring_size: int = 256,
        window_before: float = 5.0,
        max_trace_trees: int = 8,
        max_bundles: int = 16,
        dump_dir=None,
    ):
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        if window_before <= 0:
            raise ValueError(
                f"window_before must be positive, got {window_before}"
            )
        self.telemetry = telemetry
        self.sampler = sampler
        self.ring_size = ring_size
        self.window_before = window_before
        self.max_trace_trees = max_trace_trees
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self._rings: Dict[Optional[int], deque] = {}
        self.bundles: deque = deque(maxlen=max_bundles)
        #: paths of bundles written to ``dump_dir``
        self.dumped: List[Path] = []
        self._captured = 0
        self._unsubscribe = telemetry.bus.subscribe(self._on_event)

    # -- recording ------------------------------------------------------------------
    def _on_event(self, event: TelemetryEvent) -> None:
        key = _ring_key(event)
        ring = self._rings.get(key)
        if ring is None:
            ring = self._rings[key] = deque(maxlen=self.ring_size)
        ring.append(event)

    def close(self) -> None:
        """Stop observing the bus (rings and bundles stay readable)."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def ring(self, server: Optional[int]) -> List[TelemetryEvent]:
        """Snapshot of one server's ring, oldest first."""
        return list(self._rings.get(server, ()))

    @property
    def ring_servers(self) -> List[Optional[int]]:
        return sorted(
            self._rings, key=lambda k: (k is None, k if k is not None else 0)
        )

    # -- probe wiring ---------------------------------------------------------------
    def bind(self, probe) -> "FlightRecorder":
        """Arm SLO-triggered capture: the probe's ok→fail transitions
        call :meth:`trigger` with the failing check attached."""
        probe.on_breach = self._on_breach
        self._probe = probe
        return self

    def _on_breach(self, check, sample) -> None:
        probe = getattr(self, "_probe", None)
        report = None
        quality = None
        if probe is not None and probe.slo is not None:
            report = probe.report(probe.slo).to_dict()
        if probe is not None:
            plane = getattr(probe.system, "quality", None)
            if plane is not None:
                # The misrouted query's causal trace is already frozen by
                # trigger(); this pins the oracle verdict next to it.
                quality = plane.breach_evidence()
        self.trigger(
            f"slo:{check.name}",
            check={
                "name": check.name,
                "ok": check.ok,
                "value": check.value,
                "threshold": check.threshold,
                "detail": check.detail,
            },
            report=report,
            quality=quality,
        )

    # -- capture --------------------------------------------------------------------
    def trigger(
        self,
        reason: str = "manual",
        *,
        check: Optional[Dict[str, object]] = None,
        report: Optional[Dict[str, object]] = None,
        quality: Optional[Dict[str, object]] = None,
    ) -> PostmortemBundle:
        """Freeze the current evidence window into a bundle."""
        now = self.telemetry.now
        window_start = now - self.window_before
        series = (
            self.sampler.window_dict(window_start, now)
            if self.sampler is not None
            else []
        )
        rings: List[Dict[str, object]] = []
        all_events: List[TelemetryEvent] = []
        for key in self.ring_servers:
            events = self.ring(key)
            all_events.extend(events)
            rings.append({
                "server": key,
                "events": [e.to_dict() for e in events],
            })
        trees = assemble_traces(all_events)
        overlapping = [
            t for t in trees.values()
            if any(
                n.start <= now and n.end >= window_start
                for n in t.nodes.values()
            )
        ]
        overlapping.sort(key=lambda t: (-len(t), t.trace_id))
        traces = [
            {
                "trace_id": t.trace_id,
                "events": [
                    n.event.to_dict()
                    for n in sorted(
                        t.nodes.values(), key=lambda n: (n.start, n.span_id)
                    )
                ],
            }
            for t in overlapping[: self.max_trace_trees]
        ]
        bundle = PostmortemBundle(
            reason=reason,
            triggered_at=now,
            window_start=window_start,
            window_end=now,
            check=check,
            report=report,
            series=series,
            rings=rings,
            traces=traces,
            quality=quality,
        )
        self.bundles.append(bundle)
        self._captured += 1
        if self.dump_dir is not None:
            slug = re.sub(r"[^A-Za-z0-9_.-]+", "-", reason).strip("-")
            path = self.dump_dir / (
                f"postmortem_{self._captured:03d}_{slug}.json"
            )
            self.dumped.append(bundle.dump(path))
        return bundle
