"""Answer-quality observatory: a ground-truth shadow oracle.

The paper's Figures 4/5 trade update bytes against *false positives* —
queries routed into branches whose stale replicated summaries claimed
matches that the authoritative leaf data no longer supports. The rest of
the observability stack measures latency and load; this module measures
**answer quality** with ground truth.

After every completed search the :class:`QualityPlane` recomputes the
exact answer directly from the authoritative leaf record stores and
classifies every server the search touched or pruned:

* **TP** — contacted, and the region its visit covered really holds
  matching raw records;
* **FP** — contacted, but no raw record anywhere in the covered region
  matches: the summary that justified the visit lied (bloom-filter
  collision, histogram coarseness, or staleness);
* **FN** — not contacted although its locally attached owners would have
  answered with real records: the summary that pruned it lied (stale,
  expired, or never arrived);
* **TN** — correctly pruned.

Every FP/FN carries a :class:`DivergenceAttribution` naming the *specific
summary that lied*: which server held it, in which table (child branch /
overlay replica / ancestor-local), which source branch it summarised, its
staleness age at audit time, and the first predicate dimension whose
per-attribute summary diverged from the raw data.

Two truth notions are deliberately asymmetric:

* *raw truth* (``query.mask(store).any()``) judges **visits** — a summary's
  job is to predict raw matches, so a visit that finds raw records which a
  sharing policy then filters to an empty answer was still justified;
* *policy truth* (``policies.answer(...)`` non-empty) judges **prunes** —
  a missed server only costs the user real, returnable records.

Policy truth is a subset of raw truth, so no server is ever both FP and FN.

**Non-perturbation.** The audit runs synchronously inside the search
completion path and only *reads*: numpy masks over the leaf stores, the
hierarchy's summary tables, and the outcome's arrival map. It schedules
no events, sends no messages, and draws no randomness, so a quality-on
arm is event-for-event identical to a quality-off arm — same latencies,
same delivery census — the same tripwire the tracing and series planes
hold. Its wall cost is visible as the ``quality.audit`` frame in the
call-path profiler.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..query.query import Query

__all__ = [
    "DivergenceAttribution",
    "QualityReport",
    "QualityPlane",
]

#: divergence dimension reported when every predicate individually matches
#: raw data somewhere in the region but no single record satisfies the
#: conjunction — the per-dimension summaries were each truthful, the lie
#: is the independence assumption of combining them
CONJUNCTION = "(conjunction)"

#: audit-time summary state already agrees with the query — the summary
#: was refreshed between the routing decision and the audit
REFRESHED = "(refreshed)"


@dataclass(frozen=True)
class DivergenceAttribution:
    """One false positive/negative pinned on the summary that lied."""

    #: the misjudged server (visited in vain, or wrongly pruned)
    server_id: int
    #: ``"fp"`` (visited, region empty) or ``"fn"`` (pruned, had answers)
    kind: str
    #: summary table the lying entry lived in: ``"child"`` (branch
    #: summary at the parent), ``"replica"`` (overlay branch replica) or
    #: ``"replica_local"`` (ancestor local-owners replica)
    table: str
    #: server that held the lying summary and made the routing call
    holder_id: int
    #: the holder's hierarchy level (root = 0)
    holder_level: int
    #: branch the lying summary describes (its source server id)
    src_id: int
    #: ``now - summary.created_at`` at audit time; None when the lie is
    #: the summary's absence
    staleness_age: Optional[float]
    #: first query attribute whose per-dimension summary diverged from
    #: the raw leaf data (or a ``(...)`` pseudo-dimension)
    dimension: str
    #: why the summary lied: ``divergence`` / ``conjunction`` /
    #: ``stale-divergence`` / ``expired`` / ``missing`` / ``refreshed-since``
    reason: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "server_id": self.server_id,
            "kind": self.kind,
            "table": self.table,
            "holder_id": self.holder_id,
            "holder_level": self.holder_level,
            "src_id": self.src_id,
            "staleness_age": self.staleness_age,
            "dimension": self.dimension,
            "reason": self.reason,
        }


@dataclass
class QualityReport:
    """Oracle verdict for one completed search."""

    query_id: int
    trace_id: Optional[str]
    audited_at: float
    start_server: int
    entry_mode: str
    #: server-level confusion counts over the search's coverage region
    tp: int = 0
    fp: int = 0
    fn: int = 0
    tn: int = 0
    #: servers the search contacted (hierarchy servers only)
    contacted: int = 0
    #: timed-out / shed servers — unreachable, excluded from FN
    unreachable: List[int] = field(default_factory=list)
    #: owner-level contacts that answered empty with no raw match
    owner_false_positives: int = 0
    #: owner-level contacts that answered or held raw matches
    owner_hits: int = 0
    attributions: List[DivergenceAttribution] = field(default_factory=list)

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 1.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "query_id": self.query_id,
            "trace_id": self.trace_id,
            "audited_at": self.audited_at,
            "start_server": self.start_server,
            "entry_mode": self.entry_mode,
            "tp": self.tp,
            "fp": self.fp,
            "fn": self.fn,
            "tn": self.tn,
            "contacted": self.contacted,
            "unreachable": list(self.unreachable),
            "owner_false_positives": self.owner_false_positives,
            "owner_hits": self.owner_hits,
            "precision": self.precision,
            "recall": self.recall,
            "attributions": [a.to_dict() for a in self.attributions],
        }


class _Edge:
    """How the shadow walk justified contacting one server."""

    __slots__ = ("mode", "holder_id", "table", "src_id")

    def __init__(self, mode, holder_id=None, table=None, src_id=None):
        self.mode = mode
        self.holder_id = holder_id
        self.table = table
        self.src_id = src_id


class QualityPlane:
    """Shadow oracle auditing every completed search against ground truth.

    Strictly read-only over the simulation: attach it, run searches, and
    read the cumulative gauges — the simulated behaviour is byte-identical
    to an unaudited run.
    """

    def __init__(self, system, *, max_reports: int = 256):
        self._system = system
        self.audits = 0
        self.tp = 0
        self.fp = 0
        self.fn = 0
        self.tn = 0
        self.owner_false_positives = 0
        self.owner_hits = 0
        #: per-server cumulative confusion counts (server_id -> counts)
        self.per_node: Dict[int, Dict[str, int]] = {}
        self._age_sum = 0.0
        self._age_count = 0
        self.reports: Deque[QualityReport] = deque(maxlen=max_reports)

    # -- aggregate gauges ----------------------------------------------------------
    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 1.0

    @property
    def fp_rate(self) -> float:
        denom = self.fp + self.tn
        return self.fp / denom if denom else 0.0

    @property
    def divergence_age_mean(self) -> float:
        return self._age_sum / self._age_count if self._age_count else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "audits": self.audits,
            "tp": self.tp,
            "fp": self.fp,
            "fn": self.fn,
            "tn": self.tn,
            "precision": self.precision,
            "recall": self.recall,
            "fp_rate": self.fp_rate,
            "divergence_age_mean": self.divergence_age_mean,
            "owner_false_positives": self.owner_false_positives,
            "owner_hits": self.owner_hits,
        }

    def breach_evidence(self) -> Dict[str, object]:
        """What a postmortem bundle freezes when a quality SLO breaches."""
        last = self.reports[-1] if self.reports else None
        return {
            "snapshot": self.snapshot(),
            "last_report": last.to_dict() if last is not None else None,
        }

    # -- satellite: oracle-backed owner false-positive verdict -----------------------
    def owner_false_positive(self, query: Query, owner, answered: int) -> bool:
        """Empty answer *and* no raw match: the summary, not policy, lied."""
        if answered > 0:
            return False
        return not bool(query.mask(owner.origin).any())

    # -- the audit -------------------------------------------------------------------
    def audit(self, request, outcome) -> QualityReport:
        """Classify every contacted/pruned server for one finished search."""
        system = self._system
        hierarchy = system.hierarchy
        now = system.sim.now
        query = outcome.query
        entry = hierarchy.get(outcome.start_server)
        entry_mode = request.entry_mode

        report = QualityReport(
            query_id=query.query_id,
            trace_id=outcome.trace_id,
            audited_at=now,
            start_server=entry.server_id,
            entry_mode=entry_mode,
        )

        contacted: Set[int] = {
            sid for sid in outcome.arrivals if sid in hierarchy
        }
        report.contacted = len(contacted)
        unreachable: Set[int] = {
            sid
            for sid in set(outcome.timed_out_servers) | set(outcome.shed_servers)
            if sid in hierarchy
        }
        report.unreachable = sorted(unreachable)

        raw_truth: Dict[int, bool] = {}
        policy_truth: Dict[int, bool] = {}
        subtree_truth: Dict[int, bool] = {}

        def local_raw(sid: int) -> bool:
            hit = raw_truth.get(sid)
            if hit is None:
                hit = any(
                    bool(query.mask(o.origin).any())
                    for o in hierarchy.get(sid).owners
                )
                raw_truth[sid] = hit
            return hit

        def local_policy(sid: int) -> bool:
            hit = policy_truth.get(sid)
            if hit is None:
                hit = any(
                    len(system.policies.answer(o.owner_id, query, o.origin)) > 0
                    for o in hierarchy.get(sid).owners
                )
                policy_truth[sid] = hit
            return hit

        def subtree_raw(sid: int) -> bool:
            hit = subtree_truth.get(sid)
            if hit is None:
                hit = any(
                    local_raw(s.server_id)
                    for s in hierarchy.get(sid).iter_subtree()
                )
                subtree_truth[sid] = hit
            return hit

        edges = self._shadow_walk(query, entry, entry_mode, contacted, now)

        # -- contacted servers: TP or FP over the region each visit covered
        for sid in sorted(contacted):
            edge = edges.get(sid)
            if edge is None:
                # Reached outside the audit-time walk (a summary changed
                # mid-flight); judge it as a descent from its parent.
                server = hierarchy.get(sid)
                parent = (
                    server.root_path[-2] if len(server.root_path) > 1 else sid
                )
                edge = _Edge("descent", parent, "child", sid)
            if sid == entry.server_id:
                # Entering somewhere is a protocol necessity, never a lie.
                if local_raw(sid):
                    report.tp += 1
                    self._count(sid, "tp")
                continue
            region_hit = (
                local_raw(sid) if edge.mode == "local" else subtree_raw(sid)
            )
            if region_hit:
                report.tp += 1
                self._count(sid, "tp")
            else:
                report.fp += 1
                self._count(sid, "fp")
                report.attributions.append(
                    self._attribute_fp(query, sid, edge, now, local_raw)
                )

        # -- pruned servers: FN (real answers missed) or TN over the cover
        for server in self._cover(entry, entry_mode):
            sid = server.server_id
            if sid in contacted:
                continue
            if sid in unreachable:
                # The route was right; the network lost it. Counted in
                # ``unreachable``, excluded from summary attribution.
                continue
            if local_policy(sid):
                report.fn += 1
                self._count(sid, "fn")
                report.attributions.append(
                    self._attribute_fn(query, server, entry, edges, now)
                )
            else:
                report.tn += 1
                self._count(sid, "tn")

        # -- owner-level oracle verdicts over the recorded hits
        for hit in outcome.owner_hits:
            owner = self._find_owner(hit.server_id, hit.owner_id)
            if owner is None:
                continue
            if hit.match_count == 0 and not bool(query.mask(owner.origin).any()):
                report.owner_false_positives += 1
                self.owner_false_positives += 1
            else:
                report.owner_hits += 1
                self.owner_hits += 1

        for attribution in report.attributions:
            if attribution.staleness_age is not None:
                self._age_sum += attribution.staleness_age
                self._age_count += 1
        self.tp += report.tp
        self.fp += report.fp
        self.fn += report.fn
        self.tn += report.tn
        self.audits += 1
        self.reports.append(report)
        return report

    # -- internals ---------------------------------------------------------------
    def _count(self, sid: int, key: str) -> None:
        counts = self.per_node.get(sid)
        if counts is None:
            counts = {"tp": 0, "fp": 0, "fn": 0, "tn": 0}
            self.per_node[sid] = counts
        counts[key] += 1

    def _find_owner(self, server_id: int, owner_id: int):
        hierarchy = self._system.hierarchy
        if server_id not in hierarchy:
            return None
        for owner in hierarchy.get(server_id).owners:
            if owner.owner_id == owner_id:
                return owner
        return None

    def _cover(self, entry, entry_mode: str):
        """Servers the search claimed responsibility for pruning."""
        if entry_mode == "start":
            return self._system.hierarchy.servers()
        if entry_mode == "descent":
            return list(entry.iter_subtree())
        return [entry]

    def _shadow_walk(
        self,
        query: Query,
        entry,
        entry_mode: str,
        contacted: Set[int],
        now: float,
    ) -> Dict[int, _Edge]:
        """Re-run the routing decisions to justify each contacted server.

        Replays :func:`decide_start` / :func:`decide_descent` /
        :func:`decide_local` from the entry server at audit time, but only
        follows redirects the real search actually took, recording for
        each contacted server which holder's summary table sent the
        client there.
        """
        # Imported here: the overlay package pulls in sim.metrics, which
        # imports telemetry — a module-level import would be circular.
        from ..overlay.routing import (
            decide_descent,
            decide_local,
            decide_start,
        )

        hierarchy = self._system.hierarchy
        cfg = self._system.config.summary
        decide = {
            "start": decide_start,
            "descent": decide_descent,
            "local": decide_local,
        }
        edges: Dict[int, _Edge] = {entry.server_id: _Edge(entry_mode)}
        stack: List[Tuple[int, str]] = [(entry.server_id, entry_mode)]
        while stack:
            sid, mode = stack.pop()
            server = hierarchy.get(sid)
            decision = decide[mode](server, query, cfg, now)
            children = set(server.child_ids())
            for rid in decision.redirect_ids:
                if rid not in contacted or rid in edges:
                    continue
                table = "child" if rid in children else "replica"
                edges[rid] = _Edge("descent", sid, table, rid)
                stack.append((rid, "descent"))
            for oid in decision.owners_only_ids:
                if oid not in contacted or oid in edges:
                    continue
                edges[oid] = _Edge("local", sid, "replica_local", oid)
                # owners-only visits never fan out further
        return edges

    def _summary_for(self, holder_id: int, table: str, src_id: int):
        hierarchy = self._system.hierarchy
        if holder_id not in hierarchy:
            return None, None
        holder = hierarchy.get(holder_id)
        summary = holder._summary_table(table).get(src_id)
        return holder, summary

    def _region_stores(self, sid: int, mode: str):
        hierarchy = self._system.hierarchy
        if mode == "local":
            servers = [hierarchy.get(sid)]
        else:
            servers = list(hierarchy.get(sid).iter_subtree())
        for server in servers:
            for owner in server.owners:
                yield owner.origin

    def _attribute_fp(
        self, query: Query, sid: int, edge: _Edge, now: float, local_raw
    ) -> DivergenceAttribution:
        """Which summary dimension claimed matches the region can't hold."""
        holder_id = edge.holder_id if edge.holder_id is not None else sid
        table = edge.table or "child"
        src_id = edge.src_id if edge.src_id is not None else sid
        holder, summary = self._summary_for(holder_id, table, src_id)
        level = holder.depth if holder is not None else 0
        age = now - summary.created_at if summary is not None else None

        dimension = CONJUNCTION
        reason = "conjunction"
        stores = list(self._region_stores(sid, edge.mode))
        for pred in query.predicates:
            region_dim_hit = any(
                bool(pred.mask(store).any()) for store in stores
            )
            if region_dim_hit:
                continue
            # No raw record in the region matches this dimension alone —
            # the summary's per-dimension structure claimed otherwise.
            if summary is not None:
                attr = summary.attributes.get(pred.attribute)
                if attr is not None and attr.may_match(pred):
                    dimension, reason = pred.attribute, "divergence"
                    break
            dimension, reason = pred.attribute, "divergence"
            break
        if summary is None:
            reason = "missing"
        return DivergenceAttribution(
            server_id=sid,
            kind="fp",
            table=table,
            holder_id=holder_id,
            holder_level=level,
            src_id=src_id,
            staleness_age=age,
            dimension=dimension,
            reason=reason,
        )

    def _attribute_fn(
        self, query: Query, server, entry, edges: Dict[int, _Edge], now: float
    ) -> DivergenceAttribution:
        """Which summary pruned a server that held real answers."""
        hierarchy = self._system.hierarchy
        sid = server.server_id
        entry_path = set(entry.root_path)
        holder_id, table, src_id = entry.server_id, "child", sid

        if sid in entry.root_path[:-1]:
            # A proper ancestor of the entry: only its *local* owners were
            # in play, reachable through the entry's replica_local table.
            table, src_id = "replica_local", sid
        else:
            # Deepest contacted server that could have redirected toward
            # this branch wins the attribution; the summary it consulted
            # for the next hop on the path is the one that pruned.
            path = server.root_path
            branch = next(
                (rid for rid in path if rid not in entry_path), sid
            )
            holder_id, table, src_id = entry.server_id, "replica", branch
            if branch in set(entry.child_ids()):
                table = "child"
            best_depth = -1
            for pid, edge in edges.items():
                if edge.mode not in ("start", "descent"):
                    continue
                if pid not in path or pid == sid:
                    continue
                depth = hierarchy.get(pid).depth
                if depth > best_depth:
                    best_depth = depth
                    nxt = path[path.index(pid) + 1]
                    holder_id, table, src_id = pid, "child", nxt

        holder, summary = self._summary_for(holder_id, table, src_id)
        level = holder.depth if holder is not None else 0
        age = now - summary.created_at if summary is not None else None

        if summary is None:
            dimension, reason = query.predicates[0].attribute, "missing"
        elif summary.is_expired(now):
            dimension, reason = query.predicates[0].attribute, "expired"
        else:
            # The pruned server's records match *all* predicates, so at
            # decision time some per-dimension summary must have said no.
            dimension, reason = REFRESHED, "refreshed-since"
            for pred in query.predicates:
                attr = summary.attributes.get(pred.attribute)
                if attr is None or not attr.may_match(pred):
                    dimension, reason = pred.attribute, "stale-divergence"
                    break
        return DivergenceAttribution(
            server_id=sid,
            kind="fn",
            table=table,
            holder_id=holder_id,
            holder_level=level,
            src_id=src_id,
            staleness_age=age,
            dimension=dimension,
            reason=reason,
        )
