"""Streaming percentile histogram.

Latency distributions (query p50/p95/p99 per server) must not require
storing every sample — a paper-scale run issues hundreds of thousands of
messages. :class:`StreamingHistogram` keeps sparse geometric buckets
(HdrHistogram-style): each bucket spans a fixed ratio ``growth``, so the
relative quantile error is bounded by ``growth - 1`` regardless of how
many samples arrive, and memory is O(log(max/min)).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple


class StreamingHistogram:
    """Fixed-relative-error quantile sketch over positive values.

    Values at or below ``min_value`` share the underflow bucket 0;
    larger values land in bucket ``1 + floor(log(v / min_value) /
    log(growth))``. Percentiles interpolate inside the winning bucket
    and are clamped to the observed min/max, so small sample counts
    behave sensibly too.
    """

    __slots__ = ("min_value", "growth", "_log_growth", "_buckets",
                 "count", "total", "min", "max")

    def __init__(self, min_value: float = 1e-6, growth: float = 1.04):
        if min_value <= 0:
            raise ValueError("min_value must be positive")
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.min_value = min_value
        self.growth = growth
        self._log_growth = math.log(growth)
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        return 1 + int(math.log(value / self.min_value) / self._log_growth)

    def _bounds(self, index: int) -> Tuple[float, float]:
        if index == 0:
            return (0.0, self.min_value)
        lo = self.min_value * self.growth ** (index - 1)
        return (lo, lo * self.growth)

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative sample: {value}")
        idx = self._index(value)
        self._buckets[idx] = self._buckets.get(idx, 0) + 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def record_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.record(v)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Approximate the *pct*-th percentile (0..100)."""
        if not (0.0 <= pct <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        if self.count == 0:
            return 0.0
        rank = pct / 100.0 * self.count
        seen = 0
        for idx in sorted(self._buckets):
            n = self._buckets[idx]
            seen += n
            if seen >= rank:
                lo, hi = self._bounds(idx)
                # Interpolate within the bucket by rank position.
                frac = 1.0 - max(0.0, (seen - rank) / n)
                value = lo + (hi - lo) * frac
                return min(max(value, self.min), self.max)
        return self.max

    def percentiles(self, pcts: Iterable[float]) -> List[float]:
        return [self.percentile(p) for p in pcts]

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Fold *other* into self (bucket layouts must agree)."""
        if (other.min_value, other.growth) != (self.min_value, self.growth):
            raise ValueError("cannot merge histograms with different layouts")
        for idx, n in other._buckets.items():
            self._buckets[idx] = self._buckets.get(idx, 0) + n
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }
