"""Central repository baseline."""

from .system import CentralConfig, CentralQueryOutcome, CentralSystem

__all__ = ["CentralConfig", "CentralSystem", "CentralQueryOutcome"]
