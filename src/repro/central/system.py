"""Central repository baseline.

Every resource owner exports its raw records to one repository, which
answers queries locally (Section IV). One query/reply round trip, but a
single machine does all the searching and record retrieval — which is why
ROADS' parallel retrieval overtakes it at higher selectivities (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..net.coordinates import DelaySpace
from ..query.query import Query
from ..records.store import RecordStore
from ..sim.rng import SeedSequenceFactory

_RECORD_HEADER_BYTES = 16
_PROCESSING_DELAY = 0.0005


@dataclass(frozen=True)
class CentralConfig:
    """Parameters of the central-repository deployment."""

    num_nodes: int = 320
    record_interval: float = 6.0  # t_r
    delay_scale_ms: float = 100.0
    delay_base_ms: float = 10.0
    delay_jitter_ms: float = 5.0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.record_interval <= 0:
            raise ValueError("record_interval must be positive")


@dataclass
class CentralQueryOutcome:
    query: Query
    client_node: int
    latency: float = 0.0  # one-way, query reaching the repository
    round_trip: float = 0.0  # query + reply, excluding search time
    query_bytes: int = 0
    match_count: int = 0
    matches: Optional[RecordStore] = None

    @property
    def servers_contacted(self) -> int:
        return 1


class CentralSystem:
    """All records in one repository; clients query it directly."""

    #: the repository occupies one extra point in the delay space
    def __init__(self, config: CentralConfig, stores: Sequence[RecordStore]):
        if len(stores) != config.num_nodes:
            raise ValueError(
                f"config.num_nodes={config.num_nodes} but "
                f"{len(stores)} stores supplied"
            )
        self.config = config
        seeds = SeedSequenceFactory(config.seed)
        self.delay_space = DelaySpace(
            config.num_nodes + 1,
            seeds.generator("delay-space"),
            scale_ms=config.delay_scale_ms,
            base_ms=config.delay_base_ms,
            jitter_ms=config.delay_jitter_ms,
        )
        self.repository_node = config.num_nodes
        self.store = stores[0]
        for s in stores[1:]:
            self.store = self.store.merged_with(s)
        self._per_owner_records = [len(s) for s in stores]
        self.record_size_bytes = (
            self.store.schema.record_size_bytes + _RECORD_HEADER_BYTES
        )

    # -- overheads ----------------------------------------------------------------
    def export_bytes_per_epoch(self) -> int:
        """Every owner re-exports every record once per t_r epoch."""
        return sum(self._per_owner_records) * self.record_size_bytes

    def update_overhead(self, window_seconds: float) -> int:
        epochs = max(1, int(round(window_seconds / self.config.record_interval)))
        return self.export_bytes_per_epoch() * epochs

    def storage_bytes(self) -> int:
        return len(self.store) * self.record_size_bytes

    # -- queries ----------------------------------------------------------------
    def execute_query(
        self, query: Query, client_node: int, *, collect_records: bool = False
    ) -> CentralQueryOutcome:
        one_way = (
            self.delay_space.latency(client_node, self.repository_node)
            + _PROCESSING_DELAY
        )
        mask = query.mask(self.store)
        count = int(mask.sum())
        return CentralQueryOutcome(
            query=query,
            client_node=client_node,
            latency=one_way,
            round_trip=2.0 * one_way,
            query_bytes=query.size_bytes,
            match_count=count,
            matches=self.store.select(mask) if collect_records else None,
        )

    def execute_queries(
        self, queries: Sequence[Query], client_nodes: Sequence[int]
    ) -> List[CentralQueryOutcome]:
        return [
            self.execute_query(q, int(c)) for q, c in zip(queries, client_nodes)
        ]
