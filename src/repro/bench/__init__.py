"""Benchmark observatory: perf artifacts, trajectory and regression gate.

The subsystem behind ``python -m repro bench``:

* :mod:`repro.bench.scenarios` — a registry wrapping the figure drivers
  behind a uniform ``run_scenario(RunPlan) -> BenchArtifact`` API;
* :mod:`repro.bench.parallel` — the process-pool sweep runner: plan
  fan-out with deterministic artifact merging, plus the ``stress``
  scale's shard sweep;
* :mod:`repro.bench.artifact` — the canonical ``BENCH_<scenario>.json``
  format (provenance stamp, paper-series rows, registry-derived
  simulated metrics, wall-clock section profile);
* :mod:`repro.bench.profiler` — back-compat flat view over the
  hierarchical :class:`repro.telemetry.profiling.CallPathProfiler`
  threaded through the sim engine, transport, aggregation and query
  path (free when no profiler is attached);
* :mod:`repro.bench.compare` — tolerance-banded artifact diffing plus
  paper-shape re-assertion (the CI regression sentinel);
* :mod:`repro.bench.trajectory` — the append-only
  ``BENCH_trajectory.json`` perf time series.
"""

from .artifact import (
    SCHEMA,
    BenchArtifact,
    artifact_filename,
    config_fingerprint,
    git_rev,
    load_artifact,
    validate_artifact,
    write_artifact,
)
from .compare import (
    DEFAULT_TOLERANCE,
    DEFAULT_WALL_TOLERANCE,
    PROFILE_SHARE_FLOOR,
    ComparisonResult,
    MetricDelta,
    compare_artifacts,
    format_comparison,
)
from .parallel import (
    SWEEP_SCHEMA,
    comparable_dict,
    default_workers,
    merge_artifacts,
    run_plans,
    seed_sweep,
    stress_shard_rows,
)
from .profiler import WallClockProfiler
from .scenarios import (
    ROOT_SHARE_CEILING,
    SCALES,
    SCENARIOS,
    RunPlan,
    Scenario,
    available_scenarios,
    profile_scenario,
    resolve_scale,
    run_scenario,
    scale_settings,
    scale_sweeps,
)
from .trajectory import (
    TRAJECTORY_FILENAME,
    TRAJECTORY_SCHEMA,
    append_trajectory,
    format_trajectory,
    load_trajectory,
    trajectory_row,
)

__all__ = [
    "BenchArtifact",
    "SCHEMA",
    "artifact_filename",
    "config_fingerprint",
    "git_rev",
    "load_artifact",
    "validate_artifact",
    "write_artifact",
    "ComparisonResult",
    "MetricDelta",
    "DEFAULT_TOLERANCE",
    "DEFAULT_WALL_TOLERANCE",
    "PROFILE_SHARE_FLOOR",
    "compare_artifacts",
    "format_comparison",
    "WallClockProfiler",
    "SWEEP_SCHEMA",
    "comparable_dict",
    "default_workers",
    "merge_artifacts",
    "run_plans",
    "seed_sweep",
    "stress_shard_rows",
    "RunPlan",
    "Scenario",
    "SCENARIOS",
    "SCALES",
    "ROOT_SHARE_CEILING",
    "available_scenarios",
    "profile_scenario",
    "resolve_scale",
    "run_scenario",
    "scale_settings",
    "scale_sweeps",
    "TRAJECTORY_FILENAME",
    "TRAJECTORY_SCHEMA",
    "append_trajectory",
    "format_trajectory",
    "load_trajectory",
    "trajectory_row",
]
