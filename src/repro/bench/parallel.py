"""Process-pool benchmark fan-out.

Two fan-out shapes, both driven by :class:`~repro.bench.scenarios.
RunPlan` and both order-deterministic (results come back in input
order, so a pooled run merges to the same document as a serial one):

* :func:`run_plans` — run many plans with one worker process per plan
  (one trial per core); :func:`seed_sweep` builds the seed-partitioned
  plan list, :func:`merge_artifacts` folds the artifacts into one
  deterministic sweep document.
* :func:`stress_shard_rows` — the ``stress`` scale's shard sweep: the
  10^5-server federation is ~100 disjoint 1000-server shards, each
  built and measured in its own process with a seed derived from the
  shard index.

Wall-clock fields are inherently host- and load-dependent, so
:func:`comparable_dict` gives the volatile-free view of an artifact
that determinism checks (N-worker == serial modulo wall rows) compare.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence

from ..experiments.config import ExperimentSettings
from .artifact import BenchArtifact

#: schema identifier of the merged sweep document
SWEEP_SCHEMA = "roads.bench.sweep/1"

#: metric namespaces that measure the host, not the simulation
_VOLATILE_METRIC_PREFIXES = ("wall.", "profile.share.")


def default_workers() -> int:
    """One worker per core (at least one)."""
    return max(1, os.cpu_count() or 1)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a worker count: ``None``/``1`` serial, ``0`` one per core."""
    if workers is None:
        return 1
    if not isinstance(workers, int) or workers < 0:
        raise ValueError(
            f"workers must be an int >= 0 (0 = one per core), got {workers!r}"
        )
    return workers if workers else default_workers()


# -- plan fan-out ---------------------------------------------------------------
def _plan_worker(plan) -> BenchArtifact:
    # Module-level so the plan (a plain frozen dataclass) is the only
    # thing pickled to the worker process.
    from .scenarios import run_scenario

    return run_scenario(plan)


def run_plans(plans: Iterable, *, workers: Optional[int] = None) -> List[BenchArtifact]:
    """Run every plan; returns artifacts in input order.

    With ``workers`` > 1 (or ``0`` = one per core) plans run in a
    process pool; each worker executes :func:`~repro.bench.scenarios.
    run_scenario` on its plan. Ordering, seeding and artifact content
    are identical to the serial path — only the ``wall``/``profile
    share`` blocks (host measurements) differ run to run.
    """
    from .scenarios import RunPlan, run_scenario

    plans = list(plans)
    for plan in plans:
        if not isinstance(plan, RunPlan):
            raise TypeError(
                f"run_plans expects RunPlan items, got {type(plan).__name__}"
            )
    pool_size = min(resolve_workers(workers), len(plans)) if plans else 0
    if pool_size <= 1:
        return [run_scenario(plan) for plan in plans]
    with ProcessPoolExecutor(max_workers=pool_size) as pool:
        return list(pool.map(_plan_worker, plans, chunksize=1))


def seed_sweep(plan, seeds: Sequence[int]) -> List:
    """The seed-partitioned plan list: one plan per seed, same shape."""
    return [plan.with_(seed=int(seed)) for seed in seeds]


def comparable_dict(artifact) -> Dict[str, object]:
    """Artifact view with every volatile (wall-clock) field stripped.

    Two runs of the same plan — serial or pooled, on any host — must
    agree exactly on this view; it is the currency of the determinism
    tripwires and of :func:`merge_artifacts`.
    """
    doc = artifact.to_dict() if isinstance(artifact, BenchArtifact) else dict(artifact)
    doc = dict(doc)
    doc.pop("created_unix", None)
    doc["wall"] = {}
    doc["metrics"] = {
        k: v
        for k, v in doc["metrics"].items()
        if not k.startswith(_VOLATILE_METRIC_PREFIXES)
    }
    profile = dict(doc.get("profile") or {})
    profile.pop("total_seconds", None)
    profile.pop("hotspot_shares", None)
    doc["profile"] = profile
    doc["rows"] = [
        {k: v for k, v in row.items() if not str(k).startswith("wall_")}
        for row in doc["rows"]
    ]
    return doc


def merge_artifacts(artifacts: Iterable[BenchArtifact]) -> Dict[str, object]:
    """Fold a sweep's artifacts into one deterministic document.

    Runs are ordered by ``(scenario, scale, seed)`` — not completion
    order — and reduced to their :func:`comparable_dict` views, so the
    merged document is byte-identical however the sweep was scheduled.
    The top-level ``metrics`` block is the cross-run mean of each
    deterministic metric.
    """
    arts = sorted(artifacts, key=lambda a: (a.scenario, a.scale, a.seed))
    if not arts:
        raise ValueError("merge_artifacts needs at least one artifact")
    runs = [comparable_dict(a) for a in arts]
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for doc in runs:
        for key, value in doc["metrics"].items():
            sums[key] = sums.get(key, 0.0) + float(value)
            counts[key] = counts.get(key, 0) + 1
    return {
        "schema": SWEEP_SCHEMA,
        "scenarios": sorted({a.scenario for a in arts}),
        "seeds": sorted({a.seed for a in arts}),
        "metrics": {k: sums[k] / counts[k] for k in sorted(sums)},
        "runs": runs,
    }


# -- stress shard sweep ---------------------------------------------------------
def shard_settings(settings: ExperimentSettings, shard: int) -> ExperimentSettings:
    """The per-shard settings: disjoint seed stream per shard index."""
    return settings.with_(seed=settings.seed * 100_000 + shard)


def _shard_worker(task) -> Dict[str, object]:
    settings, shard, num_queries = task
    from ..experiments.runner import build_roads, build_workload, trial_queries
    from ..roads.search import SearchRequest

    t0 = time.perf_counter()
    wcfg, stores = build_workload(settings, settings.seed)
    system = build_roads(settings, stores, settings.seed)
    # ``build`` already drove one summary epoch through the message
    # fabric; reuse its report instead of paying a second epoch.
    report = system.last_update_report
    queries, clients = trial_queries(settings, wcfg, settings.seed)
    queries, clients = queries[:num_queries], clients[:num_queries]
    latencies: List[float] = []
    query_bytes: List[int] = []
    for query, client in zip(queries, clients):
        outcome = system.search(
            SearchRequest(query, client_node=int(client))
        ).outcome
        latencies.append(outcome.latency)
        query_bytes.append(outcome.query_bytes)
    storage = system.storage_bytes_by_server()
    return {
        "shard": shard,
        "nodes": settings.num_nodes,
        "records_per_node": settings.records_per_node,
        "levels": system.levels,
        "latency_mean_s": sum(latencies) / max(1, len(latencies)),
        "query_bytes_mean": sum(query_bytes) / max(1, len(query_bytes)),
        "update_bytes_epoch": int(report.total_bytes),
        "update_messages_epoch": int(report.total_messages),
        "storage_bytes_mean": sum(storage.values()) / max(1, len(storage)),
        "wall_seconds": time.perf_counter() - t0,
    }


def stress_shard_rows(
    settings: ExperimentSettings, sweeps: Dict[str, object]
) -> List[Dict[str, object]]:
    """One row per shard of the sharded stress federation.

    Each shard is an independent ``settings``-sized federation with a
    seed derived from the shard index; shards are built and measured in
    parallel (``sweeps["workers"]``: ``0`` = one per core, ``1`` =
    in-process) and rows always come back in shard order, so the row
    set is independent of the worker count.
    """
    shards = int(sweeps.get("shards", 4))
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    num_queries = int(sweeps.get("shard_queries", 4))
    workers = min(resolve_workers(int(sweeps.get("workers", 1))), shards)
    tasks = [
        (shard_settings(settings, shard), shard, num_queries)
        for shard in range(shards)
    ]
    if workers <= 1:
        return [_shard_worker(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_shard_worker, tasks, chunksize=1))
