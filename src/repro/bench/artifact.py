"""Canonical ``BENCH_<scenario>.json`` benchmark artifacts.

Every benchmark run is stamped with enough provenance to make a later
comparison meaningful: the scenario and scale, the seed, a config
fingerprint (hash of the fully-resolved
:class:`~repro.experiments.config.ExperimentSettings`), and the git
revision of the working tree. The payload carries the paper-series rows,
a registry-derived simulated-metrics block, a wall-clock section profile
and the flat ``metrics`` dict that ``repro bench compare`` /
``trajectory`` consume.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional

from ..experiments.config import ExperimentSettings

#: artifact schema identifier; bump on incompatible layout changes
SCHEMA = "roads.bench/1"

_REQUIRED_KEYS = (
    "schema", "scenario", "scale", "seed", "git_rev",
    "config_fingerprint", "created_unix", "settings", "rows",
    "metrics", "simulated", "wall", "shape",
)


def config_fingerprint(settings: ExperimentSettings) -> str:
    """Stable short hash of the fully-resolved experiment settings."""
    doc = json.dumps(asdict(settings), sort_keys=True, default=str)
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:16]


def git_rev(repo_dir: Optional[Path] = None) -> str:
    """Current git revision, ``REPRO_GIT_REV`` override, or ``unknown``."""
    import os

    env = os.environ.get("REPRO_GIT_REV")
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_dir, capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


#: scenarios whose artifact file keeps a shorter stem than the
#: registry name (the quality plane's baseline is BENCH_quality.json)
_ARTIFACT_STEMS = {"quality_plane": "quality"}


def artifact_filename(scenario: str) -> str:
    return f"BENCH_{_ARTIFACT_STEMS.get(scenario, scenario)}.json"


@dataclass
class BenchArtifact:
    """One benchmark run: provenance + rows + metrics + wall profile."""

    scenario: str
    scale: str
    seed: int
    git_rev: str
    config_fingerprint: str
    created_unix: float
    settings: Dict[str, object]
    #: the paper-series rows the scenario's driver produced
    rows: List[Dict[str, object]]
    #: flat ``name -> float`` map; the compare/trajectory currency
    metrics: Dict[str, float]
    #: registry-derived block (latency percentiles, byte totals, shares)
    simulated: Dict[str, object]
    #: wall-clock profile (sections, counters, totals, events/sec)
    wall: Dict[str, object]
    #: paper-shape check outcome: {"failures": [...]}
    shape: Dict[str, object]
    #: hierarchical profile summary: hotspot self-time shares and the
    #: event-census fingerprint (empty for pre-profile artifacts)
    profile: Dict[str, object] = None  # type: ignore[assignment]
    schema: str = SCHEMA

    def __post_init__(self) -> None:
        if self.profile is None:
            self.profile = {}

    @property
    def ok(self) -> bool:
        return not self.shape.get("failures")

    def to_dict(self) -> Dict[str, object]:
        doc = asdict(self)
        # Keep provenance keys first for readable diffs.
        ordered = {k: doc[k] for k in _REQUIRED_KEYS}
        ordered["profile"] = doc["profile"]
        return ordered

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "BenchArtifact":
        problems = validate_artifact(doc)
        if problems:
            raise ValueError(
                "invalid bench artifact: " + "; ".join(problems)
            )
        # ``profile`` is optional so pre-profiling-plane artifacts load.
        return cls(
            profile=doc.get("profile") or {},
            **{k: doc[k] for k in _REQUIRED_KEYS},
        )


def validate_artifact(doc: Dict[str, object]) -> List[str]:
    """Schema check; returns human-readable problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["artifact is not a JSON object"]
    for key in _REQUIRED_KEYS:
        if key not in doc:
            problems.append(f"missing key {key!r}")
    if problems:
        return problems
    if doc["schema"] != SCHEMA:
        problems.append(
            f"schema {doc['schema']!r} != expected {SCHEMA!r}"
        )
    for key, typ in (
        ("scenario", str), ("scale", str), ("git_rev", str),
        ("config_fingerprint", str), ("seed", int),
        ("settings", dict), ("rows", list), ("metrics", dict),
        ("simulated", dict), ("wall", dict), ("shape", dict),
    ):
        if not isinstance(doc[key], typ):
            problems.append(
                f"{key} must be {typ.__name__}, got {type(doc[key]).__name__}"
            )
    if not isinstance(doc["created_unix"], (int, float)):
        problems.append("created_unix must be a number")
    if isinstance(doc["metrics"], dict):
        bad = [
            k for k, v in doc["metrics"].items()
            if not isinstance(v, (int, float))
        ]
        if bad:
            problems.append(f"non-numeric metrics: {sorted(bad)[:5]}")
    if isinstance(doc["shape"], dict) and "failures" not in doc["shape"]:
        problems.append("shape block missing 'failures'")
    if "profile" in doc and not isinstance(doc["profile"], dict):
        problems.append(
            f"profile must be dict, got {type(doc['profile']).__name__}"
        )
    return problems


def write_artifact(artifact: BenchArtifact, path) -> Path:
    """Write the artifact as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(artifact.to_dict(), indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
    return path


def load_artifact(path) -> BenchArtifact:
    """Load and schema-validate a ``BENCH_*.json`` artifact."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    return BenchArtifact.from_dict(doc)


def stamp(
    scenario: str,
    scale: str,
    seed: int,
    settings: ExperimentSettings,
) -> Dict[str, object]:
    """Provenance block shared by artifacts and trajectory rows."""
    return {
        "scenario": scenario,
        "scale": scale,
        "seed": seed,
        "git_rev": git_rev(),
        "config_fingerprint": config_fingerprint(settings),
        "created_unix": time.time(),
    }
