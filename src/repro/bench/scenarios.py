"""Scenario registry: uniform ``run_scenario(RunPlan) -> BenchArtifact``.

Wraps the existing figure drivers (:mod:`repro.experiments.figures`) and
the instrumented overlay/load scenario behind one API. The canonical
input is a :class:`RunPlan` — one frozen object carrying the scenario,
scale, seed, sweep overrides, profiling switches and parallelism — that
:func:`run_scenario`, :func:`profile_scenario` and the process-pool
runner (:mod:`repro.bench.parallel`) all accept. The historical
``run_scenario(name, scale=..., seed=...)`` signatures survive as
``DeprecationWarning`` shims producing same-seed-identical artifacts.

Every run:

* executes the scenario's driver at the requested scale (the paper
  series rows),
* executes one telemetry-instrumented canonical run at the same scale —
  with and without the replication overlay — pulling latency
  p50/p95/p99 from the registry's streaming histograms, query/update
  byte totals, the per-server load distribution and the root-load share,
* threads a :class:`~repro.bench.profiler.WallClockProfiler` through
  the sim engine, transport, aggregation and query path for the
  wall-clock hot-path map plus events-processed-per-second,
* re-checks the scenario's paper-shape validators,

and returns a provenance-stamped :class:`~repro.bench.artifact.
BenchArtifact` ready for ``BENCH_<scenario>.json``.

Scales: ``smoke`` (unit-test sized), ``quick`` (CI-sized, the
EXPERIMENTS.md default), ``paper`` (full Section V) and ``stress`` (a
sharded 10^5-server / 10^6-record federation fanned out through the
parallel runner), selected explicitly or via the ``REPRO_BENCH_SCALE``
environment variable.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import asdict, dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from ..experiments.config import (
    DEGREE_SWEEP,
    DIMENSION_SWEEP,
    NODE_SWEEP,
    OVERLAP_SWEEP,
    RECORDS_SWEEP,
    SELECTIVITY_SWEEP,
    ExperimentSettings,
)
from ..experiments.figures import (
    fig3_latency_vs_nodes,
    fig4_update_overhead_vs_nodes,
    fig5_query_overhead_vs_nodes,
    fig6_latency_vs_dimensions,
    fig7_query_overhead_vs_dimensions,
    fig8_update_overhead_vs_records,
    fig9_latency_vs_overlap,
    fig10_latency_vs_degree,
    fig11_response_time_vs_selectivity,
)
from ..experiments.load import offered_load_rows
from ..experiments.runner import instrumented_query_run
from ..experiments.staleness import (
    LOSS_SWEEP,
    update_plane_staleness_rows,
    validate_update_plane,
)
from ..experiments.qualitybench import (
    INTERVAL_SWEEP,
    QUALITY_LOSS_SWEEP,
    quality_plane_rows,
    validate_quality_plane,
)
from ..experiments.seriesbench import (
    series_overhead_rows,
    validate_series_overhead,
)
from ..experiments.table1 import analytical_rows, measured_rows
from ..experiments.tracedive import trace_deep_dive_rows, validate_trace_dive
from ..experiments.validation import (
    validate_fig3,
    validate_fig4,
    validate_fig5,
    validate_fig8,
    validate_fig11,
    validate_load_plane,
)
from ..telemetry.profiling import hotspot_shares
from .artifact import BenchArtifact, SCHEMA, stamp
from .profiler import WallClockProfiler

#: allowed benchmark scales, smallest first
SCALES = ("smoke", "quick", "paper", "stress")

#: root-load share the overlay must stay under (the paper's Fig. 5/7
#: bottleneck argument: replicated start servers spread the entry load)
ROOT_SHARE_CEILING = 0.70


def resolve_scale(
    default: str = "quick",
    *,
    env: str = "REPRO_BENCH_SCALE",
    allowed: Sequence[str] = SCALES,
) -> str:
    """Scale from the environment (``REPRO_BENCH_SCALE``) or *default*."""
    scale = os.environ.get(env, default).lower()
    if scale not in allowed:
        raise ValueError(
            f"{env} must be one of {'|'.join(allowed)}, got {scale!r}"
        )
    return scale


def scale_settings(scale: str, seed: int = 1) -> ExperimentSettings:
    """The :class:`ExperimentSettings` preset behind each scale name."""
    if scale == "paper":
        return ExperimentSettings.paper().with_(seed=seed)
    if scale == "quick":
        # The EXPERIMENTS.md / suite quick preset: paper structure,
        # fewer samples.
        return ExperimentSettings.paper().with_(
            num_queries=60, runs=1, seed=seed
        )
    if scale == "smoke":
        return ExperimentSettings.smoke().with_(seed=seed)
    if scale == "stress":
        # Per-shard settings: the stress federation is ~100 shards of
        # 1000 servers x 10 records each (10^5 servers / 10^6 records
        # total), fanned out through the parallel runner. Coarse
        # histograms are deliberate — with 10 records per node the
        # default 1000-bucket resolution is pure overhead.
        return ExperimentSettings(
            num_nodes=1000,
            records_per_node=10,
            num_queries=20,
            runs=1,
            histogram_buckets=100,
            seed=seed,
        )
    raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")


def scale_sweeps(scale: str) -> Dict[str, tuple]:
    """Per-figure sweep points for each scale."""
    if scale == "paper":
        return {
            "nodes": NODE_SWEEP,
            "dims": DIMENSION_SWEEP,
            "records": RECORDS_SWEEP,
            "overlap": OVERLAP_SWEEP,
            "degree": DEGREE_SWEEP,
            "selectivity": SELECTIVITY_SWEEP,
            "queries_per_group": 200,
            "load_rates": (5.0, 20.0, 60.0),
            "load_horizon": 20.0,
            "quality_intervals": INTERVAL_SWEEP,
            "quality_loss": QUALITY_LOSS_SWEEP,
        }
    if scale == "quick":
        return {
            "nodes": (64, 192, 320),
            "dims": (2, 4, 6, 8),
            "records": (50, 200, 500),
            "overlap": (1, 4, 8, 12),
            "degree": (4, 8, 12),
            "selectivity": SELECTIVITY_SWEEP,
            "queries_per_group": 20,
            "load_rates": (5.0, 20.0, 60.0),
            "load_horizon": 12.0,
            "quality_intervals": INTERVAL_SWEEP,
            "quality_loss": QUALITY_LOSS_SWEEP,
        }
    if scale == "smoke":
        return {
            "nodes": (32, 64),
            "dims": (2, 6),
            "records": (50, 150),
            "overlap": (1, 8),
            "degree": (4, 8),
            "selectivity": (0.001, 0.01, 0.03),
            "queries_per_group": 8,
            "load_rates": (5.0, 60.0),
            "load_horizon": 6.0,
            "quality_intervals": (0.5, 1.0, 2.0),
            "quality_loss": (0.0,),
        }
    if scale == "stress":
        # Single-point sweeps at the per-shard size, plus the shard
        # fan-out width. REPRO_STRESS_SHARDS bounds CI smokes without
        # touching the committed full-width baseline.
        return {
            "nodes": (1000,),
            "dims": (6,),
            "records": (10,),
            "overlap": (8,),
            "degree": (8,),
            "selectivity": (0.001, 0.01),
            "queries_per_group": 8,
            "load_rates": (20.0,),
            "load_horizon": 6.0,
            "quality_intervals": (0.5, 1.0, 2.0),
            "quality_loss": (0.0,),
            "shards": int(os.environ.get("REPRO_STRESS_SHARDS", "100")),
            "shard_queries": 4,
        }
    raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")


Rows = List[Dict[str, object]]
Driver = Callable[[ExperimentSettings, Dict[str, tuple]], Rows]
Shape = Callable[[Rows], List[str]]


@dataclass(frozen=True)
class Scenario:
    """One registered benchmark scenario."""

    name: str
    title: str
    driver: Driver
    #: row-level paper-shape validator (None = provenance-only)
    shape: Optional[Shape] = None


def _small(settings: ExperimentSettings) -> ExperimentSettings:
    return settings.with_(num_nodes=min(settings.num_nodes, 192))


def _validate_table1(rows: Rows) -> List[str]:
    by_design = {
        r["design"]: float(r["mean_bytes_per_server"])
        for r in rows
        if "mean_bytes_per_server" in r
    }
    failures = []
    if not {"ROADS", "SWORD", "Central"} <= set(by_design):
        return ["measured Table I rows missing a design"]
    if not by_design["ROADS"] < by_design["SWORD"] < by_design["Central"]:
        failures.append(
            "storage ordering ROADS < SWORD < Central violated: "
            f"{by_design}"
        )
    return failures


def _stress_driver(settings: ExperimentSettings, sweeps: Dict[str, tuple]) -> "Rows":
    # Imported lazily: parallel.py pulls run_scenario back out of this
    # module for its plan fan-out.
    from .parallel import stress_shard_rows

    return stress_shard_rows(settings, sweeps)


def _validate_stress(rows: "Rows") -> List[str]:
    failures: List[str] = []
    if not rows:
        return ["stress run produced no shard rows"]
    shards = {int(r["shard"]) for r in rows}
    if shards != set(range(len(rows))):
        failures.append(f"shard ids not contiguous: {sorted(shards)[:5]}...")
    for r in rows:
        if float(r["latency_mean_s"]) <= 0:
            failures.append(f"shard {r['shard']} measured no query latency")
        if int(r["update_bytes_epoch"]) <= 0:
            failures.append(f"shard {r['shard']} reported no update traffic")
        if int(r["levels"]) < 2:
            failures.append(f"shard {r['shard']} hierarchy did not branch")
    return failures[:10]


SCENARIOS: Dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            "table1", "Table I: per-server storage",
            lambda s, sw: analytical_rows() + measured_rows(
                s.with_(num_nodes=min(s.num_nodes, 96),
                        records_per_node=min(s.records_per_node, 800))
            ),
            _validate_table1,
        ),
        Scenario(
            "fig3", "Figure 3: latency vs nodes",
            lambda s, sw: fig3_latency_vs_nodes(s, sw["nodes"]),
            validate_fig3,
        ),
        Scenario(
            "fig4", "Figure 4: update overhead vs nodes",
            lambda s, sw: fig4_update_overhead_vs_nodes(s, sw["nodes"]),
            validate_fig4,
        ),
        Scenario(
            "fig5", "Figure 5: query overhead vs nodes",
            lambda s, sw: fig5_query_overhead_vs_nodes(s, sw["nodes"]),
            validate_fig5,
        ),
        Scenario(
            "fig6", "Figure 6: latency vs dimensions",
            lambda s, sw: fig6_latency_vs_dimensions(s, sw["dims"]),
        ),
        Scenario(
            "fig7", "Figure 7: query overhead vs dimensions",
            lambda s, sw: fig7_query_overhead_vs_dimensions(s, sw["dims"]),
        ),
        Scenario(
            "fig8", "Figure 8: update overhead vs records/node",
            lambda s, sw: fig8_update_overhead_vs_records(
                _small(s), sw["records"]
            ),
            validate_fig8,
        ),
        Scenario(
            "fig9", "Figure 9: latency vs overlap factor",
            lambda s, sw: fig9_latency_vs_overlap(_small(s), sw["overlap"]),
        ),
        Scenario(
            "fig10", "Figure 10: latency vs node degree",
            lambda s, sw: fig10_latency_vs_degree(s, sw["degree"]),
        ),
        Scenario(
            "fig11", "Figure 11: response time vs selectivity",
            lambda s, sw: fig11_response_time_vs_selectivity(
                s.with_(runs=1),
                sw["selectivity"],
                queries_per_group=sw["queries_per_group"],
            ),
            validate_fig11,
        ),
        Scenario(
            "overlay", "Per-server load attribution (overlay on/off)",
            lambda s, sw: [],  # rows come from the instrumented run
        ),
        Scenario(
            "update_plane",
            "Update-plane propagation lag and staleness under loss",
            lambda s, sw: update_plane_staleness_rows(
                s, LOSS_SWEEP,
                epochs=4 if sw["queries_per_group"] <= 8 else 8,
            ),
            validate_update_plane,
        ),
        Scenario(
            "load_plane",
            "Offered load vs latency/goodput (concurrent serving plane)",
            lambda s, sw: offered_load_rows(
                s, sw["load_rates"], horizon=sw["load_horizon"]
            ),
            validate_load_plane,
        ),
        Scenario(
            "trace_deep_dive",
            "Causal tracing: critical-path fidelity and wall overhead",
            lambda s, sw: trace_deep_dive_rows(s),
            validate_trace_dive,
        ),
        Scenario(
            "series_overhead",
            "Time-series plane: sampling overhead, zero perturbation, "
            "SLO-triggered postmortems",
            lambda s, sw: series_overhead_rows(s),
            validate_series_overhead,
        ),
        Scenario(
            "quality_plane",
            "Shadow-oracle quality: update-bytes vs false-positive "
            "frontier, per-summary attribution, zero perturbation",
            lambda s, sw: quality_plane_rows(
                s, sw["quality_intervals"], sw["quality_loss"]
            ),
            validate_quality_plane,
        ),
        Scenario(
            "stress",
            "Sharded federation stress: 10^5 servers / 10^6 records "
            "through the process-pool runner",
            _stress_driver,
            _validate_stress,
        ),
    )
}


def available_scenarios() -> List[str]:
    return sorted(SCENARIOS)


@dataclass(frozen=True)
class RunPlan:
    """Canonical, frozen description of one benchmark run.

    One object carries everything a run needs — scenario, scale, seed,
    sweep overrides, profiling switches and parallelism — so
    :func:`run_scenario`, :func:`profile_scenario` and the process-pool
    runner (:mod:`repro.bench.parallel`) share a single input type and a
    plan can be pickled to a worker process or replayed verbatim.
    Derive variants with :meth:`with_` (``plan.with_(seed=7)``).
    """

    scenario: str
    scale: str = "quick"
    seed: int = 1
    #: thread the wall-clock section profiler through the canonical run
    profile: bool = True
    #: run the scenario's paper-series driver; ``False`` keeps only the
    #: instrumented canonical run (its per-server load rows become the
    #: artifact rows, as for the ``overlay`` scenario)
    series: bool = True
    #: worker processes for scenario-internal fan-out (the ``stress``
    #: shard sweep); ``0`` means one per core, ``1`` stays in-process
    workers: int = 1
    #: telemetry event-bus capacity for the instrumented run
    capacity: int = 200_000
    #: per-key overrides merged over :func:`scale_sweeps`
    sweeps: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; "
                f"available: {available_scenarios()}"
            )
        if self.scale not in SCALES:
            raise ValueError(
                f"unknown scale {self.scale!r}; choose from {SCALES}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an int, got {self.seed!r}")
        if not isinstance(self.workers, int) or self.workers < 0:
            raise ValueError(
                f"workers must be an int >= 0 (0 = one per core), "
                f"got {self.workers!r}"
            )
        if self.capacity < 1:
            raise ValueError(f"capacity must be positive, got {self.capacity}")

    def settings(self) -> ExperimentSettings:
        """The fully-resolved :class:`ExperimentSettings` for this plan."""
        return scale_settings(self.scale, self.seed)

    def resolved_sweeps(self) -> Dict[str, object]:
        """Scale sweeps with this plan's overrides and worker count."""
        sweeps: Dict[str, object] = dict(scale_sweeps(self.scale))
        if self.sweeps:
            sweeps.update(self.sweeps)
        sweeps["workers"] = self.workers
        return sweeps

    def with_(self, **kwargs) -> "RunPlan":
        return replace(self, **kwargs)


# -- instrumented canonical run ------------------------------------------------
def _instrumented_block(
    settings: ExperimentSettings,
    seed: int,
    profiler: Optional[WallClockProfiler],
    *,
    capacity: int = 200_000,
) -> Dict[str, object]:
    """Registry-derived simulated metrics + per-server load rows.

    Runs the shared trial workload twice — with the replication overlay
    (profiled) and without it (root entry) — plus one summary epoch, and
    rolls the per-(server, category, phase) registry up into a
    JSON-friendly block.
    """
    from ..sim.metrics import QUERY, UPDATE
    from ..telemetry import (
        Telemetry,
        per_server_load_rows,
        root_load_share,
    )

    tel = Telemetry(capacity=capacity)
    if profiler is not None:
        tel.attach_profiler(profiler)
    # Quality plane on: the canonical profile carries the quality.audit
    # frames the hotspot regression gate polices.
    system, tel, root_id = instrumented_query_run(
        settings, seed, use_overlay=True, telemetry=tel, quality=True
    )
    update_report = system.refresh()
    num_queries = settings.num_queries
    registry = system.metrics.registry
    latency = registry.merged_histogram("query.latency").summary()
    load_rows = per_server_load_rows(
        registry, category=QUERY, phase="forward", top=10, root_id=root_id
    )
    share_with = root_load_share(
        registry, root_id, category=QUERY, phase="forward"
    )

    # Baseline hierarchy (no overlay): every query enters at the root.
    system2, _, root2 = instrumented_query_run(
        settings, seed, use_overlay=False
    )
    share_without = root_load_share(
        system2.metrics.registry, root2, category=QUERY, phase="forward"
    )

    return {
        "num_queries": num_queries,
        "latency": latency,
        "query_bytes_total": registry.bytes_total(QUERY),
        "query_messages_total": registry.messages_total(QUERY),
        "update_bytes_epoch": update_report.total_bytes,
        "update_messages_epoch": update_report.total_messages,
        "root_share_overlay": share_with,
        "root_share_no_overlay": share_without,
        "top_server_share": load_rows[0]["share"] if load_rows else 0.0,
        "per_server_load": load_rows,
        "events_processed": system.sim.processed,
        "events_emitted": tel.bus.emitted,
    }


def _simulated_invariants(sim: Dict[str, object]) -> List[str]:
    """Paper-shape checks on the instrumented block (any scenario)."""
    failures: List[str] = []
    share = float(sim["root_share_overlay"])
    if share >= ROOT_SHARE_CEILING:
        failures.append(
            f"overlay root-load share {share:.1%} >= "
            f"{ROOT_SHARE_CEILING:.0%} ceiling"
        )
    if share >= float(sim["root_share_no_overlay"]):
        failures.append(
            "overlay did not reduce the root-load share "
            f"({share:.1%} with vs "
            f"{float(sim['root_share_no_overlay']):.1%} without)"
        )
    if float(sim["latency"]["count"]) <= 0:
        failures.append("instrumented run recorded no latency samples")
    return failures


def _rows_metrics(rows: Rows) -> Dict[str, float]:
    """Column means of the paper series as flat comparable metrics.

    ``wall_``-prefixed columns are wall-clock measurements riding in the
    rows (e.g. the trace-overhead ratio); they land in the ``wall.*``
    metric namespace so comparisons judge them with the wide,
    regression-only band rather than the tight deterministic one.
    """
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for row in rows:
        for col, value in row.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            sums[col] = sums.get(col, 0.0) + float(value)
            counts[col] = counts.get(col, 0) + 1
    out: Dict[str, float] = {}
    for col in sorted(sums):
        mean = sums[col] / counts[col]
        if col.startswith("wall_"):
            out[f"wall.rows.{col[len('wall_'):]}.mean"] = mean
        else:
            out[f"rows.{col}.mean"] = mean
    return out


_UNSET = object()


def _coerce_plan(
    plan, scale, seed, profile, capacity, *, fn: str
) -> RunPlan:
    """Accept the canonical :class:`RunPlan` or the legacy signature.

    A string first argument is the deprecated positional form; it is
    converted to an equivalent plan (same defaults as the historical
    keyword arguments, hence same-seed-identical artifacts) after a
    :class:`DeprecationWarning` attributed to the caller.
    """
    if isinstance(plan, RunPlan):
        if any(v is not _UNSET for v in (scale, seed, profile, capacity)):
            raise TypeError(
                f"{fn}(RunPlan, ...) takes no further arguments; derive a "
                "new plan with plan.with_(...) instead"
            )
        return plan
    if not isinstance(plan, str):
        raise TypeError(
            f"{fn} expects a RunPlan (or, deprecated, a scenario name); "
            f"got {type(plan).__name__}"
        )
    warnings.warn(
        f"{fn}(name, scale=..., seed=...) is deprecated; pass a RunPlan: "
        f"{fn}(RunPlan({plan!r}, scale=..., seed=...))",
        DeprecationWarning,
        stacklevel=3,
    )
    kwargs: Dict[str, object] = {}
    if scale is not _UNSET:
        kwargs["scale"] = scale
    if seed is not _UNSET:
        kwargs["seed"] = seed
    if profile is not _UNSET:
        kwargs["profile"] = profile
    if capacity is not _UNSET:
        kwargs["capacity"] = capacity
    return RunPlan(plan, **kwargs)


def profile_scenario(
    plan,
    scale=_UNSET,
    seed=_UNSET,
    *,
    capacity=_UNSET,
) -> Dict[str, object]:
    """Profile one plan's canonical run; returns the full document.

    The payload behind ``repro profile``: the call-path tree, counters
    and event census from a :class:`~repro.telemetry.profiling.
    CallPathProfiler` threaded through the instrumented canonical run.
    Skips the paper-series driver — the canonical run is the part every
    scenario shares and the part the dispatch hot-path map describes.

    Canonically takes a :class:`RunPlan`; the legacy
    ``profile_scenario(name, scale=..., seed=...)`` signature is a
    deprecated shim.
    """
    from ..telemetry.profiling import CallPathProfiler

    plan = _coerce_plan(
        plan, scale, seed, _UNSET, capacity, fn="profile_scenario"
    )
    profiler = CallPathProfiler()
    _instrumented_block(
        plan.settings(), plan.seed, profiler, capacity=plan.capacity
    )
    return profiler.document()


def run_scenario(
    plan,
    scale=_UNSET,
    seed=_UNSET,
    *,
    profile=_UNSET,
    capacity=_UNSET,
) -> BenchArtifact:
    """Run one registered scenario end to end; returns its artifact.

    Canonically takes a :class:`RunPlan`; the legacy
    ``run_scenario(name, scale=..., seed=...)`` signature is a
    deprecated shim producing a same-seed-identical artifact.
    """
    plan = _coerce_plan(
        plan, scale, seed, profile, capacity, fn="run_scenario"
    )
    scenario = SCENARIOS[plan.scenario]
    settings = plan.settings()
    sweeps = plan.resolved_sweeps()
    profiler = WallClockProfiler() if plan.profile else None

    t0 = time.perf_counter()
    rows = scenario.driver(settings, sweeps) if plan.series else []
    driver_seconds = time.perf_counter() - t0

    simulated = _instrumented_block(
        settings, plan.seed, profiler, capacity=plan.capacity
    )
    total_seconds = time.perf_counter() - t0
    if not rows:  # instrumented-only scenarios (overlay)
        rows = list(simulated["per_server_load"])

    failures = list(scenario.shape(rows)) if scenario.shape else []
    failures += _simulated_invariants(simulated)

    metrics = _rows_metrics(rows)
    latency = simulated["latency"]
    metrics.update({
        "sim.latency_p50": float(latency["p50"]),
        "sim.latency_p95": float(latency["p95"]),
        "sim.latency_p99": float(latency["p99"]),
        "sim.latency_mean": float(latency["mean"]),
        "sim.query_bytes_per_query": (
            simulated["query_bytes_total"] / max(1, simulated["num_queries"])
        ),
        "sim.update_bytes_epoch": float(simulated["update_bytes_epoch"]),
        "sim.root_share_overlay": float(simulated["root_share_overlay"]),
        "sim.root_share_no_overlay": float(
            simulated["root_share_no_overlay"]
        ),
        "sim.top_server_share": float(simulated["top_server_share"]),
    })

    wall: Dict[str, object] = {}
    prof_block: Dict[str, object] = {}
    if profiler is not None:
        wall = profiler.snapshot()
        wall["total_seconds"] = total_seconds
        wall["driver_seconds"] = driver_seconds
        wall["events_processed"] = profiler.counter("sim.events")
        wall["events_per_sec"] = profiler.events_per_second()
        metrics["wall.total_seconds"] = total_seconds
        metrics["wall.driver_seconds"] = driver_seconds
        metrics["wall.events_per_sec"] = wall["events_per_sec"]
        for section, stats in wall["sections"].items():
            metrics[f"wall.section.{section}.seconds"] = stats["seconds"]
        # Hierarchical hot-path summary: self-time shares (the
        # regression-gate currency — host-speed independent, unlike raw
        # seconds) and the deterministic event-census fingerprint.
        document = profiler.document()
        shares = hotspot_shares(document)
        prof_block = {
            "schema": document["schema"],
            "total_seconds": document["total_seconds"],
            "hotspot_shares": shares,
            "census_fingerprint": document["census_fingerprint"],
            "census_kinds": {
                kind: sum(per.values())
                for kind, per in document["census"].items()
            },
        }
        for section, share in shares.items():
            metrics[f"profile.share.{section}"] = share

    return BenchArtifact(
        **stamp(plan.scenario, plan.scale, plan.seed, settings),
        settings=asdict(settings),
        rows=rows,
        metrics=metrics,
        simulated=simulated,
        wall=wall,
        shape={
            "validator": getattr(scenario.shape, "__name__", None),
            "failures": failures,
        },
        profile=prof_block,
        schema=SCHEMA,
    )
