"""Artifact comparison with per-metric tolerance bands.

``repro bench compare`` diffs a freshly produced ``BENCH_*.json``
against a committed baseline:

* **simulated metrics** (``sim.*``, ``rows.*``) are deterministic for a
  fixed seed, so they get a tight symmetric band (default 5%) — any
  drift means the system's behaviour changed;
* **wall-clock metrics** (``wall.*``) are hardware-dependent and only
  fail in the *regression* direction (slower sections, lower
  events/sec), with a wide band (default 30%);
* **hotspot shares** (``profile.share.*``, the hierarchical profiler's
  self-time fractions) are host-speed independent ratios and fail only
  when a section's share of total time *grows* beyond the wall band
  plus an absolute floor (:data:`PROFILE_SHARE_FLOOR`), so tiny
  sections can jitter but a genuine hot-path shift fails;
* the **event-census fingerprint** (deliveries per message kind per
  server) is deterministic per seed, so any mismatch between two
  profiled artifacts is a hard failure — the dispatch mix changed, and
  the baseline must be regenerated deliberately;
* the scenario's **paper-shape invariants** are re-asserted on the
  current rows (ROADS below SWORD on latency, ROADS update bytes flat in
  records/node, overlay root-share under the ceiling), so a run that
  stays within tolerance but flips a qualitative claim still fails.

A config-fingerprint mismatch is a hard failure: metric deltas between
different configurations are meaningless, and baselines must be
regenerated deliberately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .artifact import BenchArtifact
from .scenarios import SCENARIOS, _simulated_invariants

#: symmetric band for deterministic simulated metrics
DEFAULT_TOLERANCE = 0.05
#: regression-only band for wall-clock metrics
DEFAULT_WALL_TOLERANCE = 0.30

#: absolute hotspot-share growth (in share points) always tolerated —
#: keeps sub-percent sections from failing on timing jitter
PROFILE_SHARE_FLOOR = 0.02

#: wall metrics where *higher* is better (throughput rather than time)
_HIGHER_IS_BETTER = frozenset({"wall.events_per_sec"})

#: substrings of ``rows.quality_*`` metric names where *higher* is the
#: good direction (accuracy); everything else counts misroutes, where
#: lower is better
_QUALITY_GOOD_UP = ("precision", "recall", "_tp", "_tn")


def _quality_regression_only(name: str) -> Optional[bool]:
    """Is *name* an answer-quality metric, and is higher better?

    Oracle verdict counts are deterministic per seed, but they gate in
    the *regression* direction only (like ``wall.*``): a change that
    makes answers strictly more accurate should not fail the bench and
    force a baseline regeneration. Returns ``None`` for non-quality
    metrics, else whether higher is the good direction.
    """
    if not name.startswith("rows.quality_"):
        return None
    return any(tag in name for tag in _QUALITY_GOOD_UP)


@dataclass
class MetricDelta:
    """One metric's baseline/current pair and its verdict."""

    name: str
    baseline: float
    current: float
    #: signed relative change, ``(current - baseline) / |baseline|``
    rel_change: float
    tolerance: float
    ok: bool

    def row(self) -> Dict[str, object]:
        return {
            "metric": self.name,
            "baseline": f"{self.baseline:.6g}",
            "current": f"{self.current:.6g}",
            "change": f"{self.rel_change:+.1%}",
            "band": (
                f"+{self.tolerance:.0%}"
                if self.name.startswith(
                    ("wall.", "profile.share.", "rows.quality_")
                )
                else f"±{self.tolerance:.0%}"
            ),
            "ok": "ok" if self.ok else "FAIL",
        }


@dataclass
class ComparisonResult:
    """Outcome of one artifact-vs-baseline comparison."""

    scenario: str
    deltas: List[MetricDelta] = field(default_factory=list)
    #: hard failures (config mismatch, missing metrics, shape breaks)
    failures: List[str] = field(default_factory=list)
    shape_failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            not self.failures
            and not self.shape_failures
            and all(d.ok for d in self.deltas)
        )

    def failed_deltas(self) -> List[MetricDelta]:
        return [d for d in self.deltas if not d.ok]

    def summary_lines(self) -> List[str]:
        lines = []
        for msg in self.failures:
            lines.append(f"[FAIL] {msg}")
        for msg in self.shape_failures:
            lines.append(f"[FAIL] shape: {msg}")
        for d in self.failed_deltas():
            lines.append(
                f"[FAIL] {d.name}: {d.baseline:.6g} -> {d.current:.6g} "
                f"({d.rel_change:+.1%}, band {d.tolerance:.0%})"
            )
        if not lines:
            lines.append(
                f"[ok] {self.scenario}: {len(self.deltas)} metrics within "
                "tolerance, shape invariants hold"
            )
        return lines


def _rel_change(baseline: float, current: float) -> float:
    denom = max(abs(baseline), 1e-12)
    return (current - baseline) / denom


def compare_artifacts(
    current: BenchArtifact,
    baseline: BenchArtifact,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    include_wall: bool = True,
) -> ComparisonResult:
    """Diff *current* against *baseline*; see the module docstring."""
    result = ComparisonResult(scenario=current.scenario)

    for attr in ("scenario", "scale", "seed"):
        cur, base = getattr(current, attr), getattr(baseline, attr)
        if cur != base:
            result.failures.append(
                f"{attr} mismatch: current={cur!r} baseline={base!r}"
            )
    if current.config_fingerprint != baseline.config_fingerprint:
        result.failures.append(
            "config fingerprint mismatch "
            f"(current={current.config_fingerprint} "
            f"baseline={baseline.config_fingerprint}); regenerate the "
            "baseline if the settings change was intentional"
        )
    if result.failures:
        return result

    for name in sorted(baseline.metrics):
        base_val = float(baseline.metrics[name])
        if name not in current.metrics:
            if name.startswith("wall.") and not include_wall:
                continue
            result.failures.append(f"metric {name} missing from current run")
            continue
        cur_val = float(current.metrics[name])
        rel = _rel_change(base_val, cur_val)
        if name.startswith("profile.share."):
            # Regression-only on the share of total self time: a
            # section may shrink freely; growth fails past the wall
            # band, but never within the absolute floor.
            tol = wall_tolerance
            grew = cur_val - base_val
            ok = grew <= max(PROFILE_SHARE_FLOOR, tol * base_val)
        elif name.startswith("wall."):
            if not include_wall:
                continue
            tol = wall_tolerance
            # Regression-only: slower sections / lower throughput fail.
            bad = rel < -tol if name in _HIGHER_IS_BETTER else rel > tol
            ok = not bad
        elif _quality_regression_only(name) is not None:
            tol = wall_tolerance
            # Regression-only: less accurate answers / more misroutes
            # fail; strict accuracy improvements pass without a regen.
            bad = (
                rel < -tol if _quality_regression_only(name) else rel > tol
            )
            ok = not bad
        else:
            tol = tolerance
            ok = abs(rel) <= tol
        result.deltas.append(
            MetricDelta(
                name=name, baseline=base_val, current=cur_val,
                rel_change=rel, tolerance=tol, ok=ok,
            )
        )

    # The event census is deterministic per seed: two profiled runs of
    # the same configuration must deliver the same messages to the same
    # servers. A mismatch means the dispatch mix itself changed.
    fp_cur = (current.profile or {}).get("census_fingerprint")
    fp_base = (baseline.profile or {}).get("census_fingerprint")
    if fp_cur and fp_base and fp_cur != fp_base:
        result.failures.append(
            "profile census fingerprint mismatch "
            f"(current={fp_cur} baseline={fp_base}); the event mix "
            "changed — regenerate the baseline if intentional"
        )

    # Re-assert the paper-shape invariants on the *current* artifact.
    scenario = SCENARIOS.get(current.scenario)
    if scenario is not None and scenario.shape is not None:
        result.shape_failures += scenario.shape(current.rows)
    if current.simulated:
        result.shape_failures += _simulated_invariants(current.simulated)
    return result


def format_comparison(
    result: ComparisonResult, *, verbose: bool = False
) -> str:
    """Human-readable report; failed metrics always listed."""
    from ..experiments.report import format_table

    parts: List[str] = []
    shown = result.deltas if verbose else result.failed_deltas()
    if shown:
        parts.append(format_table([d.row() for d in shown]))
    parts.extend(result.summary_lines())
    return "\n".join(parts)
