"""Perf trajectory: one summary row per benchmark run.

``BENCH_trajectory.json`` is an append-only time series of benchmark
runs — each row carries the provenance stamp (time, git rev, config
fingerprint, scenario/scale/seed) plus the headline simulated and
wall-clock metrics — so the repo's performance history reads as a table
instead of an archaeology project through CI logs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from .artifact import BenchArtifact

#: trajectory schema identifier
TRAJECTORY_SCHEMA = "roads.bench-trajectory/1"

#: default trajectory file name
TRAJECTORY_FILENAME = "BENCH_trajectory.json"


def trajectory_row(artifact: BenchArtifact) -> Dict[str, object]:
    """One summary row: provenance + headline (sim/wall) metrics."""
    row: Dict[str, object] = {
        "created_unix": artifact.created_unix,
        "scenario": artifact.scenario,
        "scale": artifact.scale,
        "seed": artifact.seed,
        "git_rev": artifact.git_rev,
        "config_fingerprint": artifact.config_fingerprint,
        "shape_ok": artifact.ok,
    }
    for name, value in sorted(artifact.metrics.items()):
        if name.startswith(("sim.", "wall.")) and not name.startswith(
            "wall.section."
        ):
            row[name] = value
    return row


def load_trajectory(path) -> List[Dict[str, object]]:
    """Rows of an existing trajectory file (empty list if absent)."""
    path = Path(path)
    if not path.exists():
        return []
    doc = json.loads(path.read_text(encoding="utf-8"))
    if (
        not isinstance(doc, dict)
        or doc.get("schema") != TRAJECTORY_SCHEMA
        or not isinstance(doc.get("rows"), list)
    ):
        raise ValueError(
            f"{path} is not a {TRAJECTORY_SCHEMA} trajectory file"
        )
    return doc["rows"]


def append_trajectory(artifact: BenchArtifact, path) -> Dict[str, object]:
    """Append *artifact*'s summary row to the trajectory file.

    Creates the file when missing; returns the appended row.
    """
    path = Path(path)
    rows = load_trajectory(path)
    row = trajectory_row(artifact)
    rows.append(row)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            {"schema": TRAJECTORY_SCHEMA, "rows": rows}, indent=2
        ) + "\n",
        encoding="utf-8",
    )
    return row


def format_trajectory(rows: List[Dict[str, object]]) -> str:
    """Render trajectory rows as an aligned table (newest last)."""
    from ..experiments.report import format_table

    if not rows:
        return "(empty trajectory)"
    display = []
    for row in rows:
        entry = {
            "rev": row.get("git_rev", "?"),
            "scenario": row.get("scenario", "?"),
            "scale": row.get("scale", "?"),
            "shape": "ok" if row.get("shape_ok") else "FAIL",
        }
        for key, label in (
            ("sim.latency_p50", "p50_s"),
            ("sim.latency_p95", "p95_s"),
            ("sim.update_bytes_epoch", "upd_B"),
            ("sim.root_share_overlay", "root_share"),
            ("wall.total_seconds", "wall_s"),
            ("wall.events_per_sec", "ev/s"),
        ):
            value = row.get(key)
            if value is not None:
                entry[label] = f"{float(value):.4g}"
        display.append(entry)
    return format_table(display)
