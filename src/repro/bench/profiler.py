"""Wall-clock section profiler for the benchmark observatory.

The telemetry spans measure *simulated* time; this profiler measures the
*host* wall clock (``time.perf_counter``) spent inside named sections of
the reproduction itself — engine dispatch, transport, aggregation,
replication and the query path — so perf PRs have a hot-path map to
optimize against.

A :class:`WallClockProfiler` is attached to a
:class:`~repro.telemetry.core.Telemetry` recorder via
``tel.attach_profiler(...)`` **before** the system is built; the
instrumented call sites hold a direct reference and guard every
measurement with a single ``is not None`` check, so the disabled path
(no profiler, the default) stays free.

Sections may nest (``query.execute`` encloses the ``sim.dispatch`` time
of its event loop), so per-section seconds are a hot-path map, not a
disjoint partition of the total.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional


class _Section:
    """Context manager timing one entry of a named section."""

    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: "WallClockProfiler", name: str):
        self._profiler = profiler
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Section":
        self._t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler.add(self._name, perf_counter() - self._t0)


class WallClockProfiler:
    """Accumulates (calls, wall seconds) per named section."""

    __slots__ = ("_calls", "_seconds", "_counters")

    def __init__(self):
        self._calls: Dict[str, int] = {}
        self._seconds: Dict[str, float] = {}
        #: plain event counters (e.g. simulator events processed)
        self._counters: Dict[str, int] = {}

    # -- recording ----------------------------------------------------------------
    def section(self, name: str) -> _Section:
        """``with profiler.section("net.send"): ...``"""
        return _Section(self, name)

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Fold an already-measured interval into section *name*."""
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._calls[name] = self._calls.get(name, 0) + calls

    def count(self, name: str, n: int = 1) -> None:
        """Bump a plain counter (no timing attached)."""
        self._counters[name] = self._counters.get(name, 0) + n

    # -- read-out -----------------------------------------------------------------
    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    def calls(self, name: str) -> int:
        return self._calls.get(name, 0)

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    @property
    def section_names(self):
        return sorted(self._seconds)

    def events_per_second(
        self, events: Optional[int] = None, section: str = "sim.dispatch"
    ) -> float:
        """Engine throughput: events processed per wall second.

        *events* defaults to the ``sim.events`` counter maintained by the
        instrumented :class:`~repro.sim.engine.Simulator`.
        """
        n = self.counter("sim.events") if events is None else events
        secs = self.seconds(section)
        return n / secs if secs > 0 else 0.0

    def snapshot(self) -> Dict[str, object]:
        """JSON-serialisable dump: per-section calls/seconds + counters."""
        return {
            "sections": {
                name: {
                    "calls": self._calls.get(name, 0),
                    "seconds": self._seconds[name],
                }
                for name in sorted(self._seconds)
            },
            "counters": dict(sorted(self._counters.items())),
        }

    def reset(self) -> None:
        self._calls.clear()
        self._seconds.clear()
        self._counters.clear()
