"""Back-compat shim over the hierarchical profiling plane.

The flat :class:`WallClockProfiler` used to accumulate seconds per
section name independently, so nested sections double-counted:
``query.execute`` encloses the ``sim.dispatch`` time of its event loop,
and summing sections overshot the measured total. The real profiler now
lives in :mod:`repro.telemetry.profiling` as a call-path tree;
``WallClockProfiler`` remains as a subclass so existing call sites —
``tel.attach_profiler(WallClockProfiler())``, ``section(...)`` /
``add(...)`` / ``count(...)``, ``snapshot()``'s ``sections``/``counters``
shape and the historical section names — keep working unchanged, while
the numbers are now a flat projection of the tree: ``seconds`` counts
only top-most occurrences of a name (no self-nesting double counts) and
``self_seconds`` partitions the total exactly.
"""

from __future__ import annotations

from ..telemetry.profiling import CallPathProfiler


class WallClockProfiler(CallPathProfiler):
    """Flat-view alias of :class:`~repro.telemetry.profiling.CallPathProfiler`.

    Kept for the benchmark observatory's historical API; new code should
    use :class:`CallPathProfiler` and the hierarchical ``document()``.
    """


__all__ = ["WallClockProfiler"]
