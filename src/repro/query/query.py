"""Multi-dimensional range queries.

A :class:`Query` is a conjunction of predicates over distinct attributes.
It can be evaluated exactly against a :class:`~repro.records.store.RecordStore`
(returning the matching rows) or approximately against a summary (the
summary API lives in :mod:`repro.summaries`; summaries expose
``may_match(query)`` built on the per-predicate hooks here).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..records.record import ResourceRecord
from ..records.store import RecordStore
from .predicate import EqualsPredicate, Predicate, RangePredicate

_query_counter = itertools.count()


@dataclass(frozen=True)
class Query:
    """A conjunctive multi-dimensional query.

    Parameters
    ----------
    predicates:
        One predicate per queried attribute. At most one predicate per
        attribute (conjunctions over the same attribute should be merged
        into a single tighter range before constructing the query).
    query_id:
        Stable identifier, auto-assigned when omitted.
    requester:
        Identity of the querying party; resource owners use it to apply
        their voluntary-sharing policies.
    """

    predicates: Tuple[Predicate, ...]
    query_id: int = field(default_factory=lambda: next(_query_counter))
    requester: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.predicates:
            raise ValueError("query must have at least one predicate")
        attrs = [p.attribute for p in self.predicates]
        if len(set(attrs)) != len(attrs):
            raise ValueError(f"query has duplicate predicates on attributes: {attrs}")

    @staticmethod
    def of(*predicates: Predicate, requester: Optional[str] = None) -> "Query":
        return Query(predicates=tuple(predicates), requester=requester)

    # -- structure ---------------------------------------------------------------
    @property
    def dimensions(self) -> int:
        """Number of queried attributes (the paper's ``q``)."""
        return len(self.predicates)

    @property
    def attributes(self) -> List[str]:
        return [p.attribute for p in self.predicates]

    def predicate_on(self, attribute: str) -> Optional[Predicate]:
        for p in self.predicates:
            if p.attribute == attribute:
                return p
        return None

    def range_predicates(self) -> List[RangePredicate]:
        return [p for p in self.predicates if isinstance(p, RangePredicate)]

    def equals_predicates(self) -> List[EqualsPredicate]:
        return [p for p in self.predicates if isinstance(p, EqualsPredicate)]

    def __iter__(self) -> Iterator[Predicate]:
        return iter(self.predicates)

    def __str__(self) -> str:
        return " AND ".join(str(p) for p in self.predicates)

    # -- sizing ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Wire size of the query message payload.

        Grows linearly with dimensionality, which drives the SWORD query
        overhead trend in Figure 7.
        """
        header = 16  # query id + requester token
        return header + sum(p.size_bytes for p in self.predicates)

    # -- exact evaluation ----------------------------------------------------------
    def mask(self, store: RecordStore) -> np.ndarray:
        """Boolean mask of rows in *store* matching all predicates."""
        if len(store) == 0:
            return np.zeros(0, dtype=bool)
        out = np.ones(len(store), dtype=bool)
        for p in self.predicates:
            out &= p.mask(store)
            if not out.any():
                break
        return out

    def match_count(self, store: RecordStore) -> int:
        return int(self.mask(store).sum())

    def select(self, store: RecordStore) -> RecordStore:
        """The sub-store of matching records."""
        return store.select(self.mask(store))

    def matches_record(self, record: ResourceRecord) -> bool:
        return all(p.matches_value(record[p.attribute]) for p in self.predicates)

    def with_requester(self, requester: str) -> "Query":
        return Query(self.predicates, query_id=self.query_id, requester=requester)
