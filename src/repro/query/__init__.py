"""Multi-dimensional range queries and selectivity tooling."""

from .predicate import (
    EqualsPredicate,
    Predicate,
    RangePredicate,
    greater_than,
    less_than,
)
from .query import Query
from .selectivity import calibrate_to_selectivity, selectivity, selectivity_histogram

__all__ = [
    "EqualsPredicate",
    "Predicate",
    "RangePredicate",
    "greater_than",
    "less_than",
    "Query",
    "selectivity",
    "calibrate_to_selectivity",
    "selectivity_histogram",
]
