"""Query predicates.

A ROADS query is a conjunction of per-attribute predicates: range
predicates on numeric attributes (``rate > 150Kbps`` is the half-open range
``(150, +inf)`` clipped to the attribute bounds) and equality predicates on
categorical attributes (``encoding = MPEG2``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..records.store import RecordStore


@dataclass(frozen=True)
class RangePredicate:
    """``lo <= attr <= hi`` on a numeric attribute."""

    attribute: str
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not (self.lo <= self.hi):
            raise ValueError(
                f"range predicate on {self.attribute!r}: lo={self.lo} > hi={self.hi}"
            )

    @property
    def length(self) -> float:
        return self.hi - self.lo

    def mask(self, store: RecordStore) -> np.ndarray:
        return store.mask_range(self.attribute, self.lo, self.hi)

    def matches_value(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    @property
    def size_bytes(self) -> int:
        """Wire size of this predicate in a query message.

        Attribute id + two range endpoints, 8 bytes each — comparable to
        the paper's unit-size attribute values.
        """
        return 24

    def __str__(self) -> str:
        return f"{self.lo:g} <= {self.attribute} <= {self.hi:g}"


@dataclass(frozen=True)
class EqualsPredicate:
    """``attr == value`` on a categorical attribute."""

    attribute: str
    value: str

    def mask(self, store: RecordStore) -> np.ndarray:
        return store.mask_equals(self.attribute, self.value)

    def matches_value(self, value: str) -> bool:
        return value == self.value

    @property
    def size_bytes(self) -> int:
        return 8 + len(self.value.encode("utf-8"))

    def __str__(self) -> str:
        return f"{self.attribute} = {self.value}"


Predicate = Union[RangePredicate, EqualsPredicate]


def greater_than(attribute: str, threshold: float, upper_bound: float = 1.0) -> RangePredicate:
    """``attr > threshold``, expressed as a closed range up to *upper_bound*.

    The strictness of the bound is immaterial for continuous workloads; the
    summary evaluation of ``rate > 150`` in the paper checks whether any
    histogram bucket beyond 150 is non-empty, which is exactly range
    evaluation on ``(150, upper_bound]``.
    """
    return RangePredicate(attribute, np.nextafter(threshold, np.inf), upper_bound)


def less_than(attribute: str, threshold: float, lower_bound: float = 0.0) -> RangePredicate:
    """``attr < threshold`` as a closed range from *lower_bound*."""
    return RangePredicate(attribute, lower_bound, np.nextafter(threshold, -np.inf))
