"""Query selectivity measurement and calibration.

The prototype benchmark (Figure 11) groups queries by *selectivity* — the
percentage of records that match. This module measures selectivity against
a reference store and calibrates query range widths to hit a target
selectivity, via monotone bisection on a shared scale factor applied to
every range predicate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..records.store import RecordStore
from .predicate import EqualsPredicate, RangePredicate
from .query import Query


def selectivity(query: Query, store: RecordStore) -> float:
    """Fraction of records in *store* matching *query* (0..1)."""
    if len(store) == 0:
        return 0.0
    return query.match_count(store) / len(store)


def _scaled(query: Query, scale: float, bounds: dict) -> Query:
    """Scale every range predicate's width by *scale* around its center."""
    preds = []
    for p in query.predicates:
        if isinstance(p, RangePredicate):
            lo_b, hi_b = bounds[p.attribute]
            center = (p.lo + p.hi) / 2.0
            half = (p.hi - p.lo) / 2.0 * scale
            preds.append(
                RangePredicate(
                    p.attribute,
                    max(lo_b, center - half),
                    min(hi_b, center + half),
                )
            )
        else:
            preds.append(p)
    return Query(tuple(preds), requester=query.requester)


def calibrate_to_selectivity(
    query: Query,
    store: RecordStore,
    target: float,
    *,
    tolerance: float = 0.25,
    max_iterations: int = 48,
) -> Optional[Query]:
    """Rescale *query*'s ranges so its selectivity on *store* nears *target*.

    Returns the calibrated query, or ``None`` when the target cannot be
    reached within ``(1 ± tolerance) * target`` — e.g. the categorical
    predicates alone already select fewer records than the target.

    Selectivity is monotone in the shared width scale, so bisection
    converges; *tolerance* is relative.
    """
    if not (0.0 < target <= 1.0):
        raise ValueError(f"target selectivity must be in (0, 1], got {target}")
    if not query.range_predicates():
        s = selectivity(query, store)
        return query if abs(s - target) <= tolerance * target else None

    bounds = {
        spec.name: spec.bounds for spec in store.schema.numeric_attributes
    }
    lo_scale, hi_scale = 0.0, 1.0
    # Grow the upper scale until it overshoots the target (ranges are
    # clipped to attribute bounds so this terminates).
    for _ in range(20):
        if selectivity(_scaled(query, hi_scale, bounds), store) >= target:
            break
        prev = hi_scale
        hi_scale *= 2.0
        if selectivity(_scaled(query, hi_scale, bounds), store) == selectivity(
            _scaled(query, prev, bounds), store
        ) and hi_scale > 64:
            break  # fully clipped; cannot grow further
    else:
        return None

    best: Optional[Query] = None
    best_err = np.inf
    for _ in range(max_iterations):
        mid = (lo_scale + hi_scale) / 2.0
        q = _scaled(query, mid, bounds)
        s = selectivity(q, store)
        err = abs(s - target)
        if err < best_err:
            best, best_err = q, err
        if s < target:
            lo_scale = mid
        else:
            hi_scale = mid
        if err <= tolerance * target:
            return q
    if best is not None and best_err <= tolerance * target:
        return best
    return None


def selectivity_histogram(
    queries: Sequence[Query], store: RecordStore, bins: Sequence[float]
) -> List[int]:
    """Count queries per selectivity bin (bins given as fractions)."""
    edges = np.asarray(list(bins), dtype=float)
    counts = [0] * (len(edges) + 1)
    for q in queries:
        s = selectivity(q, store)
        idx = int(np.searchsorted(edges, s, side="right"))
        counts[idx] += 1
    return counts
