"""Domain-flavoured catalog generators.

The synthetic unit-range workload (:mod:`repro.workload.generator`)
drives the paper's quantitative evaluation; these generators build
*realistically-shaped* catalogs on the example schemas instead — sensor
inventories for federated stream-processing sites (the paper's System S
motivation) and machine inventories for a grid compute marketplace.
They power the domain examples and any test that wants mixed
categorical/numeric data with per-owner character.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..records.schema import (
    Schema,
    compute_resource_schema,
    stream_processing_schema,
)
from ..records.store import RecordStore

#: site specialities cycled by site id: (dominant type, dominant codec)
STREAM_SPECIALITIES = (
    ("camera", "MPEG2"),
    ("camera", "H264"),
    ("microphone", "PCM"),
    ("gps", "JSON"),
)


def stream_site_catalog(
    rng: np.random.Generator,
    site: int,
    sources: int = 120,
    schema: Optional[Schema] = None,
    *,
    speciality_bias: float = 0.7,
) -> RecordStore:
    """One stream-processing site's sensor catalog.

    Each site *specializes* (mostly cameras, or mostly audio, ...) so
    summaries genuinely distinguish sites — the property that makes
    federated discovery useful at all.
    """
    if sources < 1:
        raise ValueError("sources must be >= 1")
    if not (0.0 <= speciality_bias <= 1.0):
        raise ValueError("speciality_bias must be in [0, 1]")
    schema = schema if schema is not None else stream_processing_schema()
    main_type, main_enc = STREAM_SPECIALITIES[site % len(STREAM_SPECIALITIES)]
    n = sources
    types = np.where(
        rng.random(n) < speciality_bias,
        main_type,
        rng.choice(schema["type"].categories, n),
    ).tolist()
    encodings = np.where(
        rng.random(n) < speciality_bias * 0.85,
        main_enc,
        rng.choice(schema["encoding"].categories, n),
    ).tolist()
    numeric = np.column_stack(
        [
            rng.gamma(2.0, 150.0, n).clip(1, 10_000),  # rate_kbps
            rng.choice([320, 640, 1280, 1920, 3840], n),  # resolution_x
            rng.choice([240, 480, 720, 1080, 2160], n),  # resolution_y
            rng.beta(8, 2, n),  # uptime
            rng.uniform(0, 100, n),  # cost
        ]
    )
    return RecordStore.from_arrays(
        schema, numeric, [types, encodings], owner=f"site-{site}"
    )


def compute_org_inventory(
    rng: np.random.Generator,
    org: int,
    machines: int = 150,
    schema: Optional[Schema] = None,
) -> RecordStore:
    """One organization's machine inventory on the compute schema."""
    if machines < 1:
        raise ValueError("machines must be >= 1")
    schema = schema if schema is not None else compute_resource_schema()
    n = machines
    arch = rng.choice(
        schema["arch"].categories, n, p=[0.7, 0.15, 0.15]
    ).tolist()
    os_ = rng.choice(schema["os"].categories, n, p=[0.8, 0.1, 0.1]).tolist()
    numeric = np.column_stack(
        [
            rng.choice([1, 2, 4, 8, 16, 32, 64], n).astype(float),  # cpus
            rng.uniform(1.0, 4.0, n),  # clock_ghz
            rng.choice([4, 8, 16, 32, 64, 128, 256], n).astype(float),  # memory_gb
            rng.uniform(100, 10_000, n),  # disk_gb
            rng.beta(2, 5, n),  # load
            rng.choice([100, 1_000, 10_000], n).astype(float),  # net_mbps
        ]
    )
    return RecordStore.from_arrays(
        schema, numeric, [arch, os_], owner=f"org-{org}"
    )
