"""Record workload generation.

Builds per-node record stores following the paper's evaluation setup:
16 numeric attributes, four per distribution family, 500 records per node
by default. The optional *overlap factor* mode (Figure 9) confines each
server's data on the first eight attributes to a random range of length
``Of / num_nodes``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..records.attribute import numeric
from ..records.schema import Schema
from ..records.store import RecordStore
from ..sim.rng import SeedSequenceFactory
from .distributions import (
    gaussian_values,
    overlap_values,
    pareto_values,
    range_values,
    uniform_values,
)

#: family order used when laying out attributes and cycling query dims
FAMILY_ORDER = ("uniform", "range", "gaussian", "pareto")


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of the generated record workload.

    The default reproduces Section V: 320 nodes × 500 records × 16
    attributes (4 uniform, 4 range, 4 Gaussian, 4 Pareto).
    """

    num_nodes: int = 320
    records_per_node: int = 500
    attrs_per_family: int = 4
    range_length: float = 0.5
    gaussian_sigma: float = 0.01
    pareto_shape: float = 3.0
    pareto_scale_range: Tuple[float, float] = (0.005, 0.04)
    #: Figure 9 mode: when set, the first ``2 * attrs_per_family``
    #: attributes are confined per server to a range of ``Of/num_nodes``
    overlap_factor: Optional[float] = None
    #: how records are apportioned: ``"fixed"`` gives every owner exactly
    #: ``records_per_node``; ``"zipf"`` draws skewed counts with the same
    #: mean — real federations are heterogeneous
    records_distribution: str = "fixed"
    zipf_exponent: float = 1.5
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.records_per_node < 0:
            raise ValueError("num_nodes >= 1 and records_per_node >= 0 required")
        if self.attrs_per_family < 1:
            raise ValueError("attrs_per_family must be >= 1")
        if self.overlap_factor is not None and self.overlap_factor <= 0:
            raise ValueError("overlap_factor must be positive")
        if self.records_distribution not in ("fixed", "zipf"):
            raise ValueError(
                f"unknown records_distribution {self.records_distribution!r}"
            )
        if self.zipf_exponent <= 1.0:
            raise ValueError("zipf_exponent must be > 1")

    @property
    def num_attributes(self) -> int:
        return self.attrs_per_family * len(FAMILY_ORDER)

    def attribute_names(self) -> List[str]:
        """Names grouped by family: u0..u3, r0..r3, g0..g3, p0..p3."""
        out = []
        for fam in FAMILY_ORDER:
            out.extend(f"{fam[0]}{i}" for i in range(self.attrs_per_family))
        return out

    def family_of(self, name: str) -> str:
        for fam in FAMILY_ORDER:
            if name.startswith(fam[0]):
                return fam
        raise KeyError(f"unknown attribute {name!r}")


def make_schema(config: WorkloadConfig) -> Schema:
    """Unit-range numeric schema for the configured workload."""
    return Schema(numeric(name) for name in config.attribute_names())


def _node_column(
    family: str,
    rng: np.random.Generator,
    n: int,
    config: WorkloadConfig,
) -> np.ndarray:
    if family == "uniform":
        return uniform_values(rng, n)
    if family == "range":
        return range_values(rng, n, config.range_length)
    if family == "gaussian":
        return gaussian_values(rng, n, sigma=config.gaussian_sigma)
    if family == "pareto":
        return pareto_values(
            rng,
            n,
            shape=config.pareto_shape,
            scale_range=config.pareto_scale_range,
        )
    raise KeyError(f"unknown family {family!r}")


def records_for_node(
    config: WorkloadConfig,
    node_id: int,
    seeds: Optional[SeedSequenceFactory] = None,
) -> int:
    """How many records *node_id* holds under the configured skew."""
    if config.records_distribution == "fixed":
        return config.records_per_node
    if seeds is None:
        seeds = SeedSequenceFactory(config.seed)
    rng = seeds.fresh_generator(f"record-count:{node_id}")
    # Zipf draw rescaled so the mean stays near records_per_node; capped
    # so a single owner cannot dwarf the rest of the federation.
    norm_rng = SeedSequenceFactory(config.seed).fresh_generator("zipf-norm")
    zipf_mean = float(
        np.mean(np.minimum(norm_rng.zipf(config.zipf_exponent, 4096), 20 * 50))
    )
    raw = min(int(rng.zipf(config.zipf_exponent)), 1000)
    count = int(round(raw / zipf_mean * config.records_per_node))
    return int(np.clip(count, 1, config.records_per_node * 20))


def generate_node_store(
    config: WorkloadConfig,
    node_id: int,
    schema: Optional[Schema] = None,
    seeds: Optional[SeedSequenceFactory] = None,
) -> RecordStore:
    """The record store of one node."""
    if schema is None:
        schema = make_schema(config)
    if seeds is None:
        seeds = SeedSequenceFactory(config.seed)
    rng = seeds.fresh_generator(f"records:{node_id}")
    n = records_for_node(config, node_id, seeds)
    names = config.attribute_names()
    overlap_attrs = (
        set(names[: 2 * config.attrs_per_family])
        if config.overlap_factor is not None
        else set()
    )
    columns = np.empty((n, len(names)), dtype=np.float64)
    for j, name in enumerate(names):
        if name in overlap_attrs:
            length = min(1.0, config.overlap_factor / config.num_nodes)
            columns[:, j] = overlap_values(rng, n, length)
        else:
            columns[:, j] = _node_column(config.family_of(name), rng, n, config)
    return RecordStore.from_arrays(
        schema, columns, [], owner=f"owner-{node_id}"
    )


def generate_node_stores(config: WorkloadConfig) -> List[RecordStore]:
    """One record store per node, independently seeded."""
    schema = make_schema(config)
    seeds = SeedSequenceFactory(config.seed)
    return [
        generate_node_store(config, i, schema, seeds)
        for i in range(config.num_nodes)
    ]


def merge_stores(stores: Sequence[RecordStore]) -> RecordStore:
    """All nodes' records in one store (global reference for selectivity)."""
    if not stores:
        raise ValueError("no stores to merge")
    out = stores[0]
    for s in stores[1:]:
        out = out.merged_with(s)
    return out
