"""Workload generation: record populations and query streams."""

from .distributions import (
    FAMILIES,
    gaussian_values,
    overlap_values,
    pareto_values,
    range_values,
    uniform_values,
)
from .catalogs import (
    STREAM_SPECIALITIES,
    compute_org_inventory,
    stream_site_catalog,
)
from .dynamics import DynamicsConfig, RecordDynamics
from .generator import (
    FAMILY_ORDER,
    WorkloadConfig,
    generate_node_store,
    records_for_node,
    generate_node_stores,
    make_schema,
    merge_stores,
)
from .queries import (
    SelectivityGroup,
    generate_queries,
    generate_query,
    generate_selectivity_groups,
    query_attribute_cycle,
)

__all__ = [
    "FAMILIES",
    "FAMILY_ORDER",
    "uniform_values",
    "range_values",
    "gaussian_values",
    "pareto_values",
    "overlap_values",
    "WorkloadConfig",
    "DynamicsConfig",
    "stream_site_catalog",
    "compute_org_inventory",
    "STREAM_SPECIALITIES",
    "RecordDynamics",
    "make_schema",
    "generate_node_store",
    "records_for_node",
    "generate_node_stores",
    "merge_stores",
    "generate_query",
    "generate_queries",
    "query_attribute_cycle",
    "SelectivityGroup",
    "generate_selectivity_groups",
]
