"""Dynamic resource records.

Section II: resources are dynamic — capacities, loads, and rates change
continuously, which is why ROADS keeps summaries as TTL'd soft state and
why the analysis distinguishes the record update period ``t_r`` from the
summary period ``t_s``. This module drives that dynamism: every ``t_r``
a fraction of each owner's records takes a bounded random-walk step on
selected numeric attributes.

Steps are small relative to a histogram bucket by default, so most
epochs leave summaries unchanged — exactly the regime in which delta
propagation (``RoadsConfig.delta_updates``) pays off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..records.store import RecordStore
from ..sim.engine import PeriodicTask, Simulator


@dataclass(frozen=True)
class DynamicsConfig:
    """Random-walk parameters for dynamic records.

    ``change_fraction`` of each store's records move per epoch; each
    moving record's selected attributes step by N(0, ``step_sigma``),
    clipped to the attribute bounds.
    """

    record_interval: float = 6.0  # the paper's t_r
    change_fraction: float = 0.2
    step_sigma: float = 0.01
    attributes: Optional[Sequence[str]] = None  # default: all numeric

    def __post_init__(self) -> None:
        if self.record_interval <= 0:
            raise ValueError("record_interval must be positive")
        if not (0.0 < self.change_fraction <= 1.0):
            raise ValueError("change_fraction must be in (0, 1]")
        if self.step_sigma <= 0:
            raise ValueError("step_sigma must be positive")


class RecordDynamics:
    """Periodic random-walk mutation of a federation's record stores."""

    def __init__(
        self,
        sim: Simulator,
        stores: Sequence[RecordStore],
        rng: np.random.Generator,
        config: DynamicsConfig = DynamicsConfig(),
    ):
        self.sim = sim
        self.stores = list(stores)
        self.rng = rng
        self.config = config
        self.epochs = 0
        self.records_changed = 0
        self._task: PeriodicTask = sim.schedule_periodic(
            config.record_interval, self.step, label="workload.churn"
        )

    def stop(self) -> None:
        self._task.stop()

    def pause(self) -> None:
        """Temporarily freeze the drift (e.g. while verifying results)."""
        self._task.stop()

    def resume(self) -> None:
        if self._task.stopped:
            self._task = self.sim.schedule_periodic(
                self.config.record_interval, self.step,
                label="workload.churn",
            )

    # -- mutation ----------------------------------------------------------------
    def step(self) -> int:
        """One t_r epoch: perturb records in every store; returns the
        number of records changed."""
        changed = 0
        for store in self.stores:
            changed += self._perturb(store)
        self.epochs += 1
        self.records_changed += changed
        return changed

    def _perturb(self, store: RecordStore) -> int:
        n = len(store)
        if n == 0:
            return 0
        schema = store.schema
        names = (
            list(self.config.attributes)
            if self.config.attributes is not None
            else [a.name for a in schema.numeric_attributes]
        )
        k = max(1, int(round(n * self.config.change_fraction)))
        rows = self.rng.choice(n, size=k, replace=False)
        matrix = store.numeric_matrix
        for name in names:
            spec = schema[name]
            col = schema.numeric_position(name)
            lo, hi = spec.bounds
            steps = self.rng.normal(0.0, self.config.step_sigma * (hi - lo), k)
            matrix[rows, col] = np.clip(matrix[rows, col] + steps, lo, hi)
        return k
