"""Query workload generation.

Default queries follow Section V: 500 queries of 6 dimensions — two on
uniform attributes, two on range attributes, one each on a Gaussian and a
Pareto attribute — each dimension a range of length 0.25 at a random
location. Varying dimensionality (Figure 6/7) cycles dimensions through
the family order so, e.g., 8-dimensional queries use two attributes of
every family.

For the prototype benchmark (Figure 11), queries are calibrated against
the global record population to hit target selectivities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..query.predicate import RangePredicate
from ..query.query import Query
from ..query.selectivity import calibrate_to_selectivity, selectivity
from ..records.store import RecordStore
from ..sim.rng import SeedSequenceFactory
from .generator import FAMILY_ORDER, WorkloadConfig


def query_attribute_cycle(config: WorkloadConfig, dimensions: int) -> List[str]:
    """Attribute names for a *dimensions*-dimensional query.

    Cycles ``u0, r0, g0, p0, u1, r1, g1, p1, ...`` so the default
    ``dimensions=6`` yields two uniform, two range, one Gaussian and one
    Pareto dimension, exactly the paper's mix.
    """
    if dimensions < 1:
        raise ValueError("dimensions must be >= 1")
    max_dims = config.num_attributes
    if dimensions > max_dims:
        raise ValueError(
            f"cannot build {dimensions}-dimensional query over "
            f"{max_dims} attributes"
        )
    out = []
    for i in range(dimensions):
        fam = FAMILY_ORDER[i % len(FAMILY_ORDER)]
        idx = i // len(FAMILY_ORDER)
        out.append(f"{fam[0]}{idx}")
    return out


def generate_query(
    config: WorkloadConfig,
    rng: np.random.Generator,
    *,
    dimensions: int = 6,
    range_length: float = 0.25,
    requester: Optional[str] = None,
) -> Query:
    """One random multi-dimensional range query."""
    if not (0.0 < range_length <= 1.0):
        raise ValueError(f"range_length must be in (0, 1], got {range_length}")
    preds = []
    for name in query_attribute_cycle(config, dimensions):
        lo = float(rng.uniform(0.0, 1.0 - range_length))
        preds.append(RangePredicate(name, lo, lo + range_length))
    return Query(tuple(preds), requester=requester)


def generate_queries(
    config: WorkloadConfig,
    *,
    num_queries: int = 500,
    dimensions: int = 6,
    range_length: float = 0.25,
    seed_label: str = "queries",
) -> List[Query]:
    """The paper's query workload (500 six-dimensional queries)."""
    seeds = SeedSequenceFactory(config.seed)
    rng = seeds.fresh_generator(seed_label)
    return [
        generate_query(
            config, rng, dimensions=dimensions, range_length=range_length
        )
        for _ in range(num_queries)
    ]


@dataclass
class SelectivityGroup:
    """Queries sharing one target selectivity (Figure 11 grouping)."""

    target: float
    queries: List[Query]

    def measured_selectivities(self, store: RecordStore) -> List[float]:
        return [selectivity(q, store) for q in self.queries]


def generate_selectivity_groups(
    config: WorkloadConfig,
    reference: RecordStore,
    *,
    targets: Sequence[float] = (0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03),
    queries_per_group: int = 200,
    dimensions: int = 6,
    tolerance: float = 0.5,
    max_attempts_factor: int = 30,
) -> List[SelectivityGroup]:
    """Queries grouped by selectivity against the *reference* population.

    Random queries are calibrated (range widths rescaled) to each target;
    queries that cannot reach a target are discarded and regenerated, up
    to ``max_attempts_factor * queries_per_group`` attempts per group.
    """
    seeds = SeedSequenceFactory(config.seed)
    groups: List[SelectivityGroup] = []
    for target in targets:
        rng = seeds.fresh_generator(f"selectivity:{target}")
        accepted: List[Query] = []
        attempts = 0
        max_attempts = max_attempts_factor * queries_per_group
        while len(accepted) < queries_per_group and attempts < max_attempts:
            attempts += 1
            base = generate_query(config, rng, dimensions=dimensions)
            calibrated = calibrate_to_selectivity(
                base, reference, target, tolerance=tolerance
            )
            if calibrated is not None:
                accepted.append(calibrated)
        if not accepted:
            raise RuntimeError(
                f"could not calibrate any query to selectivity {target}"
            )
        groups.append(SelectivityGroup(target=target, queries=accepted))
    return groups
