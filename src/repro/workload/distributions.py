"""Attribute value distributions.

The evaluation (Section V) populates records with four families of
attribute distributions, all on [0, 1]:

* **uniform** — i.i.d. uniform over the unit interval;
* **range** — per *server*, uniform within a random sub-range of length
  0.5 (this is what makes servers' data distinguishable and summaries
  useful for pruning);
* **Gaussian** — scaled and truncated into [0, 1]; we give each server its
  own mean so data is heterogeneous across servers;
* **Pareto** — heavy-tailed, scaled and truncated into [0, 1], with a
  per-server scale parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


def uniform_values(rng: np.random.Generator, n: int) -> np.ndarray:
    """i.i.d. uniform on [0, 1]."""
    return rng.random(n)


def range_values(
    rng: np.random.Generator, n: int, length: float = 0.5
) -> np.ndarray:
    """Uniform within one random sub-range of the given *length*.

    The sub-range location is drawn once per call (i.e. per server per
    attribute), uniform over feasible positions.
    """
    if not (0.0 < length <= 1.0):
        raise ValueError(f"range length must be in (0, 1], got {length}")
    start = rng.uniform(0.0, 1.0 - length)
    return start + rng.random(n) * length


def gaussian_values(
    rng: np.random.Generator,
    n: int,
    mean: float = None,
    sigma: float = 0.01,
) -> np.ndarray:
    """Truncated Gaussian on [0, 1].

    When *mean* is omitted it is drawn uniform per call (per server).
    Out-of-range draws are resampled (truncation, not clipping, to avoid
    artificial mass at the boundaries).
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if mean is None:
        mean = float(rng.uniform(0.0, 1.0))
    out = rng.normal(mean, sigma, size=n)
    bad = (out < 0.0) | (out > 1.0)
    attempts = 0
    while bad.any() and attempts < 64:
        out[bad] = rng.normal(mean, sigma, size=int(bad.sum()))
        bad = (out < 0.0) | (out > 1.0)
        attempts += 1
    np.clip(out, 0.0, 1.0, out=out)  # pathological means: fall back to clip
    return out


def pareto_values(
    rng: np.random.Generator,
    n: int,
    shape: float = 2.0,
    scale: float = None,
    scale_range: Tuple[float, float] = (0.005, 0.04),
) -> np.ndarray:
    """Truncated Pareto on [0, 1] with per-call (per-server) scale x_m.

    Values follow ``x_m * (1 + Pareto(shape))`` truncated into [0, 1]:
    concentrated just above ``x_m`` with a heavy upper tail.
    """
    if shape <= 0:
        raise ValueError("shape must be positive")
    if scale is None:
        scale = float(rng.uniform(*scale_range))
    out = scale * (1.0 + rng.pareto(shape, size=n))
    return np.clip(out, 0.0, 1.0)


def overlap_values(
    rng: np.random.Generator, n: int, overlap_length: float
) -> np.ndarray:
    """Per-server values confined to a random range of *overlap_length*.

    Used by the data-distribution experiment (Figure 9): each server's
    data for the first eight attributes lies within a range of length
    ``Of / num_nodes`` randomly located in [0, 1]; a larger overlap factor
    ``Of`` makes different servers' data overlap more.
    """
    if not (0.0 < overlap_length <= 1.0):
        raise ValueError(
            f"overlap length must be in (0, 1], got {overlap_length}"
        )
    return range_values(rng, n, overlap_length)


#: dispatchable families, keyed by the names used in workload configs
FAMILIES = {
    "uniform": uniform_values,
    "range": range_values,
    "gaussian": gaussian_values,
    "pareto": pareto_values,
}
