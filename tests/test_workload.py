"""Tests for repro.workload (distributions, generator, queries)."""

import numpy as np
import pytest

from repro.query import selectivity
from repro.roads import SearchRequest
from repro.sim.rng import SeedSequenceFactory
from repro.workload import (
    FAMILY_ORDER,
    WorkloadConfig,
    gaussian_values,
    generate_node_store,
    generate_node_stores,
    generate_queries,
    generate_query,
    generate_selectivity_groups,
    make_schema,
    merge_stores,
    overlap_values,
    pareto_values,
    query_attribute_cycle,
    range_values,
    uniform_values,
)


class TestDistributions:
    def rng(self):
        return np.random.default_rng(11)

    def test_uniform_in_unit_interval(self):
        v = uniform_values(self.rng(), 1000)
        assert v.min() >= 0 and v.max() <= 1
        assert abs(v.mean() - 0.5) < 0.05

    def test_range_confined(self):
        v = range_values(self.rng(), 1000, 0.5)
        assert v.max() - v.min() <= 0.5 + 1e-12

    def test_range_invalid_length(self):
        with pytest.raises(ValueError):
            range_values(self.rng(), 10, 0.0)
        with pytest.raises(ValueError):
            range_values(self.rng(), 10, 1.5)

    def test_gaussian_truncated(self):
        v = gaussian_values(self.rng(), 1000, mean=0.5, sigma=0.3)
        assert v.min() >= 0 and v.max() <= 1

    def test_gaussian_concentrated(self):
        v = gaussian_values(self.rng(), 1000, mean=0.5, sigma=0.01)
        assert abs(v.mean() - 0.5) < 0.01
        assert v.std() < 0.02

    def test_gaussian_invalid_sigma(self):
        with pytest.raises(ValueError):
            gaussian_values(self.rng(), 10, sigma=0)

    def test_pareto_heavy_tail_shape(self):
        v = pareto_values(self.rng(), 5000, shape=2.0, scale=0.05)
        assert v.min() >= 0.05 - 1e-12
        assert v.max() <= 1.0
        # median near scale * 2^(1/shape)
        assert np.median(v) == pytest.approx(0.05 * 2 ** 0.5, rel=0.15)

    def test_pareto_invalid_shape(self):
        with pytest.raises(ValueError):
            pareto_values(self.rng(), 10, shape=0)

    def test_overlap_values_confined(self):
        v = overlap_values(self.rng(), 500, 0.01)
        assert v.max() - v.min() <= 0.01 + 1e-12

    def test_overlap_invalid(self):
        with pytest.raises(ValueError):
            overlap_values(self.rng(), 10, 0.0)


class TestWorkloadConfig:
    def test_defaults_match_paper(self):
        cfg = WorkloadConfig()
        assert cfg.num_nodes == 320
        assert cfg.records_per_node == 500
        assert cfg.num_attributes == 16
        assert cfg.range_length == 0.5

    def test_attribute_names_grouped(self):
        cfg = WorkloadConfig(attrs_per_family=2)
        assert cfg.attribute_names() == [
            "u0", "u1", "r0", "r1", "g0", "g1", "p0", "p1"
        ]

    def test_family_of(self):
        cfg = WorkloadConfig()
        assert cfg.family_of("u3") == "uniform"
        assert cfg.family_of("p0") == "pareto"
        with pytest.raises(KeyError):
            cfg.family_of("x9")

    def test_invalid(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_nodes=0)
        with pytest.raises(ValueError):
            WorkloadConfig(overlap_factor=0)


class TestGenerator:
    def test_store_shape(self):
        cfg = WorkloadConfig(num_nodes=4, records_per_node=30, seed=2)
        stores = generate_node_stores(cfg)
        assert len(stores) == 4
        assert all(len(s) == 30 for s in stores)
        assert all(s.schema == make_schema(cfg) for s in stores)

    def test_deterministic(self):
        cfg = WorkloadConfig(num_nodes=3, records_per_node=20, seed=9)
        a = generate_node_stores(cfg)
        b = generate_node_stores(cfg)
        for x, y in zip(a, b):
            assert np.allclose(x.numeric_matrix, y.numeric_matrix)

    def test_nodes_differ(self):
        cfg = WorkloadConfig(num_nodes=2, records_per_node=20, seed=9)
        a, b = generate_node_stores(cfg)
        assert not np.allclose(a.numeric_matrix, b.numeric_matrix)

    def test_range_family_confined_per_node(self):
        cfg = WorkloadConfig(num_nodes=1, records_per_node=400, seed=1)
        st = generate_node_store(cfg, 0)
        col = st.numeric_column("r0")
        assert col.max() - col.min() <= cfg.range_length + 1e-12

    def test_overlap_factor_mode(self):
        cfg = WorkloadConfig(
            num_nodes=10, records_per_node=200, overlap_factor=2.0, seed=1
        )
        st = generate_node_store(cfg, 0)
        # first 8 attributes confined to Of/num_nodes = 0.2
        for name in cfg.attribute_names()[:8]:
            col = st.numeric_column(name)
            assert col.max() - col.min() <= 0.2 + 1e-12
        # remaining attributes keep their family behaviour
        g = st.numeric_column("g0")
        assert g.max() <= 1.0

    def test_merge_stores(self):
        cfg = WorkloadConfig(num_nodes=3, records_per_node=10, seed=2)
        stores = generate_node_stores(cfg)
        merged = merge_stores(stores)
        assert len(merged) == 30

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_stores([])


class TestQueries:
    def test_dimension_cycle_matches_paper_default(self):
        cfg = WorkloadConfig()
        names = query_attribute_cycle(cfg, 6)
        # two uniform, two range, one gaussian, one pareto
        fams = [cfg.family_of(n) for n in names]
        assert fams.count("uniform") == 2
        assert fams.count("range") == 2
        assert fams.count("gaussian") == 1
        assert fams.count("pareto") == 1

    def test_cycle_eight_dims(self):
        cfg = WorkloadConfig()
        fams = [cfg.family_of(n) for n in query_attribute_cycle(cfg, 8)]
        assert all(fams.count(f) == 2 for f in FAMILY_ORDER)

    def test_cycle_bounds(self):
        cfg = WorkloadConfig()
        with pytest.raises(ValueError):
            query_attribute_cycle(cfg, 0)
        with pytest.raises(ValueError):
            query_attribute_cycle(cfg, 17)

    def test_default_query_shape(self):
        cfg = WorkloadConfig(seed=4)
        rng = SeedSequenceFactory(4).fresh_generator("q")
        q = generate_query(cfg, rng)
        assert q.dimensions == 6
        for p in q.range_predicates():
            assert p.length == pytest.approx(0.25)
            assert 0 <= p.lo and p.hi <= 1

    def test_generate_queries_deterministic(self):
        cfg = WorkloadConfig(seed=4)
        a = generate_queries(cfg, num_queries=5)
        b = generate_queries(cfg, num_queries=5)
        for x, y in zip(a, b):
            assert str(x) == str(y)

    def test_invalid_range_length(self):
        cfg = WorkloadConfig()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            generate_query(cfg, rng, range_length=0.0)


class TestSelectivityGroups:
    def test_groups_hit_targets(self):
        cfg = WorkloadConfig(num_nodes=16, records_per_node=200, seed=8)
        stores = generate_node_stores(cfg)
        reference = merge_stores(stores)
        groups = generate_selectivity_groups(
            cfg,
            reference,
            targets=(0.01, 0.05),
            queries_per_group=10,
            tolerance=0.5,
        )
        assert [g.target for g in groups] == [0.01, 0.05]
        for g in groups:
            assert len(g.queries) == 10
            for s in g.measured_selectivities(reference):
                assert abs(s - g.target) <= 0.5 * g.target + 1e-9


class TestZipfSkew:
    def test_fixed_default(self):
        from repro.workload import records_for_node

        cfg = WorkloadConfig(num_nodes=8, records_per_node=100, seed=1)
        assert all(records_for_node(cfg, i) == 100 for i in range(8))

    def test_zipf_counts_vary_but_average_near_target(self):
        from repro.workload import records_for_node

        cfg = WorkloadConfig(
            num_nodes=400, records_per_node=100,
            records_distribution="zipf", seed=2,
        )
        counts = [records_for_node(cfg, i) for i in range(400)]
        assert min(counts) >= 1
        assert max(counts) > min(counts)  # genuinely skewed
        mean = sum(counts) / len(counts)
        assert 30 <= mean <= 300  # same order as the target

    def test_zipf_stores_generated(self):
        cfg = WorkloadConfig(
            num_nodes=6, records_per_node=50,
            records_distribution="zipf", seed=3,
        )
        stores = generate_node_stores(cfg)
        sizes = [len(s) for s in stores]
        assert len(set(sizes)) > 1

    def test_zipf_deterministic(self):
        cfg = WorkloadConfig(
            num_nodes=6, records_per_node=50,
            records_distribution="zipf", seed=3,
        )
        a = [len(s) for s in generate_node_stores(cfg)]
        b = [len(s) for s in generate_node_stores(cfg)]
        assert a == b

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            WorkloadConfig(records_distribution="pareto")
        with pytest.raises(ValueError):
            WorkloadConfig(records_distribution="zipf", zipf_exponent=1.0)

    def test_skewed_federation_queries_exact(self):
        """ROADS stays exact on a heterogeneous federation."""
        from repro.roads import RoadsConfig, RoadsSystem
        from repro.summaries import SummaryConfig

        cfg = WorkloadConfig(
            num_nodes=16, records_per_node=60,
            records_distribution="zipf", seed=9,
        )
        stores = generate_node_stores(cfg)
        system = RoadsSystem.build(
            RoadsConfig(num_nodes=16, records_per_node=60, max_children=3,
                        summary=SummaryConfig(histogram_buckets=60), seed=9),
            stores,
        )
        reference = merge_stores(stores)
        for q in generate_queries(cfg, num_queries=5, dimensions=2):
            o = system.search(SearchRequest(q, client_node=0)).outcome
            assert o.total_matches == q.match_count(reference)
