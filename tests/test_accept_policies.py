"""Tests for child-acceptance policies (repro.hierarchy.accept)."""

import pytest

from repro.hierarchy import Hierarchy, JoinError, Server, build_hierarchy
from repro.hierarchy.accept import (
    AcceptAll,
    AcceptancePolicy,
    CompositePolicy,
    DomainAffinityPolicy,
    LoadCapPolicy,
)


def make_server(sid, policy=None, k=3):
    s = Server(sid, max_children=k)
    s.accept_policy = policy
    return s


class TestHook:
    def test_default_accepts(self):
        s = make_server(0)
        assert s.willing_to_accept(1)

    def test_accept_all_equivalent_to_default(self):
        s = make_server(0, AcceptAll())
        assert s.willing_to_accept(1)

    def test_policy_consulted_after_capacity(self):
        class Never(AcceptancePolicy):
            def __init__(self):
                self.calls = 0

            def accepts(self, server, joiner_id):
                self.calls += 1
                return False

        never = Never()
        s = make_server(0, never, k=1)
        s.add_child(Server(1))
        # Capacity already exhausted: policy not even consulted.
        assert not s.willing_to_accept(2)
        assert never.calls == 0

    def test_policy_can_refuse(self):
        s = make_server(0, LoadCapPolicy(load_of=lambda sid: 0.99))
        assert not s.willing_to_accept(1)


class TestDomainAffinity:
    def domains(self):
        return {0: "a", 1: "a", 2: "a", 3: "b", 4: "b", 5: "b"}

    def test_same_domain_always_welcome(self):
        p = DomainAffinityPolicy(self.domains())
        s = make_server(0, p)
        assert s.willing_to_accept(1)

    def test_strict_refuses_foreign(self):
        p = DomainAffinityPolicy(self.domains(), strict=True)
        s = make_server(0, p)
        assert s.willing_to_accept(2)
        assert not s.willing_to_accept(3)

    def test_foreign_quota(self):
        p = DomainAffinityPolicy(self.domains(), foreign_quota=1)
        s = make_server(0, p, k=5)
        assert s.willing_to_accept(3)
        s.add_child(Server(3))
        assert not s.willing_to_accept(4)  # quota used
        assert s.willing_to_accept(1)  # same-domain still fine

    def test_join_respects_domains(self):
        """A strict-domain hierarchy clusters by domain: the accept-all
        root bridges the two domains, everything below stays pure."""
        domains = {i: ("a" if i < 4 else "b") for i in range(8)}
        servers = {}
        for i in range(8):
            policy = (
                None if i == 0
                else DomainAffinityPolicy(domains, strict=True)
            )
            servers[i] = make_server(i, policy, k=2)
        # Join one node of each domain first so the root bridges both.
        order = [0, 1, 4, 2, 3, 5, 6, 7]
        h = build_hierarchy(servers[i] for i in order)
        h.check_invariants()
        # Every edge below the root is intra-domain.
        for s in h:
            if s.parent is not None and s.parent.server_id != 0:
                assert domains[s.server_id] == domains[s.parent.server_id]
        # Both domains are fully represented.
        assert len(h) == 8


class TestLoadCap:
    def test_every_server_overloaded_raises(self):
        loads = {0: 0.9}
        policy = LoadCapPolicy(load_of=lambda sid: loads.get(sid, 0.0))
        root = make_server(0, policy, k=4)
        h = Hierarchy(root)
        with pytest.raises(JoinError):
            h.join(make_server(99))

    def test_join_fails_over_past_overloaded_server(self):
        """The walk backtracks past a refusing branch to a willing one."""
        loads = {1: 0.95}  # the first (shallowest) branch is overloaded
        policy = LoadCapPolicy(load_of=lambda sid: loads.get(sid, 0.0))
        root = make_server(0, None, k=2)
        a, b = make_server(1, policy, k=4), make_server(2, policy, k=4)
        h = Hierarchy(root)
        h.join(a)
        h.join(b)
        newcomer = make_server(3, policy, k=4)
        parent = h.join(newcomer)
        assert parent.server_id == 2  # not the overloaded branch
        h.check_invariants()

    def test_load_drop_restores_acceptance(self):
        loads = {0: 0.9}
        policy = LoadCapPolicy(load_of=lambda sid: loads.get(sid, 0.0))
        root = make_server(0, policy)
        h = Hierarchy(root)
        loads[0] = 0.2
        h.join(make_server(1))
        assert h.get(1).parent is root


class TestComposite:
    def test_all_must_accept(self):
        ok = AcceptAll()
        deny = LoadCapPolicy(load_of=lambda sid: 1.0)
        s1 = make_server(0, CompositePolicy((ok, ok)))
        s2 = make_server(1, CompositePolicy((ok, deny)))
        assert s1.willing_to_accept(9)
        assert not s2.willing_to_accept(9)
