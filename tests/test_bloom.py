"""Unit tests for repro.summaries.bloom."""

import pytest

from repro.query import EqualsPredicate, RangePredicate
from repro.summaries import BloomFilterSummary, SummaryMergeError, optimal_parameters


class TestBasics:
    def test_empty(self):
        f = BloomFilterSummary("enc", 128, 3)
        assert f.is_empty
        assert f.fill_ratio == 0.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BloomFilterSummary("enc", 0)
        with pytest.raises(ValueError):
            BloomFilterSummary("enc", 10, 0)

    def test_no_false_negatives(self):
        values = [f"codec-{i}" for i in range(200)]
        f = BloomFilterSummary.from_values("enc", values, 4096, 4)
        for v in values:
            assert f.contains(v)
            assert f.may_match(EqualsPredicate("enc", v))

    def test_false_positive_rate_reasonable(self):
        values = [f"codec-{i}" for i in range(100)]
        f = BloomFilterSummary.from_values("enc", values, 2048, 4)
        fps = sum(1 for i in range(1000) if f.contains(f"absent-{i}"))
        assert fps < 100  # <10% on a comfortably sized filter

    def test_deterministic_hashing(self):
        a = BloomFilterSummary.from_values("enc", ["x"], 256, 3)
        b = BloomFilterSummary.from_values("enc", ["x"], 256, 3)
        assert a == b

    def test_range_predicate_rejected(self):
        f = BloomFilterSummary("enc")
        with pytest.raises(TypeError, match="range"):
            f.may_match(RangePredicate("a", 0, 1))


class TestMerge:
    def test_or_semantics(self):
        a = BloomFilterSummary.from_values("enc", ["x"], 256, 3)
        b = BloomFilterSummary.from_values("enc", ["y"], 256, 3)
        m = a.merge(b)
        assert m.contains("x") and m.contains("y")

    def test_merge_does_not_mutate(self):
        a = BloomFilterSummary.from_values("enc", ["x"], 256, 3)
        b = BloomFilterSummary.from_values("enc", ["y"], 256, 3)
        a.merge(b)
        assert not a.contains("y")

    def test_incompatible_params(self):
        with pytest.raises(SummaryMergeError):
            BloomFilterSummary("enc", 256, 3).merge(
                BloomFilterSummary("enc", 512, 3)
            )
        with pytest.raises(SummaryMergeError):
            BloomFilterSummary("enc", 256, 3).merge(
                BloomFilterSummary("enc", 256, 4)
            )
        with pytest.raises(SummaryMergeError):
            BloomFilterSummary("enc", 256, 3).merge(
                BloomFilterSummary("other", 256, 3)
            )


class TestSizing:
    def test_constant_size(self):
        a = BloomFilterSummary.from_values("enc", ["x"], 1024, 4)
        b = BloomFilterSummary.from_values(
            "enc", [f"v{i}" for i in range(500)], 1024, 4
        )
        assert a.encoded_size() == b.encoded_size()
        assert a.encoded_size() == 12 + 128

    def test_estimated_fpr_grows_with_load(self):
        light = BloomFilterSummary.from_values("enc", ["a"], 256, 3)
        heavy = BloomFilterSummary.from_values(
            "enc", [f"v{i}" for i in range(200)], 256, 3
        )
        assert heavy.estimated_false_positive_rate() > (
            light.estimated_false_positive_rate()
        )


class TestOptimalParameters:
    def test_classic_formula(self):
        bits, hashes = optimal_parameters(1000, 0.01)
        assert 9000 < bits < 10500  # ~9.6 bits/item at 1% FPR
        assert hashes in (6, 7)

    def test_invalid(self):
        with pytest.raises(ValueError):
            optimal_parameters(0, 0.01)
        with pytest.raises(ValueError):
            optimal_parameters(10, 1.5)
