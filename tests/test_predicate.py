"""Unit tests for repro.query.predicate."""

import numpy as np
import pytest

from repro.query import EqualsPredicate, RangePredicate, greater_than, less_than


class TestRangePredicate:
    def test_inverted_rejected(self):
        with pytest.raises(ValueError, match="lo"):
            RangePredicate("a", 0.9, 0.1)

    def test_length(self):
        assert RangePredicate("a", 0.2, 0.7).length == pytest.approx(0.5)

    def test_matches_value(self):
        p = RangePredicate("a", 0.2, 0.7)
        assert p.matches_value(0.2)
        assert p.matches_value(0.7)
        assert not p.matches_value(0.71)

    def test_mask(self, unit_store):
        p = RangePredicate("a", 0.0, 0.5)
        mask = p.mask(unit_store)
        assert mask.sum() == (unit_store.numeric_column("a") <= 0.5).sum()

    def test_size_bytes(self):
        assert RangePredicate("a", 0, 1).size_bytes == 24

    def test_str(self):
        assert "0.2 <= a <= 0.7" in str(RangePredicate("a", 0.2, 0.7))


class TestEqualsPredicate:
    def test_matches_value(self):
        p = EqualsPredicate("enc", "MPEG2")
        assert p.matches_value("MPEG2")
        assert not p.matches_value("H264")

    def test_mask(self, mixed_store):
        p = EqualsPredicate("type", "camera")
        mask = p.mask(mixed_store)
        col = mixed_store.categorical_column("type")
        assert mask.sum() == col.count("camera")

    def test_size_scales_with_value(self):
        short = EqualsPredicate("e", "ab")
        long = EqualsPredicate("e", "abcdefgh")
        assert long.size_bytes > short.size_bytes


class TestComparisonHelpers:
    def test_greater_than_excludes_threshold(self):
        p = greater_than("rate", 150.0, 1000.0)
        assert not p.matches_value(150.0)
        assert p.matches_value(150.0001)
        assert p.matches_value(1000.0)

    def test_less_than_excludes_threshold(self):
        p = less_than("rate", 150.0)
        assert not p.matches_value(150.0)
        assert p.matches_value(149.9999)
        assert p.matches_value(0.0)

    def test_paper_example_semantics(self, unit_store):
        """rate > t is true iff some value beyond t exists."""
        col = unit_store.numeric_column("a")
        t = float(np.median(col))
        p = greater_than("a", t)
        assert p.mask(unit_store).sum() == (col > t).sum()
