"""Unit tests for repro.overlay.routing."""

import numpy as np
import pytest

from repro.hierarchy import (
    AttachedOwner,
    Server,
    aggregate_round,
    build_hierarchy,
)
from repro.overlay import (
    ReplicationOverlay,
    decide_descent,
    decide_start,
    scope_candidates,
)
from repro.query import Query, RangePredicate
from repro.records import RecordStore, Schema, numeric
from repro.summaries import SummaryConfig

CFG = SummaryConfig(histogram_buckets=100)


@pytest.fixture
def schema():
    return Schema([numeric("x")])


@pytest.fixture
def hierarchy(schema):
    """Degree-2, 7 servers; each leaf/branch owns a disjoint value band.

    Server i's records live in [i/10, i/10 + 0.05], so queries can be
    aimed at exactly one server's band.
    """
    h = build_hierarchy(Server(i, max_children=2) for i in range(7))
    rng = np.random.default_rng(0)
    for i in range(7):
        vals = (i / 10.0 + rng.random((20, 1)) * 0.05).clip(0, 1)
        st = RecordStore.from_arrays(schema, vals, [])
        h.get(i).attach_owner(AttachedOwner(f"o{i}", st, True))
    aggregate_round(h, CFG)
    ReplicationOverlay(h, CFG).replicate_round()
    return h


def band_query(i):
    return Query.of(RangePredicate("x", i / 10.0, i / 10.0 + 0.05))


class TestDecideDescent:
    def test_local_owner_hit(self, hierarchy):
        server = hierarchy.get(3)
        decision = decide_descent(server, band_query(3), CFG)
        assert [o.owner_id for o in decision.owner_hits] == ["o3"]

    def test_redirects_to_matching_children_only(self, hierarchy):
        root = hierarchy.root
        decision = decide_descent(root, band_query(3), CFG)
        # server 3 lives under child 1 (degree-2 build: 1,2 children of 0)
        path_to_3 = hierarchy.get(3).root_path
        assert decision.redirect_ids == [path_to_3[1]]

    def test_no_match_no_redirects(self, hierarchy):
        decision = decide_descent(hierarchy.root, Query.of(
            RangePredicate("x", 0.95, 0.99)
        ), CFG)
        assert decision.redirect_ids == []
        assert decision.owner_hits == []

    def test_response_size_scales(self, hierarchy):
        d0 = decide_descent(hierarchy.root, Query.of(
            RangePredicate("x", 0.95, 0.99)
        ), CFG)
        d1 = decide_descent(hierarchy.root, Query.of(
            RangePredicate("x", 0.0, 1.0)
        ), CFG)
        assert d1.response_size_bytes > d0.response_size_bytes


class TestDecideStart:
    def test_overlay_shortcuts_included(self, hierarchy):
        # Start at a leaf; target a band owned by a different branch.
        leaf = hierarchy.get(5)
        target = hierarchy.get(4)
        decision = decide_start(leaf, band_query(4), CFG)
        # The overlay must point (directly or via a branch top) toward
        # the target's branch without going through the root: every
        # redirect target is a sibling/ancestor-sibling of the start.
        assert decision.redirect_ids
        covered = set()
        for rid in decision.redirect_ids:
            covered.update(
                s.server_id for s in hierarchy.get(rid).iter_subtree()
            )
        assert target.server_id in covered

    def test_ancestors_not_redirect_targets(self, hierarchy):
        leaf = hierarchy.get(5)
        decision = decide_start(leaf, Query.of(RangePredicate("x", 0, 1)), CFG)
        ancestors = set(leaf.root_path[:-1])
        assert not ancestors & set(decision.redirect_ids)

    def test_start_covers_disjoint_partition(self, hierarchy):
        """Start fan-out plus own subtree covers every server exactly once."""
        leaf = hierarchy.get(6)
        decision = decide_start(leaf, Query.of(RangePredicate("x", 0, 1)), CFG)
        seen = [s.server_id for s in leaf.iter_subtree()]
        for rid in decision.redirect_ids:
            seen.extend(s.server_id for s in hierarchy.get(rid).iter_subtree())
        assert sorted(seen) == sorted(
            s.server_id for s in hierarchy if s.server_id not in
            set(leaf.root_path[:-1])
        )

    def test_start_equals_descent_at_root(self, hierarchy):
        q = band_query(2)
        start = decide_start(hierarchy.root, q, CFG)
        descent = decide_descent(hierarchy.root, q, CFG)
        assert start.redirect_ids == descent.redirect_ids


class TestScopeCandidates:
    def test_nearest_first(self, hierarchy):
        leaf = hierarchy.get(5)
        cands = scope_candidates(leaf)
        assert cands == list(reversed(leaf.root_path[:-1]))

    def test_root_has_none(self, hierarchy):
        assert scope_candidates(hierarchy.root) == []
