"""Hierarchical profiling plane: tree invariants, exports, determinism."""

import json

import pytest

from repro.bench import (
    RunPlan,
    WallClockProfiler,
    compare_artifacts,
    profile_scenario,
    run_scenario,
)
from repro.bench.artifact import BenchArtifact
from repro.cli import main
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import instrumented_query_run
from repro.telemetry import Telemetry
from repro.telemetry.profiling import (
    PROFILE_SCHEMA,
    CallPathProfiler,
    census_fingerprint,
    collapsed_stacks,
    diff_documents,
    flatten_document,
    format_top,
    format_tree,
    hotspot_shares,
    parse_collapsed,
    parse_speedscope,
    speedscope_document,
    top_frames,
)


def _nested_profiler() -> CallPathProfiler:
    """A small hand-built tree: dispatch -> {deliver -> install, send}."""
    prof = CallPathProfiler()
    with prof.section("sim.dispatch"):
        with prof.section("net.deliver"):
            with prof.section("update.install"):
                pass
        with prof.section("net.send"):
            pass
    with prof.section("sim.dispatch"):
        with prof.section("net.send"):
            pass
    return prof


def _check_invariants(node, parent_cum=None):
    """self <= cum, children-cum sum <= cum, recursively."""
    cum = node["cum_seconds"]
    assert 0.0 <= node["self_seconds"] <= cum + 1e-12
    child_sum = sum(c["cum_seconds"] for c in node.get("children", []))
    assert child_sum <= cum + 1e-9
    if parent_cum is not None:
        assert cum <= parent_cum + 1e-9
    for child in node.get("children", []):
        _check_invariants(child, cum)


class TestCallPathTree:
    def test_tree_structure_and_invariants(self):
        doc = _nested_profiler().document()
        assert doc["schema"] == PROFILE_SCHEMA
        roots = doc["tree"]["children"]
        assert [r["name"] for r in roots] == ["sim.dispatch"]
        dispatch = roots[0]
        assert dispatch["calls"] == 2
        assert sorted(c["name"] for c in dispatch["children"]) == [
            "net.deliver", "net.send",
        ]
        deliver = next(
            c for c in dispatch["children"] if c["name"] == "net.deliver"
        )
        assert [c["name"] for c in deliver["children"]] == ["update.install"]
        for root in roots:
            _check_invariants(root)

    def test_self_time_partitions_total(self):
        doc = _nested_profiler().document()
        self_sum = sum(
            node["self_seconds"]
            for node in flatten_document(doc).values()
            # flatten merges same-name frames; walk the tree instead
        )
        # flatten_document already sums self over all paths per name, so
        # the per-name self times partition the total exactly.
        assert self_sum == pytest.approx(doc["total_seconds"], rel=1e-9)

    def test_recursive_frame_nests_without_double_count(self):
        prof = CallPathProfiler()
        prof.enter("a")
        prof.enter("a")  # self-nested: a distinct a/a child path
        prof.exit()
        prof.exit()
        doc = prof.document()
        (root,) = doc["tree"]["children"]
        assert root["name"] == "a"
        assert root["calls"] == 1
        (child,) = root["children"]
        assert child["name"] == "a"
        # The flat view counts only the top-most occurrence, so the
        # recursive nesting never exceeds the profiled total.
        flat = prof.flat()["a"]
        assert flat["calls"] == 2
        assert flat["seconds"] == pytest.approx(root["cum_seconds"])
        assert flat["seconds"] <= doc["total_seconds"] + 1e-9

    def test_dual_clock_records_sim_seconds(self):
        clock = {"now": 0.0}
        prof = CallPathProfiler()
        prof.bind_clock(lambda: clock["now"])
        prof.enter("sim.dispatch")
        clock["now"] = 2.5
        prof.exit()
        (root,) = prof.document()["tree"]["children"]
        assert root["sim_seconds"] == pytest.approx(2.5)

    def test_unbalanced_exit_raises(self):
        prof = CallPathProfiler()
        with pytest.raises(RuntimeError):
            prof.exit()

    def test_add_attaches_leaf_under_current_path(self):
        prof = CallPathProfiler()
        with prof.section("sim.dispatch"):
            prof.add("io.flush", 0.125, calls=3)
        (root,) = prof.document()["tree"]["children"]
        (leaf,) = root["children"]
        assert leaf["name"] == "io.flush"
        assert leaf["calls"] == 3
        assert leaf["cum_seconds"] == pytest.approx(0.125)
        assert leaf["self_seconds"] == pytest.approx(0.125)


class TestFlatShim:
    def test_wallclock_profiler_is_callpath(self):
        assert issubclass(WallClockProfiler, CallPathProfiler)

    def test_nested_same_name_not_double_counted(self):
        prof = WallClockProfiler()
        with prof.section("sim.dispatch"):
            with prof.section("sim.dispatch"):
                pass
        flat = prof.snapshot()["sections"]["sim.dispatch"]
        assert flat["calls"] == 2
        # ``seconds`` is the top-most cumulative, not the sum over both
        # nesting levels, so it never exceeds the profiled total.
        assert flat["seconds"] <= prof.total_seconds + 1e-9

    def test_snapshot_shape_and_reset(self):
        prof = WallClockProfiler()
        with prof.section("net.send"):
            pass
        prof.count("sim.events", 7)
        snap = prof.snapshot()
        assert set(snap) == {"sections", "counters"}
        assert snap["counters"] == {"sim.events": 7}
        section = snap["sections"]["net.send"]
        assert set(section) == {"calls", "seconds", "self_seconds"}
        prof.reset()
        assert prof.snapshot() == {"sections": {}, "counters": {}}

    def test_telemetry_attach_binds_clock(self):
        tel = Telemetry()
        tel.bind_clock(lambda: 42.0)
        prof = WallClockProfiler()
        tel.attach_profiler(prof)
        assert prof._clock() == 42.0


class TestExports:
    @pytest.fixture(scope="class")
    def document(self):
        prof = _nested_profiler()
        prof.census("query", 3, 2)
        prof.census("summary-full", 1, 5)
        return prof.document()

    def test_collapsed_round_trip(self, document):
        stacks = parse_collapsed(collapsed_stacks(document))
        assert stacks  # at least one non-zero-self path
        for path in stacks:
            assert path[0] == "sim.dispatch"

    def test_speedscope_round_trip(self, document):
        doc = speedscope_document(document)
        assert doc["$schema"].startswith("https://www.speedscope.app")
        (profile,) = doc["profiles"]
        assert profile["type"] == "sampled"
        assert len(profile["samples"]) == len(profile["weights"])
        assert parse_speedscope(doc) == parse_collapsed(
            collapsed_stacks(document)
        )

    def test_census_fingerprint_is_order_independent(self, document):
        census = document["census"]
        reordered = {
            kind: dict(reversed(list(per.items())))
            for kind, per in reversed(list(census.items()))
        }
        assert census_fingerprint(reordered) == document["census_fingerprint"]
        assert census_fingerprint(reordered) != census_fingerprint(
            {"query": {"3": 99}}
        )

    def test_top_frames_and_formatting(self, document):
        frames = top_frames(document, k=3)
        assert len(frames) <= 3
        text = format_top(document)
        assert "sim.dispatch" in text
        assert "self s" in text
        tree_text = format_tree(document, min_share=0.0)
        assert "sim.dispatch" in tree_text.splitlines()[0]

    def test_hotspot_shares_sum_to_one(self, document):
        shares = hotspot_shares(document)
        assert sum(shares.values()) == pytest.approx(1.0, abs=1e-6)


class TestDiff:
    def test_identical_documents(self):
        doc = _nested_profiler().document()
        text = diff_documents(doc, doc, label_a="old", label_b="new")
        assert "identical" in text

    def test_census_change_flagged(self):
        prof_a = _nested_profiler()
        prof_a.census("query", 1)
        prof_b = _nested_profiler()
        prof_b.census("summary-full", 2)
        text = diff_documents(prof_a.document(), prof_b.document())
        assert "DIFFERENT" in text


class TestDeterminismTripwire:
    """Attaching the profiler must not perturb the simulation."""

    @pytest.mark.parametrize("seed", [5, 11])
    def test_profiled_arm_matches_unprofiled(self, seed):
        settings = ExperimentSettings.smoke().with_(seed=seed)

        plain, _, _ = instrumented_query_run(settings, seed)

        tel = Telemetry()
        tel.attach_profiler(CallPathProfiler())
        profiled, tel, _ = instrumented_query_run(
            settings, seed, telemetry=tel
        )

        reg_a = plain.metrics.registry
        reg_b = profiled.metrics.registry
        assert (
            reg_a.merged_histogram("query.latency").summary()
            == reg_b.merged_histogram("query.latency").summary()
        )
        assert plain.sim.now == profiled.sim.now
        assert plain.sim.processed == profiled.sim.processed
        assert (
            plain.network.delivered_by_kind
            == profiled.network.delivered_by_kind
        )
        # The profiler's census agrees with the transport's own counts.
        census = tel.profiler._census
        per_kind = {k: sum(v.values()) for k, v in census.items()}
        assert per_kind == profiled.network.delivered_by_kind


class TestProfileScenarioAndCli:
    @pytest.fixture(scope="class")
    def document(self):
        return profile_scenario(RunPlan("overlay", scale="smoke", seed=3))

    def test_document_shape(self, document):
        assert document["schema"] == PROFILE_SCHEMA
        assert document["total_seconds"] > 0
        flat = flatten_document(document)
        assert "sim.dispatch" in flat
        assert "net.deliver" in flat
        assert document["census"]  # at least one message kind delivered

    def test_dispatch_loop_dominates_tree(self, document):
        roots = {r["name"]: r for r in document["tree"]["children"]}
        assert "sim.dispatch" in roots
        top_root = max(
            document["tree"]["children"], key=lambda r: r["cum_seconds"]
        )
        assert top_root["name"] == "sim.dispatch"

    def test_cli_profile_run_and_exports(self, tmp_path, capsys):
        json_path = tmp_path / "prof.json"
        collapsed_path = tmp_path / "prof.collapsed"
        speedscope_path = tmp_path / "prof.speedscope.json"
        rc = main([
            "profile", "overlay", "--scale", "smoke", "--seed", "3",
            "--tree",
            "--json", str(json_path),
            "--collapsed", str(collapsed_path),
            "--speedscope", str(speedscope_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sim.dispatch" in out
        assert "hotspots:" in out
        doc = json.loads(json_path.read_text())
        assert doc["schema"] == PROFILE_SCHEMA
        assert parse_collapsed(collapsed_path.read_text())
        scope = json.loads(speedscope_path.read_text())
        assert parse_speedscope(scope) == parse_collapsed(
            collapsed_path.read_text()
        )

    def test_cli_profile_diff(self, tmp_path, capsys):
        doc = _nested_profiler().document()
        path = tmp_path / "a.json"
        path.write_text(json.dumps(doc))
        rc = main(["profile", "--diff", str(path), str(path)])
        assert rc == 0
        assert "identical" in capsys.readouterr().out

    def test_cli_profile_diff_rejects_non_profile(self, tmp_path, capsys):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema": "other/1"}))
        rc = main(["profile", "--diff", str(path), str(path)])
        assert rc == 2
        assert PROFILE_SCHEMA in capsys.readouterr().out

    def test_cli_profile_requires_scenario_or_diff(self, capsys):
        rc = main(["profile"])
        assert rc == 2


class TestCompareGate:
    @pytest.fixture(scope="class")
    def artifact(self):
        return run_scenario(RunPlan("overlay", scale="smoke", seed=3))

    def _clone(self, artifact: BenchArtifact) -> BenchArtifact:
        return BenchArtifact.from_dict(
            json.loads(json.dumps(artifact.to_dict()))
        )

    def test_share_regression_fails(self, artifact):
        current = self._clone(artifact)
        name = next(
            k for k in current.metrics if k.startswith("profile.share.")
        )
        current.metrics[name] = float(artifact.metrics[name]) + 0.5
        result = compare_artifacts(current, artifact)
        assert not result.ok
        assert any(d.name == name for d in result.failed_deltas())

    def test_share_shrink_passes(self, artifact):
        current = self._clone(artifact)
        name = next(
            k for k in current.metrics if k.startswith("profile.share.")
        )
        current.metrics[name] = 0.0
        result = compare_artifacts(current, artifact)
        assert all(d.ok for d in result.deltas if d.name == name)

    def test_census_mismatch_is_hard_failure(self, artifact):
        current = self._clone(artifact)
        current.profile["census_fingerprint"] = "deadbeefdeadbeef"
        result = compare_artifacts(current, artifact)
        assert not result.ok
        assert any("census fingerprint" in f for f in result.failures)

    def test_profile_block_in_artifact(self, artifact):
        assert artifact.profile["schema"] == PROFILE_SCHEMA
        assert artifact.profile["census_fingerprint"]
        assert artifact.profile["hotspot_shares"]
        assert any(
            k.startswith("profile.share.") for k in artifact.metrics
        )
