"""Tests for dynamic records (repro.workload.dynamics) and the full
dynamics + aggregation + delta-propagation loop."""

import numpy as np
import pytest

from repro.roads import RoadsConfig, RoadsSystem, SearchRequest
from repro.sim import Simulator
from repro.summaries import SummaryConfig
from repro.workload import (
    DynamicsConfig,
    RecordDynamics,
    WorkloadConfig,
    generate_node_stores,
    generate_queries,
    merge_stores,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicsConfig(record_interval=0)
        with pytest.raises(ValueError):
            DynamicsConfig(change_fraction=0)
        with pytest.raises(ValueError):
            DynamicsConfig(change_fraction=1.5)
        with pytest.raises(ValueError):
            DynamicsConfig(step_sigma=0)


class TestRandomWalk:
    def make(self, **kwargs):
        wcfg = WorkloadConfig(num_nodes=4, records_per_node=100, seed=3)
        stores = generate_node_stores(wcfg)
        sim = Simulator()
        dyn = RecordDynamics(
            sim, stores, np.random.default_rng(0), DynamicsConfig(**kwargs)
        )
        return wcfg, stores, sim, dyn

    def test_step_changes_expected_fraction(self):
        _, stores, _, dyn = self.make(change_fraction=0.25)
        before = stores[0].numeric_matrix.copy()
        changed = dyn.step()
        assert changed == 4 * 25
        after = stores[0].numeric_matrix
        rows_changed = (np.abs(after - before).sum(axis=1) > 0).sum()
        assert rows_changed <= 25  # clipping can leave some unchanged
        assert rows_changed >= 15

    def test_values_stay_in_bounds(self):
        _, stores, _, dyn = self.make(step_sigma=0.5)  # violent steps
        for _ in range(10):
            dyn.step()
        for st in stores:
            m = st.numeric_matrix
            assert m.min() >= 0.0 and m.max() <= 1.0

    def test_attribute_subset(self):
        _, stores, _, dyn = self.make(attributes=["u0"])
        before = stores[0].numeric_matrix.copy()
        dyn.step()
        after = stores[0].numeric_matrix
        u0 = stores[0].schema.numeric_position("u0")
        others = [j for j in range(before.shape[1]) if j != u0]
        assert np.array_equal(before[:, others], after[:, others])

    def test_periodic_scheduling(self):
        _, _, sim, dyn = self.make(record_interval=6.0)
        sim.run(until=30.5)
        assert dyn.epochs == 5
        dyn.stop()
        sim.run(until=100.0)
        assert dyn.epochs == 5


class TestDynamicFederation:
    def test_summaries_track_drifting_data(self):
        """After any number of drift epochs, a refresh restores exact
        query results — the soft-state freshness guarantee."""
        wcfg = WorkloadConfig(num_nodes=16, records_per_node=80, seed=5)
        stores = generate_node_stores(wcfg)
        system = RoadsSystem.build(
            RoadsConfig(
                num_nodes=16,
                records_per_node=80,
                max_children=3,
                summary=SummaryConfig(histogram_buckets=80),
                delta_updates=True,
                seed=5,
            ),
            stores,
        )
        dyn = RecordDynamics(
            system.sim,
            stores,
            np.random.default_rng(7),
            DynamicsConfig(record_interval=6.0, step_sigma=0.05),
        )
        queries = generate_queries(wcfg, num_queries=5, dimensions=2)
        for _ in range(5):
            system.sim.run(until=system.sim.now + 60.0)  # 10 t_r epochs
            # Freeze the drift while verifying (query execution itself
            # advances virtual time, which would let epochs fire mid-check).
            dyn.pause()
            system.refresh()  # one t_s epoch
            reference = merge_stores(stores)
            for q in queries:
                o = system.search(SearchRequest(q, client_node=0)).outcome
                assert o.total_matches == q.match_count(reference)
            dyn.resume()

    def test_small_steps_mostly_free_under_delta(self):
        """Tiny drifts rarely cross bucket boundaries: most delta epochs
        ship far fewer full summaries than the federation has edges."""
        wcfg = WorkloadConfig(num_nodes=16, records_per_node=80, seed=6)
        stores = generate_node_stores(wcfg)
        system = RoadsSystem.build(
            RoadsConfig(
                num_nodes=16,
                records_per_node=80,
                max_children=3,
                # coarse buckets: a 1e-4 step almost never crosses one
                summary=SummaryConfig(histogram_buckets=10),
                delta_updates=True,
                seed=6,
            ),
            stores,
        )
        dyn = RecordDynamics(
            system.sim,
            stores,
            np.random.default_rng(8),
            DynamicsConfig(
                record_interval=6.0, step_sigma=1e-4, change_fraction=0.05
            ),
        )
        full, total = 0, 0
        for _ in range(10):
            system.sim.run(until=system.sim.now + 6.0)
            report = system.refresh()
            full += report.aggregation.full_reports
            total += report.aggregation.messages
        assert full < total * 0.5  # most reports were keep-alives
