"""The concurrent serving plane: service queues, load-shed, multiplexing.

Transport level: ServiceConfig turns each node into a single-server
FIFO with a bounded waiting room — messages serialize behind the
service time, overflow is shed, and sheds notify the sender. System
level: many in-flight queries interleave with the free-running update
plane over the shared dispatcher, deterministically for a fixed seed,
and the simulator drains back to an empty event heap.
"""

import numpy as np
import pytest

from repro.net import DelaySpace, Network
from repro.net.transport import ServiceConfig
from repro.roads import (
    LoadConfig,
    LoadGenerator,
    RetryPolicy,
    RoadsConfig,
    RoadsSystem,
    SearchRequest,
)
from repro.sim import QUERY, MetricsCollector, Simulator
from repro.summaries import SummaryConfig
from repro.workload import WorkloadConfig, generate_node_stores, generate_queries

SEED = 9
NODES = 24


def make_net(service=None, node=1):
    sim = Simulator()
    ds = DelaySpace(8, np.random.default_rng(0), jitter_ms=0.0)
    net = Network(sim, ds, MetricsCollector())
    if service is not None:
        net.set_service(node, service)
    return sim, ds, net


def build_system(**overrides):
    wcfg = WorkloadConfig(num_nodes=NODES, records_per_node=60, seed=SEED)
    cfg = RoadsConfig(
        num_nodes=NODES,
        records_per_node=60,
        max_children=4,
        summary=SummaryConfig(histogram_buckets=200),
        seed=SEED,
        **overrides,
    )
    return RoadsSystem.build(cfg, generate_node_stores(wcfg))


class TestServiceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(service_time=0)
        with pytest.raises(ValueError):
            ServiceConfig(queue_limit=-1)
        ServiceConfig(queue_limit=0)  # zero waiting room is legal

    def test_unconfigured_stats_are_zero(self):
        _, _, net = make_net()
        stats = net.service_stats(3)
        assert stats == {
            "served": 0, "shed": 0, "depth": 0,
            "max_depth": 0, "busy_seconds": 0.0, "waiting": 0.0,
        }


class TestServiceQueue:
    def test_messages_serialize_behind_service_time(self):
        sim, ds, net = make_net(ServiceConfig(service_time=0.5))
        done = []
        net.register(1, lambda m: done.append((m.payload, sim.now)))
        net.send(0, 1, QUERY, 10, payload="a")
        net.send(0, 1, QUERY, 10, payload="b")
        sim.run()
        assert [p for p, _ in done] == ["a", "b"]
        (_, t_a), (_, t_b) = done
        # Second message waits for the first's full service time.
        assert t_b - t_a == pytest.approx(0.5)
        stats = net.service_stats(1)
        assert stats["served"] == 2
        assert stats["max_depth"] == 2
        assert stats["busy_seconds"] == pytest.approx(1.0)

    def test_bounded_queue_sheds_overflow(self):
        sim, ds, net = make_net(
            ServiceConfig(service_time=1.0, queue_limit=0)
        )
        delivered, droppedreasons, rejected = [], [], []
        net.register(1, lambda m: delivered.append(m.payload))
        net.send(0, 1, QUERY, 10, payload="first")
        net.send(
            0, 1, QUERY, 10, payload="second",
            on_dropped=lambda m, reason: droppedreasons.append(reason),
            on_rejected=lambda m: rejected.append((m.payload, sim.now)),
        )
        sim.run()
        assert delivered == ["first"]
        assert droppedreasons == ["shed"]
        assert net.counters()["shed"] == 1
        assert net.service_stats(1)["shed"] == 1
        # The reject notice travelled back to the sender.
        assert [p for p, _ in rejected] == ["second"]

    def test_queued_message_dropped_if_node_fails(self):
        sim, ds, net = make_net(ServiceConfig(service_time=1.0))
        delivered, reasons = [], []
        net.register(1, lambda m: delivered.append(m.payload))
        net.send(0, 1, QUERY, 10, payload="a")
        net.send(
            0, 1, QUERY, 10, payload="b",
            on_dropped=lambda m, r: reasons.append(r),
        )
        # Fail the node while "a" is in service and "b" is waiting:
        # neither reaches a handler on the dead node.
        sim.schedule(0.6, lambda: net.fail_node(1))
        sim.run()
        assert delivered == []
        assert reasons == ["receiver_failed"]

    def test_service_removable(self):
        sim, ds, net = make_net(ServiceConfig(service_time=5.0))
        net.set_service(1, None)
        got = []
        net.register(1, lambda m: got.append(sim.now))
        net.send(0, 1, QUERY, 10)
        sim.run()
        # No service model: delivered after latency + processing only.
        assert got[0] < 1.0


class TestClientRejectPath:
    def test_shed_past_retries_gives_up_and_counts(self):
        """A saturated entry server sheds every attempt; the client
        backs off, retries, then gives up with the server recorded."""
        system = build_system()
        entry = system.hierarchy.root.server_id
        # Zero waiting room and a service time longer than the whole
        # retry schedule: every attempt of the second query is shed.
        system.network.set_service(
            entry, ServiceConfig(service_time=30.0, queue_limit=0)
        )
        retry = RetryPolicy(timeout=5.0, retries=2, backoff_base=0.05)
        q = generate_queries(
            WorkloadConfig(num_nodes=NODES, records_per_node=60, seed=SEED),
            num_queries=1, dimensions=3,
        )[0]
        first, second = system.search_many(
            [
                SearchRequest(q, scope=entry, client_node=0, retry=retry),
                SearchRequest(q, scope=entry, client_node=0, retry=retry),
            ],
            arrivals=[0.0, 0.001],
        )
        # First query's contact is in service (not yet answered by the
        # 30 s server) only after the horizon... it eventually times out
        # or completes; the second query was shed on every attempt.
        assert second.outcome.rejections == 3  # 1 try + 2 retries
        assert entry in second.outcome.shed_servers
        assert second.shed and not second.ok
        assert second.outcome.completed

    def test_queue_depth_telemetry_recorded(self):
        system = build_system()
        system.enable_service(ServiceConfig(service_time=0.002))
        system.search(SearchRequest(generate_queries(
            WorkloadConfig(num_nodes=NODES, records_per_node=60, seed=SEED),
            num_queries=1, dimensions=3,
        )[0], client_node=0))
        hist = system.metrics.registry.merged_histogram(
            "service.queue_depth"
        ).summary()
        assert hist["count"] > 0


class TestConcurrentServing:
    def _run_once(self):
        system = build_system(loss_rate=0.05)
        system.enable_service(
            ServiceConfig(service_time=0.005, queue_limit=32)
        )
        plane = system.update_plane
        plane.start()
        wcfg = WorkloadConfig(
            num_nodes=NODES, records_per_node=60, seed=SEED
        )
        queries = generate_queries(wcfg, num_queries=10, dimensions=3)
        requests = [
            SearchRequest(
                q,
                client_node=i % NODES,
                retry=RetryPolicy(timeout=2.0, retries=1),
            )
            for i, q in enumerate(queries)
        ]
        # Overlapping arrivals: all ten in flight within half a second.
        arrivals = [0.05 * i for i in range(len(requests))]
        results = system.search_many(requests, arrivals=arrivals)
        plane.stop()
        while system.sim.step():
            pass
        return system, results

    def test_overlapping_queries_deterministic_under_loss(self):
        _, first = self._run_once()
        _, second = self._run_once()
        key = lambda r: (
            r.outcome.total_matches,
            r.outcome.servers_contacted,
            r.outcome.query_bytes,
            round(r.outcome.latency, 12),
            round(r.sojourn, 12),
            tuple(sorted(r.outcome.timed_out_servers)),
            tuple(sorted(r.outcome.shed_servers)),
        )
        assert [key(r) for r in first] == [key(r) for r in second]

    def test_queries_overlap_in_virtual_time(self):
        _, results = self._run_once()
        assert all(r.done if hasattr(r, "done") else True for r in results)
        # At least one query was submitted before an earlier one
        # finished — genuinely concurrent, not sequential.
        overlaps = sum(
            1
            for a, b in zip(results, results[1:])
            if b.submitted_at < a.finished_at
        )
        assert overlaps > 0

    def test_simulator_drains_to_empty(self):
        system, _ = self._run_once()
        assert system.sim.pending == 0

    def test_search_many_length_mismatch_rejected(self):
        system = build_system()
        q = generate_queries(
            WorkloadConfig(num_nodes=NODES, records_per_node=60, seed=SEED),
            num_queries=1, dimensions=3,
        )[0]
        with pytest.raises(ValueError, match="arrivals"):
            system.search_many([SearchRequest(q)], arrivals=[0.0, 1.0])


class TestLoadGenerator:
    def _system_and_queries(self):
        system = build_system()
        wcfg = WorkloadConfig(
            num_nodes=NODES, records_per_node=60, seed=SEED
        )
        return system, generate_queries(wcfg, num_queries=6, dimensions=3)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadConfig(rate=0, horizon=1.0)
        with pytest.raises(ValueError):
            LoadConfig(rate=1.0, horizon=0)
        with pytest.raises(ValueError):
            LoadConfig(rate=1.0, horizon=1.0, scope_fraction=1.5)

    def test_empty_query_pool_rejected(self):
        system, _ = self._system_and_queries()
        with pytest.raises(ValueError, match="pool"):
            LoadGenerator(
                system, [], LoadConfig(rate=5.0, horizon=1.0),
                np.random.default_rng(0),
            )

    def test_deterministic_for_fixed_seed(self):
        reports = []
        for _ in range(2):
            system, queries = self._system_and_queries()
            system.enable_service(ServiceConfig(service_time=0.002))
            gen = LoadGenerator(
                system, queries,
                LoadConfig(rate=8.0, horizon=4.0),
                np.random.default_rng(123),
            )
            reports.append(gen.run())
        a, b = reports
        assert a.offered == b.offered > 0
        assert a.summary() == b.summary()
        assert list(a.latencies()) == list(b.latencies())

    def test_report_accounting(self):
        system, queries = self._system_and_queries()
        gen = LoadGenerator(
            system, queries,
            LoadConfig(rate=10.0, horizon=3.0),
            np.random.default_rng(7),
        )
        report = gen.run()
        assert report.offered == report.completed == report.ok
        assert report.shed_queries == 0
        assert report.goodput > 0
        assert report.drained_at >= report.started_at
        s = report.summary()
        assert s["offered"] == report.offered
        assert s["latency_p95"] >= s["latency_p50"] > 0

    def test_scoped_fraction_scopes_to_client(self):
        system, queries = self._system_and_queries()
        gen = LoadGenerator(
            system, queries,
            LoadConfig(rate=10.0, horizon=3.0, scope_fraction=1.0),
            np.random.default_rng(5),
        )
        requests = gen._draw_schedule()
        assert requests
        assert all(r.scope == r.client_node for r in requests)
