"""Unit tests for repro.summaries.multires."""

import numpy as np
import pytest

from repro.query import RangePredicate
from repro.summaries import (
    HistogramSummary,
    MultiResolutionHistogram,
    SummaryMergeError,
    coarsen,
)


class TestCoarsen:
    def test_counts_preserved(self):
        h = HistogramSummary.from_values("a", [0.05, 0.15, 0.95], 10)
        c = coarsen(h, 2)
        assert c.buckets == 5
        assert c.total == h.total
        assert c.counts[0] == 2  # 0.05 and 0.15 land in the merged bucket

    def test_invalid_factor(self):
        h = HistogramSummary("a", 10)
        with pytest.raises(ValueError):
            coarsen(h, 1)

    def test_indivisible(self):
        h = HistogramSummary("a", 10)
        with pytest.raises(ValueError, match="divisible"):
            coarsen(h, 3)

    def test_coarsening_never_loses_matches(self):
        rng = np.random.default_rng(9)
        values = rng.random(100)
        h = HistogramSummary.from_values("a", values, 64)
        c = coarsen(coarsen(h))
        for _ in range(100):
            lo = rng.random() * 0.9
            pred = RangePredicate("a", lo, min(1.0, lo + 0.05))
            if h.may_match(pred):
                assert c.may_match(pred)


class TestPyramid:
    def test_construction(self):
        mr = MultiResolutionHistogram("a", 64, levels=4)
        assert mr.levels == 4
        assert [mr.level(i).buckets for i in range(4)] == [64, 32, 16, 8]

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            MultiResolutionHistogram("a", 100, levels=4)

    def test_zero_levels_rejected(self):
        with pytest.raises(ValueError):
            MultiResolutionHistogram("a", 64, levels=0)

    def test_all_levels_summarize_same_values(self):
        mr = MultiResolutionHistogram.from_values(
            "a", [0.1, 0.2, 0.9], 64, levels=3
        )
        assert all(mr.level(i).total == 3 for i in range(3))

    def test_may_match_uses_finest(self):
        mr = MultiResolutionHistogram.from_values("a", [0.5], 64, levels=3)
        # A range inside the same coarse bucket but a different fine
        # bucket: the fine level may still prune.
        assert not mr.may_match(RangePredicate("a", 0.95, 0.99))
        assert mr.may_match(RangePredicate("a", 0.49, 0.51))

    def test_merge(self):
        a = MultiResolutionHistogram.from_values("a", [0.1], 64, levels=3)
        b = MultiResolutionHistogram.from_values("a", [0.9], 64, levels=3)
        m = a.merge(b)
        assert m.level(0).total == 2
        assert m.level(2).total == 2

    def test_merge_incompatible(self):
        a = MultiResolutionHistogram("a", 64, levels=3)
        b = MultiResolutionHistogram("a", 64, levels=2)
        with pytest.raises(SummaryMergeError):
            a.merge(b)

    def test_copy_independent(self):
        a = MultiResolutionHistogram.from_values("a", [0.5], 64, levels=2)
        c = a.copy()
        c.add_values([0.6])
        assert a.level(0).total == 1 and c.level(0).total == 2


class TestSizing:
    def test_coarser_levels_cheaper_dense(self):
        mr = MultiResolutionHistogram("a", 64, levels=3, encoding="dense")
        sizes = [mr.size_at_level(i) for i in range(3)]
        assert sizes[0] > sizes[1] > sizes[2]

    def test_best_level_within_budget(self):
        mr = MultiResolutionHistogram("a", 64, levels=3, encoding="dense")
        big = mr.size_at_level(0)
        assert mr.best_level_within(big) == 0
        assert mr.best_level_within(mr.size_at_level(2)) == 2
        # Hopeless budget falls back to the coarsest level.
        assert mr.best_level_within(1) == 2
