"""Unit tests for repro.hierarchy.join."""

import pytest

from repro.hierarchy import Hierarchy, JoinError, Server, build_hierarchy


def build(n, k=3):
    return build_hierarchy(Server(i, max_children=k) for i in range(n))


class TestJoin:
    def test_single_root(self):
        h = build(1)
        assert len(h) == 1
        assert h.levels == 1

    def test_fills_root_first(self):
        h = build(4, k=3)
        assert set(h.root.child_ids()) == {1, 2, 3}
        assert h.levels == 2

    def test_descends_when_root_full(self):
        h = build(5, k=3)
        assert h.levels == 3
        h.check_invariants()

    def test_balanced_distribution(self):
        h = build(13, k=3)  # 1 root + 3 children + 9 grandchildren
        h.check_invariants()
        assert h.levels == 3
        # all three branches should carry equal weight
        sizes = [c.subtree_size() for c in h.root.children]
        assert max(sizes) - min(sizes) <= 1

    def test_levels_grow_logarithmically(self):
        # capacity of L levels with degree k: 1 + k + k^2 + ...
        assert build(4, k=3).levels == 2
        assert build(13, k=3).levels == 3
        assert build(14, k=3).levels == 4

    def test_duplicate_join_rejected(self):
        h = build(3)
        with pytest.raises(ValueError, match="already in hierarchy"):
            h.join(Server(1))

    def test_join_error_when_no_acceptor(self):
        # Degree-1 chain where everyone refuses: max_children=1 gives a
        # path; joining is always possible, so force refusal via a full
        # single-node hierarchy of capacity... instead check loop rule:
        root = Server(0, max_children=1)
        h = Hierarchy(root)
        a = Server(1, max_children=1)
        h.join(a)
        # Root full; a accepts. Chain grows - join always succeeds here,
        # so instead verify JoinError on an impossible constraint: an
        # acceptor set that excludes the joiner everywhere.
        b = Server(2, max_children=1)
        h.join(b)
        assert h.levels == 3

    def test_join_from_custom_start(self):
        h = build(4, k=3)
        branch = h.get(1)
        newcomer = Server(99, max_children=3)
        parent = h.join(newcomer, start=branch)
        assert parent is branch

    def test_container_protocol(self):
        h = build(5)
        assert 3 in h and 99 not in h
        assert len(h.servers()) == 5
        assert h.get(2).server_id == 2
        with pytest.raises(KeyError):
            h.get(42)

    def test_leaves(self):
        h = build(4, k=3)
        assert {s.server_id for s in h.leaves()} == {1, 2, 3}


class TestBuildHierarchy:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            build_hierarchy([])

    def test_explicit_root(self):
        root = Server(10, max_children=2)
        h = build_hierarchy([Server(1), Server(2)], root=root)
        assert h.root is root
        assert len(h) == 3


class TestInvariantChecker:
    def test_detects_stale_stats(self):
        h = build(5, k=2)
        # Corrupt a branch stat and expect the checker to trip.
        some_child = h.root.children[0]
        h.root.branch_stats[some_child.server_id].descendants = 999
        with pytest.raises(AssertionError, match="stale descendant"):
            h.check_invariants()

    def test_detects_wrong_root_path(self):
        h = build(5, k=2)
        h.get(3).root_path = [99]
        with pytest.raises(AssertionError, match="root path"):
            h.check_invariants()


class TestRemovalAndRoot:
    def test_remove_forgets_member(self):
        h = build(4)
        h.root.remove_child(1)
        h.remove(1)
        assert 1 not in h

    def test_remove_root_rejected(self):
        h = build(3)
        with pytest.raises(ValueError, match="root"):
            h.remove(0)

    def test_set_root(self):
        h = build(4, k=3)
        new_root = h.get(1)
        h.root.remove_child(1)
        h.set_root(new_root)
        assert h.root is new_root
        assert new_root.root_path == [1]

    def test_set_root_requires_membership(self):
        h = build(3)
        with pytest.raises(ValueError, match="member"):
            h.set_root(Server(42))
