"""Flight recorder: breach transitions, bundle round-trips, postmortems.

SLO judging is edge-triggered: a check that fails fires exactly one
postmortem and stays silent until it recovers and fails again. Bundles
freeze the breach window's series, the per-server event rings and the
overlapping causal trace trees, and round-trip through JSON.
"""

import pytest

from repro.net.transport import ServiceConfig
from repro.roads import RoadsConfig, RoadsSystem
from repro.roads.search import RetryPolicy, SearchRequest
from repro.summaries import SummaryConfig
from repro.telemetry import (
    FlightRecorder,
    HealthProbe,
    HealthSLO,
    HealthSample,
    PostmortemBundle,
    SeriesConfig,
    SeriesSampler,
    Telemetry,
)
from repro.telemetry.probes import judge_sample
from repro.workload import WorkloadConfig, generate_node_stores
from repro.workload.queries import generate_queries

SEED = 11
NODES = 24


def build_system(*, loss=0.0, telemetry=None, service=None, interval=1.0):
    wcfg = WorkloadConfig(num_nodes=NODES, records_per_node=50, seed=SEED)
    cfg = RoadsConfig(
        num_nodes=NODES,
        records_per_node=50,
        max_children=4,
        summary=SummaryConfig(histogram_buckets=200),
        summary_interval=interval,
        delta_updates=True,
        loss_rate=loss,
        seed=SEED,
    )
    system = RoadsSystem.build(
        cfg, generate_node_stores(wcfg), telemetry=telemetry
    )
    if service is not None:
        system.enable_service(service)
    return system


def sample(**overrides) -> HealthSample:
    base = dict(
        t=1.0, queue_depth_total=0, queue_depth_max=0, sent=100,
        delivered=98, lost=2, dropped=0, shed=0, pending=3,
        summary_entries=40, summary_age_mean=0.5, summary_age_max=1.0,
        stale_fraction=0.0, coverage=1.0,
    )
    base.update(overrides)
    return HealthSample(**base)


class TestJudgeSample:
    def test_healthy_sample_passes_every_check(self):
        checks = judge_sample(sample(), HealthSLO())
        assert checks and all(c.ok for c in checks)

    def test_loss_check_fails_above_threshold(self):
        checks = judge_sample(sample(lost=50), HealthSLO())
        bad = [c for c in checks if not c.ok]
        assert [c.name for c in bad] == ["loss"]

    def test_queue_depth_check_is_opt_in(self):
        names = {c.name for c in judge_sample(sample(), HealthSLO())}
        assert "queue_depth" not in names
        slo = HealthSLO(max_queue_depth=4)
        checks = judge_sample(sample(queue_depth_max=9), slo)
        assert any(c.name == "queue_depth" and not c.ok for c in checks)


class TestTransitions:
    """One incident → one postmortem, re-armed only after recovery."""

    def _armed(self):
        tel = Telemetry()
        system = build_system(telemetry=tel)
        probe = HealthProbe(system, slo=HealthSLO())
        recorder = FlightRecorder(tel).bind(probe)
        return probe, recorder

    def test_fail_fires_exactly_once_until_recovery(self):
        probe, recorder = self._armed()
        fired = probe.observe(sample(lost=50))
        assert [c.name for c in fired] == ["loss"]
        assert len(recorder.bundles) == 1
        assert recorder.bundles[0].reason == "slo:loss"
        # Still failing: silent — no second bundle for the same incident.
        assert probe.observe(sample(t=2.0, lost=60)) == []
        assert len(recorder.bundles) == 1
        # Recovery re-arms; nothing fires on the ok transition itself.
        assert probe.observe(sample(t=3.0)) == []
        # A fresh failure is a new incident: exactly one more bundle.
        fired = probe.observe(sample(t=4.0, lost=50))
        assert [c.name for c in fired] == ["loss"]
        assert len(recorder.bundles) == 2
        assert len(probe.breaches) == 2

    def test_distinct_checks_fire_independently(self):
        probe, recorder = self._armed()
        probe.observe(sample(lost=50, stale_fraction=0.5))
        assert sorted(c.name for c in probe.breaches) == [
            "loss", "staleness",
        ]
        assert len(recorder.bundles) == 2

    def test_bundle_carries_check_and_report(self):
        probe, recorder = self._armed()
        probe.observe(sample(lost=50))
        bundle = recorder.bundles[0]
        assert bundle.check["name"] == "loss"
        assert not bundle.check["ok"]
        assert bundle.report is not None
        assert any(
            c["name"] == "loss" for c in bundle.report["checks"]
        )

    def test_bind_sets_breach_hook(self):
        tel = Telemetry()
        system = build_system(telemetry=tel)
        probe = HealthProbe(system, slo=HealthSLO())
        assert probe.on_breach is None
        recorder = FlightRecorder(tel).bind(probe)
        assert probe.on_breach == recorder._on_breach


class TestRecorderMechanics:
    def test_ctor_validation(self):
        tel = Telemetry()
        with pytest.raises(ValueError, match="ring_size"):
            FlightRecorder(tel, ring_size=0)
        with pytest.raises(ValueError, match="window_before"):
            FlightRecorder(tel, window_before=0.0)

    def test_rings_attribute_events_per_server(self):
        tel = Telemetry()
        recorder = FlightRecorder(tel, ring_size=4)
        tel.event("a", server=3)
        tel.event("b", dst=7)
        tel.event("c")
        assert [e.name for e in recorder.ring(3)] == ["a"]
        assert [e.name for e in recorder.ring(7)] == ["b"]
        assert [e.name for e in recorder.ring(None)] == ["c"]
        assert recorder.ring_servers == [3, 7, None]
        # Fixed-size: old events fall off the ring.
        for i in range(10):
            tel.event(f"x{i}", server=3)
        assert len(recorder.ring(3)) == 4

    def test_close_stops_recording(self):
        tel = Telemetry()
        recorder = FlightRecorder(tel)
        tel.event("before", server=1)
        recorder.close()
        tel.event("after", server=1)
        assert [e.name for e in recorder.ring(1)] == ["before"]

    def test_manual_trigger_without_sampler_or_probe(self):
        tel = Telemetry()
        recorder = FlightRecorder(tel)
        tel.event("evidence", server=2)
        bundle = recorder.trigger()
        assert bundle.reason == "manual"
        assert bundle.series == []
        assert bundle.ring_events == 1
        assert "postmortem: manual" in bundle.format()

    def test_dump_dir_writes_slugged_files(self, tmp_path):
        tel = Telemetry()
        recorder = FlightRecorder(tel, dump_dir=tmp_path / "pm")
        recorder.trigger("slo:loss")
        recorder.trigger("weird reason!!")
        names = [p.name for p in recorder.dumped]
        assert names == [
            "postmortem_001_slo-loss.json",
            "postmortem_002_weird-reason.json",
        ]
        assert all(p.exists() for p in recorder.dumped)


class TestBundleRoundTrip:
    def test_dict_and_file_round_trips(self, tmp_path):
        tel = Telemetry()
        recorder = FlightRecorder(tel)
        tel.event("evidence", server=4)
        bundle = recorder.trigger(
            "slo:loss",
            check={"name": "loss", "ok": False, "value": 0.5,
                   "threshold": 0.1, "detail": ""},
        )
        clone = PostmortemBundle.from_dict(bundle.to_dict())
        assert clone.to_dict() == bundle.to_dict()
        path = bundle.dump(tmp_path / "bundle.json")
        loaded = PostmortemBundle.load(path)
        assert loaded.to_dict() == bundle.to_dict()
        assert loaded.ring_events == 1
        assert "failing check: loss" in loaded.format()


class TestEndToEnd:
    """A lossy run breaches the SLO and auto-freezes a full bundle."""

    @pytest.fixture(scope="class")
    def bundle(self):
        tel = Telemetry()
        system = build_system(
            loss=0.18, telemetry=tel,
            service=ServiceConfig(service_time=0.004, queue_limit=16),
        )
        sampler = SeriesSampler(system, SeriesConfig(interval=0.25)).start()
        system.update_plane.start()
        # Converge first so the breach fires amid query traffic, with
        # the rings already holding causally-traced events.
        system.sim.run(until=system.sim.now + 2.0)
        probe = HealthProbe(system, interval=0.5, slo=HealthSLO()).start()
        recorder = FlightRecorder(tel, sampler=sampler).bind(probe)
        wcfg = WorkloadConfig(num_nodes=NODES, records_per_node=50, seed=SEED)
        queries = generate_queries(wcfg, num_queries=12)
        retry = RetryPolicy(timeout=1.0, retries=2, backoff_base=0.1)
        system.search_many(
            [
                SearchRequest(q, client_node=i % NODES, retry=retry)
                for i, q in enumerate(queries)
            ],
            arrivals=[0.05 * i for i in range(len(queries))],
        )
        system.sim.run(until=system.sim.now + 1.0)
        assert probe.breaches, "injected loss never breached the SLO"
        assert recorder.bundles
        return recorder.bundles[0]

    def test_bundle_has_breach_window_series(self, bundle):
        assert bundle.series
        assert any(s["raw"] for s in bundle.series)
        for s in bundle.series:
            for t, _ in s["raw"]:
                assert bundle.window_start <= t <= bundle.window_end

    def test_bundle_has_ring_events_and_traces(self, bundle):
        assert bundle.ring_events > 0
        assert bundle.traces
        trees = bundle.trace_trees()
        assert trees and len(trees[0]) > 0

    def test_bundle_renders(self, bundle):
        text = bundle.format()
        assert "postmortem: slo:" in text
        assert "overlapping causal traces:" in text
        assert "FAIL" in text
