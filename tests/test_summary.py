"""Unit tests for repro.summaries.summary and config."""

import numpy as np
import pytest

from repro.query import EqualsPredicate, Query, RangePredicate
from repro.records import RecordStore
from repro.summaries import (
    BloomFilterSummary,
    HistogramSummary,
    MultiResolutionHistogram,
    ResourceSummary,
    SummaryConfig,
    SummaryMergeError,
    ValueSetSummary,
)


class TestSummaryConfig:
    def test_defaults(self):
        cfg = SummaryConfig()
        assert cfg.histogram_buckets == 1000
        assert cfg.histogram_encoding == "dense"
        assert cfg.categorical_summary == "set"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"histogram_buckets": 0},
            {"histogram_encoding": "zip"},
            {"categorical_summary": "hash"},
            {"bloom_bits": 0},
            {"bloom_hashes": 0},
            {"multiresolution_levels": 0},
            {"ttl": 0},
            {"multiresolution_levels": 4, "histogram_buckets": 100},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            SummaryConfig(**kwargs)


class TestFromStore:
    def test_numeric_become_histograms(self, mixed_store):
        cfg = SummaryConfig(histogram_buckets=50)
        s = ResourceSummary.from_store(mixed_store, cfg)
        assert isinstance(s.attributes["rate"], HistogramSummary)
        assert isinstance(s.attributes["type"], ValueSetSummary)
        assert s.attributes["rate"].total == len(mixed_store)

    def test_bloom_option(self, mixed_store):
        cfg = SummaryConfig(categorical_summary="bloom", bloom_bits=512)
        s = ResourceSummary.from_store(mixed_store, cfg)
        assert isinstance(s.attributes["type"], BloomFilterSummary)

    def test_multires_option(self, unit_store):
        cfg = SummaryConfig(histogram_buckets=64, multiresolution_levels=3)
        s = ResourceSummary.from_store(unit_store, cfg)
        assert isinstance(s.attributes["a"], MultiResolutionHistogram)

    def test_empty_summary(self, mixed_schema):
        s = ResourceSummary.empty(mixed_schema, SummaryConfig())
        assert s.is_empty


class TestMayMatch:
    def test_conjunctive(self, mixed_store):
        cfg = SummaryConfig(histogram_buckets=100)
        s = ResourceSummary.from_store(mixed_store, cfg)
        present_type = mixed_store.categorical_column("type")[0]
        rate0 = float(mixed_store.numeric_column("rate")[0])
        q = Query.of(
            RangePredicate("rate", rate0 - 1, rate0 + 1),
            EqualsPredicate("type", present_type),
        )
        # Note: conjunction across attributes may be a false positive but
        # each dimension matched by a real record cannot be a false
        # negative.
        assert s.attributes["rate"].may_match(q.predicates[0])
        assert s.attributes["type"].may_match(q.predicates[1])

    def test_single_dim_prunes(self, mixed_store):
        cfg = SummaryConfig(histogram_buckets=100)
        s = ResourceSummary.from_store(mixed_store, cfg)
        q = Query.of(EqualsPredicate("type", "submarine"))
        assert not s.may_match(q)

    def test_no_false_negatives_vs_store(self, unit_store):
        cfg = SummaryConfig(histogram_buckets=37)
        s = ResourceSummary.from_store(unit_store, cfg)
        rng = np.random.default_rng(1)
        for _ in range(100):
            lo = rng.random(2) * 0.7
            q = Query.of(
                RangePredicate("a", lo[0], lo[0] + 0.2),
                RangePredicate("b", lo[1], lo[1] + 0.2),
            )
            if q.match_count(unit_store) > 0:
                assert s.may_match(q)

    def test_unknown_attribute_raises(self, unit_store):
        s = ResourceSummary.from_store(unit_store, SummaryConfig())
        with pytest.raises(KeyError):
            s.may_match(Query.of(RangePredicate("zz", 0, 1)))


class TestMerge:
    def test_merge_equals_summary_of_union(self, unit_schema):
        rng = np.random.default_rng(2)
        a = RecordStore.from_arrays(unit_schema, rng.random((30, 4)), [])
        b = RecordStore.from_arrays(unit_schema, rng.random((40, 4)), [])
        cfg = SummaryConfig(histogram_buckets=64)
        merged = ResourceSummary.from_store(a, cfg).merge(
            ResourceSummary.from_store(b, cfg)
        )
        union = ResourceSummary.from_store(a.merged_with(b), cfg)
        for name in ("a", "b", "c", "d"):
            assert merged.attributes[name] == union.attributes[name]

    def test_schema_mismatch(self, unit_store, mixed_store):
        cfg = SummaryConfig()
        with pytest.raises(SummaryMergeError):
            ResourceSummary.from_store(unit_store, cfg).merge(
                ResourceSummary.from_store(mixed_store, cfg)
            )


class TestSoftState:
    def test_expiry(self, unit_store):
        cfg = SummaryConfig(ttl=10.0)
        s = ResourceSummary.from_store(unit_store, cfg, created_at=100.0)
        assert not s.is_expired(105.0)
        assert s.is_expired(111.0)

    def test_refreshed(self, unit_store):
        cfg = SummaryConfig(ttl=10.0)
        s = ResourceSummary.from_store(unit_store, cfg, created_at=0.0)
        r = s.refreshed(50.0)
        assert r.created_at == 50.0
        assert s.created_at == 0.0


class TestEstimation:
    def test_estimated_matches_upper_bounds_truth(self, unit_store):
        cfg = SummaryConfig(histogram_buckets=64)
        s = ResourceSummary.from_store(unit_store, cfg)
        q = Query.of(RangePredicate("a", 0.2, 0.4), RangePredicate("b", 0.1, 0.9))
        assert s.estimated_matches(q) >= q.match_count(unit_store)

    def test_estimated_matches_zero_when_pruned(self, mixed_store):
        cfg = SummaryConfig(histogram_buckets=64)
        s = ResourceSummary.from_store(mixed_store, cfg)
        q = Query.of(EqualsPredicate("type", "submarine"))
        assert s.estimated_matches(q) == 0

    def test_encoded_size_sums_attributes(self, unit_store):
        cfg = SummaryConfig(histogram_buckets=64)
        s = ResourceSummary.from_store(unit_store, cfg)
        assert s.encoded_size() == sum(
            a.encoded_size() for a in s.attributes.values()
        )
