"""Tests for scope-controlled queries and message-loss injection."""

import numpy as np
import pytest

from repro.net import DelaySpace, Network
from repro.query import Query, RangePredicate
from repro.roads import RoadsConfig, RoadsSystem, SearchRequest
from repro.sim import QUERY, MetricsCollector, Simulator
from repro.summaries import SummaryConfig
from repro.workload import (
    WorkloadConfig,
    generate_node_stores,
    generate_queries,
    merge_stores,
)


@pytest.fixture(scope="module")
def system_and_workload():
    wcfg = WorkloadConfig(num_nodes=28, records_per_node=60, seed=17)
    stores = generate_node_stores(wcfg)
    cfg = RoadsConfig(
        num_nodes=28,
        records_per_node=60,
        max_children=3,
        summary=SummaryConfig(histogram_buckets=100),
        seed=17,
    )
    return wcfg, stores, RoadsSystem.build(cfg, stores)


class TestScopedQueries:
    def test_scope_limits_to_subtree(self, system_and_workload):
        wcfg, stores, system = system_and_workload
        q = generate_queries(wcfg, num_queries=1, dimensions=2)[0]
        # Choose an internal scope server.
        scope_server = next(
            s for s in system.hierarchy if not s.is_root and s.children
        )
        outcome = system.search(SearchRequest(q, client_node=0, scope=scope_server.server_id)).outcome
        subtree_ids = {x.server_id for x in scope_server.iter_subtree()}
        assert set(outcome.arrivals) <= subtree_ids
        subtree_ref = merge_stores([stores[i] for i in sorted(subtree_ids)])
        assert outcome.total_matches == q.match_count(subtree_ref)

    def test_root_scope_equals_full_search(self, system_and_workload):
        wcfg, stores, system = system_and_workload
        q = generate_queries(wcfg, num_queries=1, dimensions=2)[0]
        root_id = system.hierarchy.root.server_id
        scoped = system.search(SearchRequest(q, client_node=3, scope=root_id)).outcome
        full = system.search(SearchRequest(q, client_node=3)).outcome
        assert scoped.total_matches == full.total_matches

    def test_widening_search_monotone(self, system_and_workload):
        wcfg, stores, system = system_and_workload
        q = generate_queries(wcfg, num_queries=1, dimensions=2)[0]
        leaf = max(system.hierarchy, key=lambda s: s.depth)
        outcomes = [
            r.outcome
            for r in system.widening(
                SearchRequest(q, client_node=leaf.server_id),
                min_matches=10**9,  # never satisfied: all scopes
            )
        ]
        counts = [o.total_matches for o in outcomes]
        assert counts == sorted(counts)  # widening can only add results
        reference = merge_stores(stores)
        assert counts[-1] == q.match_count(reference)

    def test_widening_search_stops_early(self, system_and_workload):
        wcfg, stores, system = system_and_workload
        q = generate_queries(wcfg, num_queries=1, dimensions=2)[0]
        leaf = max(system.hierarchy, key=lambda s: s.depth)
        outcomes = [r.outcome for r in system.widening(SearchRequest(q, client_node=leaf.server_id), min_matches=1)]
        if outcomes[-1].total_matches >= 1:
            # every earlier scope must have been insufficient
            for o in outcomes[:-1]:
                assert o.total_matches < 1


class TestLossInjection:
    def _net(self, loss):
        sim = Simulator()
        ds = DelaySpace(8, np.random.default_rng(0), jitter_ms=0.0)
        rng = np.random.default_rng(1)
        return sim, Network(
            sim, ds, MetricsCollector(), loss_rate=loss, rng=rng
        )

    def test_invalid_params(self):
        sim = Simulator()
        ds = DelaySpace(4, np.random.default_rng(0))
        with pytest.raises(ValueError, match="loss_rate"):
            Network(sim, ds, loss_rate=1.5, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="rng"):
            Network(sim, ds, loss_rate=0.1)

    def test_losses_occur_at_configured_rate(self):
        sim, net = self._net(0.3)
        delivered = []
        net.register(1, lambda m: delivered.append(m))
        for _ in range(500):
            net.send(0, 1, QUERY, 8)
        sim.run()
        counters = net.counters()
        assert counters["lost"] == pytest.approx(150, abs=40)
        assert len(delivered) == counters["sent"] - counters["lost"]
        # bytes are still accounted at the sender
        assert net.metrics.bytes(QUERY) == 500 * 8

    def test_zero_loss_default(self):
        sim, net = self._net(0.0)
        got = []
        net.register(1, lambda m: got.append(m))
        for _ in range(50):
            net.send(0, 1, QUERY, 8)
        sim.run()
        assert net.counters()["lost"] == 0 and len(got) == 50

    def test_maintenance_survives_lossy_network(self):
        """Heartbeats tolerate moderate loss without false failures."""
        from repro.hierarchy import (
            MaintenanceConfig,
            MaintenanceProtocol,
            Server,
            build_hierarchy,
        )

        sim = Simulator()
        ds = DelaySpace(12, np.random.default_rng(3), jitter_ms=0.0)
        net = Network(
            sim, ds, MetricsCollector(),
            loss_rate=0.10, rng=np.random.default_rng(4),
        )
        h = build_hierarchy(Server(i, max_children=3) for i in range(12))
        proto = MaintenanceProtocol(
            sim, net, h,
            MaintenanceConfig(heartbeat_interval=1.0, miss_threshold=5),
        )
        sim.run(until=120.0)
        # With 10% loss and a 5-miss threshold, the odds of five
        # consecutive losses are 1e-5 per edge-window: no false failures.
        assert proto.failures_detected == 0
        h.check_invariants()
