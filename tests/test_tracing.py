"""Tests for query execution tracing."""

import pytest

from repro.query import Query, RangePredicate
from repro.roads import RoadsConfig, RoadsSystem, SearchRequest
from repro.summaries import SummaryConfig
from repro.workload import WorkloadConfig, generate_node_stores


@pytest.fixture(scope="module")
def system():
    wcfg = WorkloadConfig(num_nodes=16, records_per_node=40, seed=81)
    stores = generate_node_stores(wcfg)
    return RoadsSystem.build(
        RoadsConfig(num_nodes=16, records_per_node=40, max_children=3,
                    summary=SummaryConfig(histogram_buckets=60), seed=81),
        stores,
    )


def wide_query():
    return Query.of(RangePredicate("u0", 0.0, 1.0))


class TestTracing:
    def test_disabled_by_default(self, system):
        o = system.search(SearchRequest(wide_query(), client_node=0)).outcome
        assert o.trace == []

    def test_events_recorded(self, system):
        o = system.search(SearchRequest(wide_query(), client_node=0, trace=True)).outcome
        events = [e for _, e, _, _ in o.trace]
        assert "send" in events
        assert "arrive" in events
        assert "owner" in events
        # one send per contacted server (plus possible timeouts)
        assert events.count("send") >= o.servers_contacted

    def test_times_monotone(self, system):
        o = system.search(SearchRequest(wide_query(), client_node=0, trace=True)).outcome
        times = [t for t, *_ in o.trace]
        assert times == sorted(times)

    def test_owner_events_carry_match_counts(self, system):
        o = system.search(SearchRequest(wide_query(), client_node=0, trace=True)).outcome
        owner_events = [e for e in o.trace if e[1] == "owner"]
        assert owner_events
        assert all("matches=" in e[3] for e in owner_events)

    def test_format_trace_readable(self, system):
        o = system.search(SearchRequest(wide_query(), client_node=0, trace=True)).outcome
        text = o.format_trace()
        assert "ms" in text
        assert "arrive" in text
        assert len(text.splitlines()) == len(o.trace)

    def test_satisfied_event_with_first_k(self, system):
        o = system.search(SearchRequest(wide_query(), client_node=0, trace=True, first_k=1)).outcome
        events = [e for _, e, _, _ in o.trace]
        # Early termination leaves a visible mark when redirects are skipped.
        assert o.total_matches >= 1
        if o.servers_contacted < 16:
            assert "satisfied" in events or "redirect" in events
