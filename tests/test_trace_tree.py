"""Causal tracing end to end: context propagation, tree assembly,
critical-path attribution.

The acceptance claim of the tracing tentpole: a seeded widening search
under message loss, with bounded service queues installed, reconstructs
as a *single* causal tree — every contact, retry and reject hop hangs
off the widening umbrella — and the critical path from the last
``query.arrive`` telescopes exactly to the reported query latency.
"""

import pytest

from repro.net.transport import ServiceConfig
from repro.roads import (
    RetryPolicy,
    RoadsConfig,
    RoadsSystem,
    SearchRequest,
)
from repro.summaries import SummaryConfig
from repro.telemetry import (
    PATH_CATEGORIES,
    Telemetry,
    TraceContext,
    assemble_traces,
    critical_path,
    path_category,
)
from repro.telemetry.events import TelemetryEvent
from repro.workload import WorkloadConfig, generate_node_stores, generate_queries

SEED = 9
NODES = 24
RETRY = RetryPolicy(timeout=0.5, retries=2, backoff_base=0.1)


def build_system(*, loss=0.0, service=None, telemetry=None, seed=SEED):
    wcfg = WorkloadConfig(num_nodes=NODES, records_per_node=60, seed=seed)
    cfg = RoadsConfig(
        num_nodes=NODES,
        records_per_node=60,
        max_children=4,
        summary=SummaryConfig(histogram_buckets=200),
        loss_rate=loss,
        seed=seed,
    )
    tel = telemetry if telemetry is not None else Telemetry(capacity=200_000)
    system = RoadsSystem.build(cfg, generate_node_stores(wcfg), telemetry=tel)
    if service is not None:
        system.enable_service(service)
    return system, tel, wcfg


class TestTraceContext:
    def test_child_links_parent_and_keeps_baggage(self):
        root = TraceContext(trace_id=7, span_id=1, baggage=(("q", 3),))
        child = root.child(2, hop="contact")
        assert child.trace_id == 7
        assert child.parent_span_id == 1
        assert dict(child.baggage) == {"q": 3, "hop": "contact"}
        tags = child.tags()
        assert tags["trace_id"] == 7 and tags["span_id"] == 2
        assert tags["parent_span_id"] == 1 and tags["q"] == 3

    def test_minting_requires_enabled_telemetry(self):
        tel = Telemetry(enabled=False)
        assert tel.new_trace() is None
        assert tel.fork(None) is None
        tel2 = Telemetry()
        ctx = tel2.new_trace()
        assert ctx is not None and ctx.parent_span_id == 0
        assert tel2.fork(ctx).parent_span_id == ctx.span_id

    def test_path_category_mapping(self):
        assert path_category("net.transit") == "wire"
        assert path_category("service.wait") == "queue"
        assert path_category("service.serve") == "service"
        assert path_category("query.retry") == "processing"
        assert set(PATH_CATEGORIES) == {
            "wire", "queue", "service", "processing"
        }


class TestAssembleTraces:
    @staticmethod
    def ev(name, ts, *, kind="event", dur=0.0, **tags):
        return TelemetryEvent(ts=ts, name=name, kind=kind, dur=dur, tags=tags)

    def test_untagged_events_are_ignored(self):
        events = [self.ev("plain", 0.0), self.ev("half", 0.0, trace_id=1)]
        assert assemble_traces(events) == {}

    def test_span_outranks_instant_on_same_span_id(self):
        # ``net.send`` (instant) and ``net.transit`` (span) share the
        # message context's span id; the span must win regardless of
        # arrival order.
        events = [
            self.ev("net.send", 0.0, trace_id=1, span_id=5),
            self.ev("net.transit", 0.0, kind="span", dur=0.2,
                    trace_id=1, span_id=5),
        ]
        tree = assemble_traces(events)[1]
        assert tree.nodes[5].name == "net.transit"
        events.reverse()
        tree = assemble_traces(events)[1]
        assert tree.nodes[5].name == "net.transit"

    def test_parent_edges_and_orphan_roots(self):
        events = [
            self.ev("root", 0.0, kind="span", dur=1.0, trace_id=1, span_id=1),
            self.ev("child", 0.2, trace_id=1, span_id=2, parent_span_id=1),
            self.ev("orphan", 0.5, trace_id=1, span_id=9, parent_span_id=77),
        ]
        tree = assemble_traces(events)[1]
        assert {n.span_id for n in tree.roots} == {1, 9}
        assert tree.root.span_id == 1  # earliest-starting root
        assert [c.span_id for c in tree.nodes[1].children] == [2]
        assert [a.span_id for a in tree.ancestors(tree.nodes[2])] == [1]


class TestCriticalPath:
    def test_telescopes_to_leaf_end_minus_root_start(self):
        tel = Telemetry()
        clock = {"t": 0.0}
        tel.bind_clock(lambda: clock["t"])
        root = tel.new_trace()
        hop = tel.fork(root)
        tel.emit_span("net.transit", 0.1, 0.3, **hop.tags())
        serve = tel.fork(hop)
        tel.emit_span("service.serve", 0.3, 0.45, **serve.tags())
        arrive = tel.fork(serve)
        clock["t"] = 0.45
        tel.event("query.arrive", **arrive.tags())
        tel.emit_span("search", 0.0, 0.5, **root.tags())
        tree = assemble_traces(tel.events())[root.trace_id]
        path = critical_path(tree)
        assert path.leaf.name == "query.arrive"
        assert path.total == pytest.approx(0.45)  # leaf end - root start
        by = path.by_category()
        assert by["wire"] == pytest.approx(0.2)
        assert by["service"] == pytest.approx(0.15)
        assert by["processing"] == pytest.approx(0.1)  # pre-send think
        assert path.dominant == "wire"

    def test_no_leaf_means_empty_path(self):
        tel = Telemetry()
        root = tel.new_trace()
        tel.emit_span("search", 0.0, 1.0, **root.tags())
        tree = assemble_traces(tel.events())[root.trace_id]
        path = critical_path(tree)
        assert path.leaf is None and path.segments == []
        assert path.total == 0.0


class TestWideningSearchTrace:
    """The tentpole acceptance: one lossy widening search, one tree."""

    @pytest.fixture(scope="class")
    def widened(self):
        system, tel, wcfg = build_system(
            loss=0.15,
            service=ServiceConfig(service_time=0.005, queue_limit=8),
        )
        query = generate_queries(
            wcfg, num_queries=4, seed_label="trace-widen"
        )[0]
        results = system.widening(
            SearchRequest(query, client_node=5, retry=RETRY),
            min_matches=10**9,  # unsatisfiable: widen to the root scope
        )
        return system, tel, results

    def test_all_scopes_share_one_trace(self, widened):
        _, _, results = widened
        trace_ids = {r.outcome.trace_id for r in results}
        assert len(results) > 1  # widening actually widened
        assert len(trace_ids) == 1 and 0 not in trace_ids

    def test_single_causal_tree_under_the_umbrella(self, widened):
        _, tel, results = widened
        tree = assemble_traces(tel.events())[results[0].outcome.trace_id]
        # Every hop of every scope hangs off the widening umbrella: no
        # orphan roots, one tree.
        assert len(tree.roots) == 1
        assert tree.root.name == "search.widening"
        umbrella_sid = tree.root.span_id
        for r in results:
            scope_root = tree.nodes[r.outcome.root_span_id]
            assert scope_root.name == "search"
            assert scope_root.parent_span_id == umbrella_sid

    def test_tree_covers_contact_retry_and_service_hops(self, widened):
        _, tel, results = widened
        tree = assemble_traces(tel.events())[results[0].outcome.trace_id]
        names = {n.name for n in tree.nodes.values()}
        assert "query.contact" in names
        assert "query.arrive" in names
        assert "net.transit" in names
        assert "service.serve" in names
        # Loss at 15% across several scopes forces at least one retry
        # and loses at least one message on this seed.
        assert "query.retry" in names
        assert "net.loss" in names

    def test_retry_hop_is_parented_to_its_contact(self, widened):
        _, tel, results = widened
        tree = assemble_traces(tel.events())[results[0].outcome.trace_id]
        for retry in tree.find("query.retry"):
            chain = [n.name for n in tree.ancestors(retry)]
            assert "query.contact" in chain
            assert chain[-1] == "search.widening"

    def test_critical_path_sum_equals_reported_latency(self, widened):
        _, tel, results = widened
        tree = assemble_traces(tel.events())[results[0].outcome.trace_id]
        verified = 0
        for r in results:
            root = tree.nodes[r.outcome.root_span_id]
            path = critical_path(tree, root=root)
            if path.leaf is None:
                continue  # every attempt of the scope was lost
            assert path.total == pytest.approx(
                r.outcome.latency, abs=1e-9
            )
            verified += 1
        assert verified == len(results)


class TestRejectHops:
    """Shed messages and their reject notices join the causal tree."""

    @pytest.fixture(scope="class")
    def congested(self):
        # Zero waiting room and a long service time at every server;
        # concurrent searches all enter at the root, so most first
        # contacts are shed and retried with backoff.
        system, tel, wcfg = build_system(
            service=ServiceConfig(service_time=0.05, queue_limit=0),
        )
        queries = generate_queries(
            wcfg, num_queries=6, seed_label="trace-shed"
        )
        requests = [
            SearchRequest(
                q, client_node=int(i), use_overlay=False, retry=RETRY
            )
            for i, q in enumerate(queries)
        ]
        results = system.search_many(
            requests, arrivals=[0.001 * i for i in range(len(requests))]
        )
        return tel, results

    def test_reject_notice_joins_the_senders_tree(self, congested):
        tel, results = congested
        trees = assemble_traces(tel.events())
        rejected = [
            (tid, node)
            for tid, tree in trees.items()
            for node in tree.find("query.rejected")
        ]
        assert rejected, "congestion produced no reject notices"
        search_traces = {r.outcome.trace_id for r in results}
        for tid, node in rejected:
            assert tid in search_traces
            chain = [n.name for n in trees[tid].ancestors(node)]
            # reject notice <- shed attempt's message hop <- contact
            assert "query.contact" in chain

    def test_shed_events_carry_kind_and_msg_id(self, congested):
        tel, _ = congested
        sheds = [e for e in tel.events() if e.name == "net.shed"]
        assert sheds
        assert any(e.tags["kind"] == "query" for e in sheds)
        for e in sheds:
            # Both directions saturate: forwards and responses shed.
            assert e.tags["kind"] in ("query", "query-response")
            assert e.tags["msg_id"] > 0
            assert "trace_id" in e.tags  # shed hops stay in the tree
