"""Tests for delta (change-detection) summary propagation.

The paper's efficiency argument hinges on summaries changing an order of
magnitude slower than records (t_s >> t_r): a record update that stays
within the same histogram bucket leaves the summary untouched, so in
steady state most epochs need only keep-alive refreshes.
"""

import numpy as np
import pytest

from repro.hierarchy import aggregate_round
from repro.roads import RoadsConfig, RoadsSystem, SearchRequest
from repro.summaries import SummaryConfig
from repro.workload import WorkloadConfig, generate_node_stores, generate_queries, merge_stores


@pytest.fixture
def delta_system():
    wcfg = WorkloadConfig(num_nodes=24, records_per_node=60, seed=21)
    stores = generate_node_stores(wcfg)
    cfg = RoadsConfig(
        num_nodes=24,
        records_per_node=60,
        max_children=3,
        summary=SummaryConfig(histogram_buckets=50),
        delta_updates=True,
        seed=21,
    )
    return wcfg, stores, RoadsSystem.build(cfg, stores)


class TestFingerprints:
    def test_stable_under_copy(self, delta_system):
        _, stores, system = delta_system
        from repro.summaries import ResourceSummary

        cfg = system.config.summary
        s = ResourceSummary.from_store(stores[0], cfg)
        assert s.fingerprint() == s.copy().fingerprint()
        assert s.fingerprint() == s.refreshed(99.0).fingerprint()

    def test_changes_with_content(self, delta_system):
        _, stores, system = delta_system
        from repro.summaries import ResourceSummary

        cfg = system.config.summary
        a = ResourceSummary.from_store(stores[0], cfg)
        b = ResourceSummary.from_store(stores[1], cfg)
        assert a.fingerprint() != b.fingerprint()


class TestSteadyState:
    def test_steady_state_epoch_is_nearly_free(self, delta_system):
        _, _, system = delta_system
        # Reference: what a full (non-delta) epoch costs.
        from repro.hierarchy import aggregate_round

        full = aggregate_round(
            system.hierarchy, system.config.summary, delta=False
        ).total_bytes + system.overlay.replicate_round(delta=False).replication_bytes
        # Steady state under delta: nothing changed since the last epoch.
        system.refresh()  # re-arm fingerprints after the forced full round
        steady = system.refresh()
        assert steady.aggregation.full_reports == 0
        assert steady.replication.full_sends == 0
        assert steady.total_bytes < full / 10

    def test_message_count_unchanged(self, delta_system):
        """Delta mode saves bytes, not messages (soft state still needs
        periodic refresh)."""
        _, _, system = delta_system
        first = system.refresh()
        second = system.refresh()
        assert second.total_messages == first.total_messages


class TestChangePropagation:
    def test_within_bucket_change_is_free(self, delta_system):
        _, stores, system = delta_system
        system.refresh()
        # Nudge one value within its (width 1/50) bucket.
        store = stores[0]
        old = float(store.numeric_column("u0")[0])
        bucket = int(old * 50)
        nudged = min((bucket + 0.5) / 50, 1.0)
        store.update_numeric(0, "u0", nudged)
        report = system.refresh()
        assert report.aggregation.full_reports == 0

    def test_cross_bucket_change_propagates_along_path_only(self, delta_system):
        _, stores, system = delta_system
        system.refresh()
        store = stores[5]
        old = float(store.numeric_column("u0")[0])
        # Move the value to the far side of the domain (different bucket).
        store.update_numeric(0, "u0", 1.0 - old if abs(0.5 - old) > 0.01 else 0.99)
        report = system.refresh()
        changed_server = system.hierarchy.get(5)
        path_len = changed_server.depth  # reports from 5 up to the root
        assert 1 <= report.aggregation.full_reports <= path_len + 1
        # Replication re-ships only summaries derived from the changed path.
        assert report.replication.full_sends < report.replication.messages

    def test_results_identical_with_and_without_delta(self):
        wcfg = WorkloadConfig(num_nodes=20, records_per_node=50, seed=8)
        stores = generate_node_stores(wcfg)
        reference = merge_stores(stores)
        queries = generate_queries(wcfg, num_queries=10, dimensions=3)
        outcomes = {}
        for delta in (False, True):
            system = RoadsSystem.build(
                RoadsConfig(
                    num_nodes=20,
                    records_per_node=50,
                    max_children=3,
                    summary=SummaryConfig(histogram_buckets=50),
                    delta_updates=delta,
                    seed=8,
                ),
                stores,
            )
            system.refresh()
            outcomes[delta] = [
                system.search(SearchRequest(q, client_node=0)).outcome.total_matches
                for q in queries
            ]
        assert outcomes[False] == outcomes[True]
        assert outcomes[True] == [q.match_count(reference) for q in queries]


class TestAggregateRoundDeltaFlag:
    def test_non_delta_rounds_always_full(self, delta_system):
        _, _, system = delta_system
        cfg = system.config.summary
        aggregate_round(system.hierarchy, cfg, delta=False)
        report = aggregate_round(system.hierarchy, cfg, delta=False)
        assert report.keepalive_reports == 0
        assert report.full_reports == len(system.hierarchy) - 1


class TestDeltaUnderTopologyChange:
    def test_reattached_child_resends_full_summary(self):
        """A child that moves to a new parent must ship its full branch
        summary even if its fingerprint is unchanged — the new parent
        has no prior state for it."""
        wcfg = WorkloadConfig(num_nodes=12, records_per_node=30, seed=33)
        stores = generate_node_stores(wcfg)
        system = RoadsSystem.build(
            RoadsConfig(
                num_nodes=12, records_per_node=30, max_children=4,
                summary=SummaryConfig(histogram_buckets=40),
                delta_updates=True, seed=33,
            ),
            stores,
        )
        system.refresh()  # steady state armed
        # Move one leaf under a different parent manually.
        leaf = system.hierarchy.leaves()[0]
        old_parent = leaf.parent
        new_parent = next(
            s for s in system.hierarchy
            if s is not old_parent and s is not leaf
            and s.willing_to_accept(leaf.server_id)
        )
        old_parent.remove_child(leaf.server_id)
        new_parent.add_child(leaf)
        report = system.refresh()
        # The moved leaf (at least) sent a full report to its new parent.
        assert report.aggregation.full_reports >= 1
        assert leaf.server_id in new_parent.child_summaries
        # Queries remain exact afterwards.
        reference = merge_stores(stores)
        queries = generate_queries(wcfg, num_queries=5, dimensions=2)
        for q in queries:
            o = system.search(SearchRequest(q, client_node=0)).outcome
            assert o.total_matches == q.match_count(reference)

    def test_delta_system_survives_failure_and_heal(self):
        """Delta propagation stays correct through crash + rejoin."""
        wcfg = WorkloadConfig(num_nodes=16, records_per_node=30, seed=34)
        stores = generate_node_stores(wcfg)
        system = RoadsSystem.build(
            RoadsConfig(
                num_nodes=16, records_per_node=30, max_children=3,
                summary=SummaryConfig(histogram_buckets=40),
                delta_updates=True, seed=34,
            ),
            stores,
        )
        proto = system.enable_maintenance()
        system.refresh()
        victim = next(
            s for s in system.hierarchy if not s.is_root and s.children
        )
        victim_id = victim.server_id
        proto.fail(victim)
        system.sim.run(until=system.sim.now + 60.0)
        system.refresh()
        alive_ids = [s.server_id for s in system.hierarchy if s.alive]
        reference = merge_stores([stores[i] for i in alive_ids])
        queries = generate_queries(wcfg, num_queries=5, dimensions=2)
        for q in queries:
            o = system.search(SearchRequest(q, client_node=alive_ids[0])).outcome
            assert o.total_matches == q.match_count(reference)
