"""The canonical search API and its deprecated shims.

Covers the SearchRequest/SearchResult objects, the shim equivalence
guarantee (same seed -> identical QueryOutcome through either entry
point), the scope/start_server consistency fix, and the widening-search
regression (one client for every scope; escalation stops at
min_matches).
"""

import dataclasses

import pytest

from repro.roads import (
    RetryPolicy,
    RoadsConfig,
    RoadsSystem,
    SearchRequest,
    SearchResult,
)
from repro.summaries import SummaryConfig
from repro.workload import WorkloadConfig, generate_node_stores, generate_queries

SEED = 5
NODES = 32


def build_system(**overrides):
    wcfg = WorkloadConfig(num_nodes=NODES, records_per_node=80, seed=SEED)
    cfg = RoadsConfig(
        num_nodes=NODES,
        records_per_node=80,
        max_children=4,
        summary=SummaryConfig(histogram_buckets=200),
        seed=SEED,
        **overrides,
    )
    return RoadsSystem.build(cfg, generate_node_stores(wcfg))


@pytest.fixture(scope="module")
def queries():
    wcfg = WorkloadConfig(num_nodes=NODES, records_per_node=80, seed=SEED)
    return generate_queries(wcfg, num_queries=8, dimensions=3)


def outcomes_equal(a, b):
    assert a.total_matches == b.total_matches
    assert a.latency == b.latency
    assert a.servers_contacted == b.servers_contacted
    assert a.query_bytes == b.query_bytes
    assert a.query_messages == b.query_messages
    assert a.client_node == b.client_node
    assert a.start_server == b.start_server
    assert a.timed_out_servers == b.timed_out_servers
    assert a.shed_servers == b.shed_servers
    assert {h.owner_id for h in a.owner_hits} == {
        h.owner_id for h in b.owner_hits
    }


class TestSearchRequest:
    def test_inconsistent_scope_and_start_rejected(self, queries):
        with pytest.raises(ValueError, match="inconsistent"):
            SearchRequest(queries[0], scope=3, start_server=4)

    def test_matching_scope_and_start_allowed(self, queries):
        req = SearchRequest(queries[0], scope=3, start_server=3)
        assert req.entry_mode == "descent"

    def test_bad_first_k_rejected(self, queries):
        with pytest.raises(ValueError, match="first_k"):
            SearchRequest(queries[0], first_k=0)

    def test_entry_modes(self, queries):
        assert SearchRequest(queries[0]).entry_mode == "start"
        assert SearchRequest(queries[0], scope=2).entry_mode == "descent"
        assert (
            SearchRequest(queries[0], use_overlay=False).entry_mode
            == "descent"
        )

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0)
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_backoff_schedule(self):
        p = RetryPolicy(backoff_base=0.2, backoff_factor=2.0)
        assert p.delay_before_attempt(1) == 0.0
        assert p.delay_before_attempt(2) == pytest.approx(0.2)
        assert p.delay_before_attempt(3) == pytest.approx(0.4)
        assert p.delay_before_attempt(4) == pytest.approx(0.8)
        # base 0 = the historical immediate retry
        assert RetryPolicy().delay_before_attempt(2) == 0.0


class TestSearchResult:
    def test_delegates_to_outcome(self, queries):
        system = build_system()
        result = system.search(SearchRequest(queries[0], client_node=3))
        assert isinstance(result, SearchResult)
        assert result.total_matches == result.outcome.total_matches
        assert result.latency == result.outcome.latency
        assert result.servers_contacted == result.outcome.servers_contacted
        assert result.client_node == 3
        assert result.finished_at >= result.submitted_at
        assert result.sojourn == result.finished_at - result.submitted_at
        assert result.ok and not result.shed

    def test_unknown_attribute_raises(self, queries):
        system = build_system()
        result = system.search(SearchRequest(queries[0], client_node=3))
        with pytest.raises(AttributeError):
            result.no_such_attribute


class TestShimEquivalence:
    """Same seed -> identical QueryOutcome through either entry point."""

    def test_execute_query_equivalent(self, queries):
        legacy, canonical = build_system(), build_system()
        for i, q in enumerate(queries[:4]):
            with pytest.warns(DeprecationWarning, match="execute_query"):
                old = legacy.execute_query(q, client_node=i)
            new = canonical.search(SearchRequest(q, client_node=i)).outcome
            outcomes_equal(old, new)

    def test_execute_query_random_client_equivalent(self, queries):
        # Client draws come from the system RNG in the same order.
        legacy, canonical = build_system(), build_system()
        for q in queries[:4]:
            with pytest.warns(DeprecationWarning):
                old = legacy.execute_query(q)
            new = canonical.search(SearchRequest(q)).outcome
            outcomes_equal(old, new)

    def test_execute_queries_equivalent(self, queries):
        legacy, canonical = build_system(), build_system()
        clients = list(range(len(queries)))
        with pytest.warns(DeprecationWarning, match="execute_queries"):
            old = legacy.execute_queries(queries, client_nodes=clients)
        new = canonical.search_many([
            SearchRequest(q, client_node=c)
            for q, c in zip(queries, clients)
        ])
        for o, n in zip(old, new):
            outcomes_equal(o, n.outcome)

    def test_widening_search_equivalent(self, queries):
        legacy, canonical = build_system(), build_system()
        with pytest.warns(DeprecationWarning, match="widening_search"):
            old = legacy.widening_search(queries[0], 7, min_matches=1)
        new = canonical.widening(
            SearchRequest(queries[0], client_node=7), min_matches=1
        )
        assert len(old) == len(new)
        for o, n in zip(old, new):
            outcomes_equal(o, n.outcome)

    def test_no_overlay_equivalent(self, queries):
        legacy, canonical = build_system(), build_system()
        with pytest.warns(DeprecationWarning):
            old = legacy.execute_query(
                queries[0], client_node=2, use_overlay=False
            )
        new = canonical.search(
            SearchRequest(queries[0], client_node=2, use_overlay=False)
        ).outcome
        outcomes_equal(old, new)
        assert new.start_server == canonical.hierarchy.root.server_id


class TestWidening:
    def test_all_scopes_share_one_client(self, queries):
        """Regression: every scope of one widening search is issued by
        the same client node."""
        system = build_system()
        leaf = max(system.hierarchy, key=lambda s: s.depth)
        results = system.widening(
            SearchRequest(queries[0], client_node=leaf.server_id),
            min_matches=10**9,  # never satisfied: visit every scope
        )
        assert len(results) >= 2
        assert {r.outcome.client_node for r in results} == {leaf.server_id}
        # Scopes escalate: own server first, then each ancestor.
        assert results[0].request.scope == leaf.server_id
        assert results[-1].request.scope == system.hierarchy.root.server_id

    def test_escalation_stops_at_min_matches(self, queries):
        system = build_system()
        leaf = max(system.hierarchy, key=lambda s: s.depth)
        # Find a query with federation-wide matches, then ask for a
        # count the first sufficient scope can satisfy.
        full = system.search(
            SearchRequest(queries[0], client_node=leaf.server_id)
        )
        assume_matches = full.total_matches
        if assume_matches < 1:
            pytest.skip("workload produced no matches for this query")
        results = system.widening(
            SearchRequest(queries[0], client_node=leaf.server_id),
            min_matches=1,
        )
        # Stopped at the first scope with >= 1 match: every earlier
        # scope was insufficient.
        assert results[-1].total_matches >= 1
        for r in results[:-1]:
            assert r.total_matches < 1
        # And it did not needlessly widen to the root if an inner scope
        # sufficed.
        counts = [r.total_matches for r in results]
        assert counts == sorted(counts)

    def test_widening_requires_client(self, queries):
        system = build_system()
        with pytest.raises(ValueError, match="client_node"):
            system.widening(SearchRequest(queries[0]))


class TestDeprecationSurface:
    def test_all_three_shims_warn(self, queries):
        system = build_system()
        with pytest.warns(DeprecationWarning):
            system.execute_query(queries[0], client_node=0)
        with pytest.warns(DeprecationWarning):
            system.execute_queries(queries[:1], client_nodes=[0])
        with pytest.warns(DeprecationWarning):
            system.widening_search(queries[0], 0)

    def test_shim_kwargs_map_one_to_one(self, queries):
        system = build_system()
        with pytest.warns(DeprecationWarning):
            o = system.execute_query(
                queries[0],
                client_node=1,
                scope=1,
                collect_records=True,
                first_k=3,
                trace=True,
            )
        assert o.client_node == 1
        assert o.start_server == 1
        assert o.trace_events  # trace was threaded through

    def test_search_request_is_frozen(self, queries):
        req = SearchRequest(queries[0], client_node=1)
        with pytest.raises(dataclasses.FrozenInstanceError):
            req.client_node = 2
