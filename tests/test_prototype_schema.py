"""Tests for the 120-attribute mixed prototype schema (Section V)."""

import numpy as np
import pytest

from repro.query import EqualsPredicate, Query, RangePredicate
from repro.records import RecordStore, prototype_record_schema
from repro.summaries import ResourceSummary, SummaryConfig


@pytest.fixture(scope="module")
def schema():
    return prototype_record_schema()


@pytest.fixture(scope="module")
def store(schema):
    rng = np.random.default_rng(1)
    n = 3000
    numeric_cols = []
    for spec in schema.numeric_attributes:
        lo, hi = spec.bounds
        numeric_cols.append(rng.uniform(lo, hi, n))
    categorical_cols = []
    for spec in schema.categorical_attributes:
        if spec.categories is not None:
            categorical_cols.append(rng.choice(spec.categories, n).tolist())
        else:
            categorical_cols.append(
                [f"free-{int(v)}" for v in rng.integers(0, 50, n)]
            )
    return RecordStore.from_arrays(
        schema, np.column_stack(numeric_cols), categorical_cols
    )


class TestSchemaShape:
    def test_120_attributes(self, schema):
        assert len(schema) == 120

    def test_attribute_kinds_present(self, schema):
        names = schema.names
        assert "int0" in names and "dbl0" in names and "ts0" in names
        assert "cat0" in names and "str0" in names
        assert len(schema.numeric_attributes) == 108
        assert len(schema.categorical_attributes) == 12

    def test_custom_width(self):
        s = prototype_record_schema(numeric_per_kind=2)
        assert len(s) == 3 * 2 + 12

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            prototype_record_schema(0)


class TestMixedTypeQueries:
    def test_timestamp_range_query(self, store):
        q = Query.of(RangePredicate("ts0", 1.12e9, 1.13e9))
        count = q.match_count(store)
        # ~1/7 of the two-year window
        assert 0 < count < len(store)

    def test_multi_kind_conjunction(self, store, schema):
        q = Query.of(
            RangePredicate("int0", 0, 5e5),
            RangePredicate("dbl0", 0.25, 0.75),
            RangePredicate("ts0", 1.1e9, 1.15e9),
            EqualsPredicate("cat0", schema["cat0"].categories[0]),
        )
        mask_count = q.match_count(store)
        # consistent with per-record evaluation
        per_record = sum(
            1 for i in range(0, len(store), 37)
            if q.matches_record(store.record_at(i))
        )
        expected_sampled = int(q.mask(store)[::37].sum())
        assert per_record == expected_sampled
        assert 0 <= mask_count <= len(store)

    def test_summaries_cover_all_120_attributes(self, store):
        cfg = SummaryConfig(histogram_buckets=100)
        s = ResourceSummary.from_store(store, cfg)
        assert len(s.attributes) == 120
        q = Query.of(
            RangePredicate("ts3", 1.1e9, 1.17e9),
            EqualsPredicate("str0", store.categorical_column("str0")[0]),
        )
        if q.match_count(store) > 0:
            assert s.may_match(q)

    def test_bloom_for_open_string_universe(self, store):
        cfg = SummaryConfig(
            histogram_buckets=50, categorical_summary="bloom", bloom_bits=2048
        )
        s = ResourceSummary.from_store(store, cfg)
        present = store.categorical_column("str3")[7]
        assert s.attributes["str3"].may_match(
            EqualsPredicate("str3", present)
        )
