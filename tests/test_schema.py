"""Unit tests for repro.records.schema."""

import pytest

from repro.records import (
    Schema,
    categorical,
    numeric,
)
from repro.records.schema import compute_resource_schema, stream_processing_schema


class TestSchemaConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one attribute"):
            Schema([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema([numeric("x"), numeric("x")])

    def test_len_iter_contains(self):
        s = Schema([numeric("a"), categorical("b")])
        assert len(s) == 2
        assert [a.name for a in s] == ["a", "b"]
        assert "a" in s and "b" in s and "c" not in s

    def test_getitem(self):
        s = Schema([numeric("a")])
        assert s["a"].name == "a"
        with pytest.raises(KeyError, match="no attribute"):
            s["zz"]

    def test_equality_and_hash(self):
        s1 = Schema([numeric("a"), numeric("b")])
        s2 = Schema([numeric("a"), numeric("b")])
        s3 = Schema([numeric("b"), numeric("a")])
        assert s1 == s2
        assert hash(s1) == hash(s2)
        assert s1 != s3


class TestPartitions:
    def test_partition_split(self, mixed_schema):
        numeric_names = [a.name for a in mixed_schema.numeric_attributes]
        cat_names = [a.name for a in mixed_schema.categorical_attributes]
        assert numeric_names == ["rate", "load"]
        assert cat_names == ["type", "encoding"]

    def test_positions(self, mixed_schema):
        assert mixed_schema.numeric_position("rate") == 0
        assert mixed_schema.numeric_position("load") == 1
        assert mixed_schema.categorical_position("type") == 0
        assert mixed_schema.categorical_position("encoding") == 1

    def test_position_wrong_kind(self, mixed_schema):
        with pytest.raises(ValueError, match="not numeric"):
            mixed_schema.numeric_position("type")
        with pytest.raises(ValueError, match="not categorical"):
            mixed_schema.categorical_position("rate")

    def test_record_size(self):
        s = Schema([numeric("a", size_bytes=8), categorical("b", size_bytes=4)])
        assert s.record_size_bytes == 12


class TestFactories:
    def test_uniform_numeric(self):
        s = Schema.uniform_numeric(25)
        assert len(s) == 25
        assert all(a.is_numeric for a in s)
        assert all(a.bounds == (0.0, 1.0) for a in s)

    def test_uniform_numeric_invalid(self):
        with pytest.raises(ValueError):
            Schema.uniform_numeric(0)

    def test_stream_processing_schema(self):
        s = stream_processing_schema()
        assert "type" in s and "rate_kbps" in s
        assert s["type"].is_categorical

    def test_compute_resource_schema(self):
        s = compute_resource_schema()
        assert "cpus" in s and "arch" in s
        assert s["memory_gb"].is_numeric
