"""Property-based tests for the wire codec and churn-adjacent invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.query import RangePredicate
from repro.summaries import BloomFilterSummary, HistogramSummary, ValueSetSummary
from repro.summaries.codec import (
    decode_attribute,
    encode_attribute,
)

unit_floats = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(unit_floats, min_size=0, max_size=50)
names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=16,
)
string_lists = st.lists(names, min_size=0, max_size=25)


class TestCodecProperties:
    @given(values=value_lists,
           buckets=st.sampled_from([1, 3, 16, 100, 1000]),
           encoding=st.sampled_from(["dense", "sparse"]))
    @settings(max_examples=120, deadline=None)
    def test_histogram_roundtrip_identity(self, values, buckets, encoding):
        h = HistogramSummary.from_values("attr", values, buckets,
                                         encoding=encoding)
        out, consumed = decode_attribute(encode_attribute(h))
        assert out == h
        assert consumed == len(encode_attribute(h))

    @given(values=value_lists,
           buckets=st.sampled_from([8, 64, 256]),
           lo=unit_floats, hi=unit_floats)
    @settings(max_examples=120, deadline=None)
    def test_bitmap_roundtrip_preserves_may_match(self, values, buckets, lo, hi):
        assume(lo <= hi)
        h = HistogramSummary.from_values("attr", values, buckets,
                                         encoding="bitmap")
        out, _ = decode_attribute(encode_attribute(h))
        pred = RangePredicate("attr", lo, hi)
        assert out.may_match(pred) == h.may_match(pred)

    @given(values=string_lists, name=names)
    @settings(max_examples=100, deadline=None)
    def test_valueset_roundtrip_identity(self, values, name):
        s = ValueSetSummary(name, values)
        out, _ = decode_attribute(encode_attribute(s))
        assert out == s

    @given(values=string_lists,
           bits=st.sampled_from([8, 64, 256, 1024]),
           hashes=st.integers(min_value=1, max_value=6))
    @settings(max_examples=80, deadline=None)
    def test_bloom_roundtrip_identity(self, values, bits, hashes):
        f = BloomFilterSummary.from_values("e", values, bits, hashes)
        out, _ = decode_attribute(encode_attribute(f))
        assert out == f

    @given(values=value_lists, buckets=st.sampled_from([4, 32, 128]))
    @settings(max_examples=80, deadline=None)
    def test_frame_self_delimiting(self, values, buckets):
        """Concatenated frames decode back in order."""
        a = HistogramSummary.from_values("x", values, buckets)
        b = ValueSetSummary("y", ["p", "q"])
        buf = encode_attribute(a) + encode_attribute(b)
        first, off = decode_attribute(buf)
        second, end = decode_attribute(buf, off)
        assert first == a and second == b and end == len(buf)


class TestFingerprintProperties:
    @given(values=value_lists, buckets=st.sampled_from([8, 64]))
    @settings(max_examples=80, deadline=None)
    def test_fingerprint_deterministic(self, values, buckets):
        a = HistogramSummary.from_values("x", values, buckets)
        b = HistogramSummary.from_values("x", values, buckets)
        assert a.fingerprint() == b.fingerprint()

    @given(values=value_lists, extra=unit_floats,
           buckets=st.sampled_from([64, 256]))
    @settings(max_examples=80, deadline=None)
    def test_fingerprint_sensitive_to_new_bucket(self, values, extra, buckets):
        a = HistogramSummary.from_values("x", values, buckets)
        b = a.copy()
        b.add_values([extra])
        # Adding a value always changes some counter, hence the hash.
        assert a.fingerprint() != b.fingerprint()

    @given(values=string_lists)
    @settings(max_examples=60, deadline=None)
    def test_valueset_fingerprint_order_independent(self, values):
        a = ValueSetSummary("e", values)
        b = ValueSetSummary("e", list(reversed(values)))
        assert a.fingerprint() == b.fingerprint()


class TestIndexProperties:
    @given(
        values=st.lists(unit_floats, min_size=1, max_size=80),
        lo=unit_floats,
        hi=unit_floats,
    )
    @settings(max_examples=100, deadline=None)
    def test_sorted_index_equals_scan(self, values, lo, hi):
        import numpy as np

        from repro.records.index import SortedIndex

        arr = np.asarray(values)
        idx = SortedIndex(arr)
        want_rows = set(np.flatnonzero((arr >= lo) & (arr <= hi)).tolist())
        assert set(idx.rows_in_range(lo, hi).tolist()) == want_rows
        assert idx.count_range(lo, hi) == len(want_rows)

    @given(
        n=st.integers(min_value=1, max_value=60),
        bounds=st.tuples(unit_floats, unit_floats, unit_floats, unit_floats),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=80, deadline=None)
    def test_indexed_store_equals_query_mask(self, n, bounds, seed):
        import numpy as np

        from repro.query import Query, RangePredicate
        from repro.records import RecordStore, Schema, numeric
        from repro.records.index import IndexedStore

        schema = Schema([numeric("a"), numeric("b")])
        rng = np.random.default_rng(seed)
        store = RecordStore.from_arrays(schema, rng.random((n, 2)), [])
        a_lo, a_hi, b_lo, b_hi = bounds
        assume(a_lo <= a_hi and b_lo <= b_hi)
        q = Query.of(
            RangePredicate("a", a_lo, a_hi), RangePredicate("b", b_lo, b_hi)
        )
        ix = IndexedStore(store)
        want = set(np.flatnonzero(q.mask(store)).tolist())
        assert set(ix.match_rows(q).tolist()) == want
