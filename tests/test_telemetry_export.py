"""Exporter round-trips and the `repro telemetry` CLI subcommand."""

import json

import pytest

from repro.cli import main
from repro.telemetry import (
    MetricsRegistry,
    Telemetry,
    chrome_trace,
    prometheus_text,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)


def sample_telemetry():
    tel = Telemetry()
    clock = {"t": 0.0}
    tel.bind_clock(lambda: clock["t"])
    with tel.span("query.execute", server=3, client=1):
        clock["t"] = 0.1
        tel.event("query.send", server=5, bytes=160)
        clock["t"] = 0.4
    tel.emit_span("net.transit", 0.1, 0.25, src=1, server=5,
                  category="query")
    return tel


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tel = sample_telemetry()
        path = tmp_path / "events.jsonl"
        n = write_jsonl(tel.events(), path)
        assert n == 3
        back = read_jsonl(path)
        assert back == tel.events()

    def test_lines_are_json_objects(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_jsonl(sample_telemetry().events(), path)
        for line in path.read_text().splitlines():
            obj = json.loads(line)
            assert {"ts", "name", "kind", "tags"} <= set(obj)


class TestChromeTrace:
    def test_schema_keys(self):
        doc = chrome_trace(sample_telemetry().events())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"X", "i", "M"} <= phases
        for e in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(e)
            if e["ph"] == "X":
                assert "dur" in e and e["dur"] >= 0
            if e["ph"] != "M":
                assert e["ts"] >= 0

    def test_microsecond_timestamps(self):
        doc = chrome_trace(sample_telemetry().events())
        transit = next(
            e for e in doc["traceEvents"] if e["name"] == "net.transit"
        )
        assert transit["ts"] == pytest.approx(0.1e6)
        assert transit["dur"] == pytest.approx(0.15e6)
        assert transit["pid"] == 5  # grouped by the server tag

    def test_write_is_loadable(self, tmp_path):
        path = tmp_path / "trace.json"
        n = write_chrome_trace(sample_telemetry().events(), path)
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == n

    def test_overlapping_root_spans_get_distinct_lanes(self):
        tel = Telemetry()
        # Two root spans (parent_id == 0) on the same server overlap in
        # time; they must land on different tid lanes or one hides the
        # other in the trace viewer.
        tel.emit_span("query.execute", 0.0, 1.0, server=2)
        tel.emit_span("update.aggregate", 0.2, 0.6, server=2)
        doc = chrome_trace(tel.events())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 2
        assert spans[0]["tid"] != spans[1]["tid"]

    def test_sequential_spans_share_lane_zero(self):
        tel = Telemetry()
        tel.emit_span("query.execute", 0.0, 0.5, server=2)
        tel.emit_span("query.execute", 1.0, 1.5, server=2)
        doc = chrome_trace(tel.events())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["tid"] for e in spans] == [0, 0]

    def test_lanes_are_per_pid(self):
        tel = Telemetry()
        # Concurrent spans on *different* servers do not need extra
        # lanes: each pid has its own allocator.
        tel.emit_span("query.execute", 0.0, 1.0, server=1)
        tel.emit_span("query.execute", 0.0, 1.0, server=2)
        doc = chrome_trace(tel.events())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert all(e["tid"] == 0 for e in spans)


class TestCausalFlows:
    """Flow events (``"s"``/``"f"`` pairs) link sender and receiver lanes."""

    @staticmethod
    def traced_pair(parent_pid=1, child_pid=5):
        tel = Telemetry()
        clock = {"t": 0.0}
        tel.bind_clock(lambda: clock["t"])
        root = tel.new_trace()
        tel.emit_span("query.contact", 0.0, 0.4, server=parent_pid,
                      **root.tags())
        hop = tel.fork(root)
        tel.emit_span("net.transit", 0.1, 0.3, server=child_pid,
                      **hop.tags())
        return tel, root, hop

    def test_cross_pid_edge_emits_flow_pair(self):
        tel, _, hop = self.traced_pair()
        doc = chrome_trace(tel.events())
        flows = [e for e in doc["traceEvents"] if e["ph"] in ("s", "f")]
        assert len(flows) == 2
        start = next(e for e in flows if e["ph"] == "s")
        finish = next(e for e in flows if e["ph"] == "f")
        # One flow id — the child's span id — shared by both halves.
        assert start["id"] == finish["id"] == hop.span_id
        assert start["name"] == finish["name"] == "causal"
        assert finish["bp"] == "e"
        # Start rides the sender's lane; finish rides the receiver's.
        assert start["pid"] == 1 and finish["pid"] == 5
        assert finish["ts"] == pytest.approx(0.1e6)
        # The start anchor never floats after the child's begin.
        assert start["ts"] <= finish["ts"]

    def test_same_pid_edge_emits_no_flow(self):
        tel, _, _ = self.traced_pair(parent_pid=3, child_pid=3)
        doc = chrome_trace(tel.events())
        assert not [e for e in doc["traceEvents"] if e["ph"] in ("s", "f")]

    def test_flow_anchors_carry_final_lanes(self):
        # The parent pid also hosts an overlapping untraced span, which
        # forces lane fan-out; the flow start must reference the lane
        # the traced span actually ended up on.
        tel, root, hop = self.traced_pair()
        tel.emit_span("update.aggregate", 0.0, 0.5, server=1)
        doc = chrome_trace(tel.events())
        contact = next(
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"] == "query.contact"
        )
        start = next(e for e in doc["traceEvents"] if e["ph"] == "s")
        assert start["tid"] == contact["tid"]

    def test_span_outranks_instant_for_flow_anchoring(self):
        # ``net.send`` (instant) and ``net.transit`` (span) share one
        # span id; the flow must anchor to the span's entry.
        tel = Telemetry()
        clock = {"t": 0.1}
        tel.bind_clock(lambda: clock["t"])
        root = tel.new_trace()
        tel.emit_span("query.contact", 0.0, 0.4, server=1, **root.tags())
        hop = tel.fork(root)
        tel.event("net.send", server=1, **hop.tags())
        tel.emit_span("net.transit", 0.1, 0.3, server=5, **hop.tags())
        doc = chrome_trace(tel.events())
        finish = next(e for e in doc["traceEvents"] if e["ph"] == "f")
        assert finish["pid"] == 5  # the span's pid, not the instant's

    def test_concurrent_searches_produce_linked_overlapping_spans(self):
        # N concurrent searches on a real federation: their query spans
        # overlap in time, land on distinct lanes where they share a
        # server, and every cross-server hop is linked by a flow pair.
        from repro.roads import RoadsConfig, RoadsSystem, SearchRequest
        from repro.workload import (
            WorkloadConfig,
            generate_node_stores,
            generate_queries,
        )

        tel = Telemetry(capacity=100_000)
        wcfg = WorkloadConfig(num_nodes=16, records_per_node=40, seed=5)
        system = RoadsSystem.build(
            RoadsConfig(num_nodes=16, records_per_node=40, seed=5),
            generate_node_stores(wcfg),
            telemetry=tel,
        )
        queries = generate_queries(wcfg, num_queries=6)
        system.search_many(
            [
                SearchRequest(q, client_node=i)
                for i, q in enumerate(queries)
            ],
            arrivals=[0.0] * len(queries),
        )
        doc = chrome_trace(tel.events())
        flows = [e for e in doc["traceEvents"] if e["ph"] in ("s", "f")]
        assert flows
        starts = {e["id"] for e in flows if e["ph"] == "s"}
        finishes = {e["id"] for e in flows if e["ph"] == "f"}
        assert starts == finishes  # every flow has both halves
        # Overlapping transits into one server fan out across lanes.
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert any(e["tid"] > 0 for e in spans)


class TestPrometheus:
    def test_counter_lines(self):
        r = MetricsRegistry()
        r.count_message("query", 100, server=3, phase="forward")
        r.observe("query.latency", 0.2, server=3)
        text = prometheus_text(r)
        assert (
            'roads_messages_total{category="query",server="3",phase="forward"} 1'
            in text
        )
        assert (
            'roads_bytes_total{category="query",server="3",phase="forward"} 100'
            in text
        )
        assert "# TYPE roads_messages_total counter" in text
        assert 'quantile="0.95"' in text

    def test_lines_parse(self):
        r = MetricsRegistry()
        r.count_message("update", 10)
        for line in prometheus_text(r).splitlines():
            if line.startswith("#") or not line:
                continue
            name_labels, value = line.rsplit(" ", 1)
            float(value)
            assert name_labels.startswith("roads_")

    def test_empty_label_values_are_kept(self):
        # A series with server=None must render as server="" rather than
        # dropping the label: a registry-level total is a different
        # series from one that never had a server label.
        r = MetricsRegistry()
        r.count_message("update", 10)
        text = prometheus_text(r)
        assert 'roads_messages_total{category="update",server="",phase=""} 1' in text

    def test_label_values_are_escaped(self):
        r = MetricsRegistry()
        r.count_message("query", 5, server=1, phase='for"ward\\x\ny')
        text = prometheus_text(r)
        assert 'phase="for\\"ward\\\\x\\ny"' in text
        # Escaping keeps the exposition line single-line and parseable.
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name_labels, value = line.rsplit(" ", 1)
            float(value)


class TestCli:
    def test_telemetry_command_prints_load_table(self, tmp_path, capsys):
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "events.jsonl"
        prom = tmp_path / "metrics.prom"
        rc = main([
            "telemetry", "--nodes", "16", "--records", "30",
            "--queries", "8", "--seed", "3", "--top", "5",
            "--export-chrome", str(chrome),
            "--export-jsonl", str(jsonl),
            "--export-prom", str(prom),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "root-load share (with overlay)" in out
        assert "root-load share (without overlay" in out
        assert "query latency" in out
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]
        assert read_jsonl(jsonl)
        assert "roads_bytes_total" in prom.read_text()

    def test_selftest_telemetry_flag(self, capsys):
        rc = main(["selftest", "--seed", "1", "--telemetry"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "selftest passed" in out
        assert "root-load share" in out
