"""Smoke tests for the figure drivers not covered elsewhere.

Shape assertions live in benchmarks/ (at meaningful scale); these verify
driver mechanics — row structure, sweep handling, determinism — at tiny
scale so the whole experiments package is exercised by `pytest tests/`.
"""

import pytest

from repro.experiments import (
    ExperimentSettings,
    fig4_update_overhead_vs_nodes,
    fig5_query_overhead_vs_nodes,
    fig7_query_overhead_vs_dimensions,
    fig11_response_time_vs_selectivity,
)

SMOKE = ExperimentSettings.smoke()


class TestFig4Driver:
    def test_rows_structure(self):
        rows = fig4_update_overhead_vs_nodes(SMOKE, node_sweep=(24, 48))
        assert [r["nodes"] for r in rows] == [24, 48]
        for r in rows:
            assert r["roads_update_bytes"] > 0
            assert r["sword_update_bytes"] > r["roads_update_bytes"]
            assert r["ratio"] > 1

    def test_deterministic(self):
        a = fig4_update_overhead_vs_nodes(SMOKE, node_sweep=(24,))
        b = fig4_update_overhead_vs_nodes(SMOKE, node_sweep=(24,))
        assert a == b


class TestFig5Driver:
    def test_rows_structure(self):
        rows = fig5_query_overhead_vs_nodes(
            SMOKE.with_(num_queries=10), node_sweep=(24, 48)
        )
        assert len(rows) == 2
        for r in rows:
            assert r["roads_query_bytes"] > 0
            assert r["sword_query_bytes"] > 0


class TestFig7Driver:
    def test_rows_structure(self):
        rows = fig7_query_overhead_vs_dimensions(
            SMOKE.with_(num_queries=10), dimension_sweep=(2, 6)
        )
        assert [r["dimensions"] for r in rows] == [2, 6]
        # SWORD messages grow with dimensionality (bigger queries).
        assert rows[1]["sword_query_bytes"] > rows[0]["sword_query_bytes"]


class TestFig11Driver:
    def test_rows_structure_small(self):
        # Tiny population: crossover position is out of scope here (it
        # needs the full 160k records); check mechanics only.
        rows = fig11_response_time_vs_selectivity(
            ExperimentSettings(
                num_nodes=24, records_per_node=100, num_queries=5,
                runs=1, seed=2,
            ),
            selectivity_sweep=(0.01, 0.05),
            queries_per_group=4,
        )
        assert [r["selectivity_pct"] for r in rows] == [1.0, 5.0]
        for r in rows:
            assert r["queries"] == 4
            assert r["roads_mean_ms"] > 0
            assert r["central_mean_ms"] > 0
            assert r["roads_p90_ms"] >= r["roads_mean_ms"] * 0.5
