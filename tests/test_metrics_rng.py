"""Unit tests for repro.sim.metrics and repro.sim.rng."""

import numpy as np
import pytest

from repro.sim import (
    MAINTENANCE,
    QUERY,
    UPDATE,
    MetricsCollector,
    SeedSequenceFactory,
)


class TestMetricsCollector:
    def test_record_and_read(self):
        m = MetricsCollector()
        m.record_message(UPDATE, 100)
        m.record_message(UPDATE, 50)
        m.record_message(QUERY, 10)
        assert m.bytes(UPDATE) == 150
        assert m.messages(UPDATE) == 2
        assert m.bytes(QUERY) == 10
        assert m.total_bytes == 160
        assert m.total_messages == 3

    def test_unknown_category_zero(self):
        assert MetricsCollector().bytes("nothing") == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector().record_message(UPDATE, -1)

    def test_latency_stats(self):
        m = MetricsCollector()
        for v in (0.1, 0.2, 0.3, 0.4):
            m.record_latency(v)
        assert m.mean_latency() == pytest.approx(0.25)
        assert m.percentile_latency(90) == pytest.approx(0.37, abs=0.01)

    def test_latency_empty(self):
        m = MetricsCollector()
        assert m.mean_latency() == 0.0
        assert m.percentile_latency(90) == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector().record_latency(-0.1)

    def test_reset_all(self):
        m = MetricsCollector()
        m.record_message(UPDATE, 100)
        m.record_latency(0.5)
        m.reset()
        assert m.total_bytes == 0
        assert m.mean_latency() == 0.0

    def test_reset_selected(self):
        m = MetricsCollector()
        m.record_message(UPDATE, 100)
        m.record_message(QUERY, 50)
        m.reset([UPDATE])
        assert m.bytes(UPDATE) == 0
        assert m.bytes(QUERY) == 50

    def test_snapshot_is_copy(self):
        m = MetricsCollector()
        m.record_message(MAINTENANCE, 7)
        snap = m.snapshot()
        m.record_message(MAINTENANCE, 7)
        assert snap[MAINTENANCE] == 7

    def test_summary_structure(self):
        m = MetricsCollector()
        m.record_message(UPDATE, 10)
        m.record_latency(1.0)
        s = m.summary()
        assert s["bytes"][UPDATE] == 10
        assert s["latency"]["count"] == 1


class TestSeedSequenceFactory:
    def test_same_name_same_stream(self):
        f1 = SeedSequenceFactory(42)
        f2 = SeedSequenceFactory(42)
        a = f1.fresh_generator("x").random(5)
        b = f2.fresh_generator("x").random(5)
        assert np.allclose(a, b)

    def test_different_names_different_streams(self):
        f = SeedSequenceFactory(42)
        a = f.fresh_generator("x").random(5)
        b = f.fresh_generator("y").random(5)
        assert not np.allclose(a, b)

    def test_different_seeds_different_streams(self):
        a = SeedSequenceFactory(1).fresh_generator("x").random(5)
        b = SeedSequenceFactory(2).fresh_generator("x").random(5)
        assert not np.allclose(a, b)

    def test_generator_cached(self):
        f = SeedSequenceFactory(1)
        assert f.generator("x") is f.generator("x")

    def test_fresh_generator_restarts(self):
        f = SeedSequenceFactory(1)
        a = f.fresh_generator("x").random(3)
        b = f.fresh_generator("x").random(3)
        assert np.allclose(a, b)

    def test_spawn_is_disjoint(self):
        f = SeedSequenceFactory(1)
        child = f.spawn("child")
        a = f.fresh_generator("x").random(3)
        b = child.fresh_generator("x").random(3)
        assert not np.allclose(a, b)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            SeedSequenceFactory(-1)
