"""Federation health probes: sampling cadence, SLO verdicts, passivity.

The probe rides the simulator on a fixed cadence, snapshots queue
depths, network counters, summary staleness and replication coverage,
and never perturbs the run — enabling it must leave every simulated
outcome bit-identical.
"""

import pytest

from repro.net.transport import ServiceConfig
from repro.roads import RoadsConfig, RoadsSystem
from repro.summaries import SummaryConfig
from repro.telemetry import (
    HealthProbe,
    HealthSLO,
    HealthSample,
    Telemetry,
)
from repro.telemetry.probes import PROBE_EVENT
from repro.workload import WorkloadConfig, generate_node_stores

SEED = 11
NODES = 24


def build_system(*, loss=0.0, telemetry=None, service=None, interval=1.0):
    wcfg = WorkloadConfig(num_nodes=NODES, records_per_node=50, seed=SEED)
    cfg = RoadsConfig(
        num_nodes=NODES,
        records_per_node=50,
        max_children=4,
        summary=SummaryConfig(histogram_buckets=200),
        summary_interval=interval,
        delta_updates=True,
        loss_rate=loss,
        seed=SEED,
    )
    system = RoadsSystem.build(
        cfg, generate_node_stores(wcfg), telemetry=telemetry
    )
    if service is not None:
        system.enable_service(service)
    return system


def sample(**overrides) -> HealthSample:
    base = dict(
        t=1.0, queue_depth_total=0, queue_depth_max=0, sent=100,
        delivered=98, lost=2, dropped=0, shed=0, pending=3,
        summary_entries=40, summary_age_mean=0.5, summary_age_max=1.0,
        stale_fraction=0.0, coverage=1.0,
    )
    base.update(overrides)
    return HealthSample(**base)


class TestSampling:
    def test_interval_must_be_positive(self):
        system = build_system()
        with pytest.raises(ValueError, match="interval"):
            HealthProbe(system, interval=0.0)

    def test_periodic_cadence(self):
        system = build_system(service=ServiceConfig(service_time=0.001))
        t0 = system.sim.now  # build already advanced the clock
        probe = HealthProbe(system, interval=0.5).start()
        system.update_plane.start()
        system.sim.run(until=t0 + 5.0)
        probe.stop()
        assert len(probe.samples) == 10  # every 0.5s over (t0, t0+5.0]
        times = [s.t for s in probe.samples]
        assert times == sorted(times)
        assert times[0] == pytest.approx(t0 + 0.5)
        diffs = [b - a for a, b in zip(times, times[1:])]
        assert all(d == pytest.approx(0.5) for d in diffs)

    def test_sample_reads_counters_and_staleness(self):
        system = build_system(loss=0.2, interval=0.5)
        system.update_plane.start()
        probe = HealthProbe(system, interval=0.5, stale_after=0.75).start()
        system.sim.run(until=6.0)
        last = probe.samples[-1]
        assert last.sent > 0
        assert last.lost > 0  # loss injection observed via counters()
        assert last.summary_entries > 0
        assert last.summary_age_max > 0.0
        # With one in five updates lost and a tight staleness bound,
        # some sampled tick catches stale summaries.
        assert max(s.stale_fraction for s in probe.samples) > 0.0
        assert min(s.coverage for s in probe.samples) <= 1.0

    def test_full_coverage_without_loss(self):
        system = build_system()
        system.update_plane.start()
        probe = HealthProbe(system, interval=1.0).start()
        system.sim.run(until=4.0)
        assert probe.samples[-1].coverage == pytest.approx(1.0)

    def test_probe_emits_telemetry_event(self):
        tel = Telemetry()
        system = build_system(telemetry=tel)
        system.update_plane.start()
        HealthProbe(system, interval=1.0).start()
        system.sim.run(until=system.sim.now + 3.0)
        probes = [e for e in tel.events() if e.name == PROBE_EVENT]
        assert len(probes) == 3
        assert {"queue_depth", "stale_fraction", "coverage"} <= set(
            probes[0].tags
        )

    def test_sampling_is_passive(self):
        # Identical runs with and without a probe: every network counter
        # must match — the probe sends nothing and consumes no
        # randomness.
        def run(with_probe):
            system = build_system(loss=0.1)
            system.update_plane.start()
            if with_probe:
                HealthProbe(system, interval=0.25).start()
            system.sim.run(until=6.0)
            return system.network.counters()

        assert run(True) == run(False)


class TestReport:
    def probe(self, samples):
        p = HealthProbe(build_system(), interval=1.0)
        p.samples = samples
        return p

    def test_healthy_report(self):
        report = self.probe([sample(), sample(t=2.0)]).report()
        assert report.healthy
        assert report.samples == 2
        assert report.window_start == 1.0 and report.window_end == 2.0
        assert {c.name for c in report.checks} == {
            "staleness", "coverage", "shedding", "loss"
        }

    def test_worst_sample_fails_staleness(self):
        report = self.probe(
            [sample(), sample(t=2.0, stale_fraction=0.5), sample(t=3.0)]
        ).report()
        assert not report.healthy
        bad = next(c for c in report.checks if c.name == "staleness")
        assert not bad.ok and bad.value == pytest.approx(0.5)

    def test_coverage_and_loss_thresholds(self):
        report = self.probe(
            [sample(coverage=0.9, lost=50)]
        ).report(HealthSLO(min_coverage=0.95, max_loss_fraction=0.25))
        by = {c.name: c for c in report.checks}
        assert not by["coverage"].ok
        assert not by["loss"].ok  # 50/100 > 0.25
        assert by["shedding"].ok

    def test_queue_depth_check_is_opt_in(self):
        samples = [sample(queue_depth_max=9)]
        names = {c.name for c in self.probe(samples).report().checks}
        assert "queue_depth" not in names
        report = self.probe(samples).report(HealthSLO(max_queue_depth=4))
        bad = next(c for c in report.checks if c.name == "queue_depth")
        assert not bad.ok and bad.value == 9.0

    def test_report_samples_on_demand_when_empty(self):
        system = build_system()
        probe = HealthProbe(system, interval=1.0)
        report = probe.report()
        assert report.samples == 1  # one synchronous sample was taken

    def test_round_trips_and_formatting(self):
        report = self.probe([sample(shed=20)]).report()
        doc = report.to_dict()
        assert doc["healthy"] is False
        assert doc["last_sample"]["shed"] == 20.0
        text = report.format()
        assert "UNHEALTHY" in text
        assert "shedding" in text
        assert HealthSample(**{
            k: (int(v) if k in (
                "queue_depth_total", "queue_depth_max", "sent", "delivered",
                "lost", "dropped", "shed", "pending", "summary_entries",
            ) else v)
            for k, v in sample().to_dict().items()
        }) == sample()
