"""Unit tests for repro.net (delay space and transport)."""

import numpy as np
import pytest

from repro.net import DELAY_SPACE_DIMENSIONS, DelaySpace, Network
from repro.sim import QUERY, UPDATE, MetricsCollector, Simulator


def make_space(n=16, **kwargs):
    return DelaySpace(n, np.random.default_rng(0), **kwargs)


class TestDelaySpace:
    def test_five_dimensional_by_default(self):
        ds = make_space()
        assert DELAY_SPACE_DIMENSIONS == 5
        assert ds.coordinates.shape == (16, 5)

    def test_symmetric(self):
        ds = make_space()
        for a, b in [(0, 1), (3, 9), (14, 2)]:
            assert ds.latency_ms(a, b) == pytest.approx(ds.latency_ms(b, a))

    def test_zero_self_latency(self):
        ds = make_space()
        assert ds.latency_ms(5, 5) == 0.0

    def test_positive_off_diagonal(self):
        ds = make_space()
        assert all(
            ds.latency_ms(a, b) > 0 for a in range(4) for b in range(4) if a != b
        )

    def test_base_offset_floor(self):
        ds = make_space(base_ms=50.0, jitter_ms=0.0)
        assert ds.latency_ms(0, 1) >= 50.0

    def test_latency_seconds(self):
        ds = make_space()
        assert ds.latency(0, 1) == pytest.approx(ds.latency_ms(0, 1) / 1000.0)

    def test_matrix_agrees_with_pointwise(self):
        ds = make_space(n=8)
        m = ds.matrix_ms()
        for a in range(8):
            for b in range(8):
                assert m[a, b] == pytest.approx(ds.latency_ms(a, b))

    def test_mean_latency_scale_calibration(self):
        # With default calibration mean one-way should be order-100 ms.
        ds = DelaySpace(64, np.random.default_rng(1))
        assert 60 <= ds.mean_latency_ms() <= 160

    def test_nearest(self):
        ds = make_space()
        cands = [3, 7, 11]
        best = ds.nearest(0, cands)
        assert best in cands
        assert all(
            ds.latency_ms(0, best) <= ds.latency_ms(0, c) for c in cands
        )

    def test_nearest_empty(self):
        with pytest.raises(ValueError):
            make_space().nearest(0, [])

    def test_index_bounds(self):
        ds = make_space(4)
        with pytest.raises(IndexError):
            ds.latency_ms(0, 4)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DelaySpace(0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            make_space(scale_ms=-1)


class TestNetwork:
    def _net(self):
        sim = Simulator()
        ds = make_space(8, jitter_ms=0.0)
        net = Network(sim, ds, MetricsCollector())
        return sim, ds, net

    def test_delivery_after_latency(self):
        sim, ds, net = self._net()
        got = []
        net.register(1, lambda m: got.append((m.payload, sim.now)))
        net.send(0, 1, QUERY, 64, payload="hi")
        sim.run()
        payload, t = got[0]
        assert payload == "hi"
        assert t == pytest.approx(ds.latency(0, 1) + net.processing_delay)

    def test_bytes_accounted(self):
        sim, ds, net = self._net()
        net.send(0, 1, QUERY, 64)
        net.send(0, 2, UPDATE, 100)
        assert net.metrics.bytes(QUERY) == 64
        assert net.metrics.bytes(UPDATE) == 100

    def test_on_delivery_override(self):
        sim, ds, net = self._net()
        got = []
        net.register(1, lambda m: got.append("handler"))
        net.send(0, 1, QUERY, 1, on_delivery=lambda m: got.append("override"))
        sim.run()
        assert got == ["override"]

    def test_failed_destination_drops(self):
        sim, ds, net = self._net()
        got = []
        net.register(1, lambda m: got.append(m))
        net.fail_node(1)
        net.send(0, 1, QUERY, 64)
        sim.run()
        assert got == []
        assert net.counters()["dropped"] == 1
        # Bytes still hit the wire from the (healthy) sender.
        assert net.metrics.bytes(QUERY) == 64

    def test_failed_sender_transmits_nothing(self):
        sim, ds, net = self._net()
        net.fail_node(0)
        net.send(0, 1, QUERY, 64)
        sim.run()
        assert net.metrics.bytes(QUERY) == 0

    def test_recovered_node_receives(self):
        sim, ds, net = self._net()
        got = []
        net.register(1, lambda m: got.append(m))
        net.fail_node(1)
        net.recover_node(1)
        net.send(0, 1, QUERY, 64)
        sim.run()
        assert len(got) == 1

    def test_unregistered_destination_is_noop(self):
        sim, ds, net = self._net()
        net.send(0, 3, QUERY, 64)
        sim.run()  # no handler: message silently discarded

    def test_is_failed(self):
        _, _, net = self._net()
        net.fail_node(2)
        assert net.is_failed(2)
        assert not net.is_failed(3)

    def test_counters_snapshot_isolation(self):
        # The series sampler stores counters() snapshots in ring buffers;
        # a snapshot must stay frozen while the network keeps counting.
        sim, ds, net = self._net()
        net.register(1, lambda m: None)
        net.send(0, 1, QUERY, 64)
        sim.run()
        before = net.counters()
        assert before["sent"] == 1 and before["delivered"] == 1
        net.fail_node(2)
        net.send(0, 1, QUERY, 64)
        net.send(0, 2, QUERY, 64)
        sim.run()
        after = net.counters()
        assert after["sent"] == 3
        assert after["dropped"] == 1
        # The earlier snapshot is unaffected by later traffic, and
        # mutating it never writes through to the live counters.
        assert before["sent"] == 1 and before["dropped"] == 0
        before["sent"] = 999
        assert net.counters()["sent"] == 3
