"""Tests for the CLI (repro.cli) and row export (experiments.export)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments.export import (
    load_rows_csv,
    load_rows_json,
    save_rows_csv,
    save_rows_json,
)


class TestExportCSV:
    def test_roundtrip(self, tmp_path):
        rows = [
            {"nodes": 64, "latency_ms": 222.5, "name": "roads"},
            {"nodes": 128, "latency_ms": 300.0, "name": "sword"},
        ]
        path = save_rows_csv(rows, tmp_path / "rows.csv")
        back = load_rows_csv(path)
        assert back == rows

    def test_union_of_columns(self, tmp_path):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        back = load_rows_csv(save_rows_csv(rows, tmp_path / "r.csv"))
        assert back[0]["a"] == 1 and back[0]["b"] == ""
        assert back[1]["b"] == 3

    def test_empty(self, tmp_path):
        path = save_rows_csv([], tmp_path / "empty.csv")
        assert load_rows_csv(path) == []

    def test_type_coercion(self, tmp_path):
        rows = [{"i": 5, "f": 2.5, "s": "abc"}]
        back = load_rows_csv(save_rows_csv(rows, tmp_path / "t.csv"))
        assert isinstance(back[0]["i"], int)
        assert isinstance(back[0]["f"], float)
        assert isinstance(back[0]["s"], str)


class TestExportJSON:
    def test_roundtrip_with_meta(self, tmp_path):
        rows = [{"x": 1}]
        path = save_rows_json(
            rows, tmp_path / "doc.json", meta={"figure": "fig3", "seed": 1}
        )
        doc = load_rows_json(path)
        assert doc["rows"] == rows
        assert doc["meta"]["figure"] == "fig3"

    def test_valid_json_on_disk(self, tmp_path):
        path = save_rows_json([{"x": 1}], tmp_path / "d.json")
        json.loads(path.read_text())


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["selftest", "--seed", "3"])
        assert args.command == "selftest" and args.seed == 3
        args = parser.parse_args(["figure", "fig3"])
        assert args.target == "fig3"

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_selftest_passes(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "selftest passed" in out

    def test_figure_with_csv_output(self, tmp_path, capsys):
        out_path = tmp_path / "t1.csv"
        rc = main(["figure", "table1", "--output", str(out_path)])
        assert rc == 0
        rows = load_rows_csv(out_path)
        assert rows  # analytical + measured rows present
        out = capsys.readouterr().out
        assert "table1" in out


class TestSuite:
    def test_run_suite_smoke(self, tmp_path):
        from repro.experiments import run_suite

        results = run_suite(
            tmp_path / "res",
            targets=["table1_analytical", "fig10"],
            scale="quick",
            progress=None,
        )
        assert set(results) == {"table1_analytical", "fig10"}
        assert (tmp_path / "res" / "fig10.csv").exists()
        assert (tmp_path / "res" / "fig10.json").exists()
        summary = (tmp_path / "res" / "SUMMARY.md").read_text()
        assert "fig10" in summary and "table1_analytical" in summary

    def test_unknown_target_rejected(self, tmp_path):
        from repro.experiments import run_suite

        with pytest.raises(ValueError, match="unknown targets"):
            run_suite(tmp_path, targets=["fig99"], progress=None)

    def test_available_targets(self):
        from repro.experiments import available_targets

        targets = available_targets()
        assert "fig3" in targets and "fig11" in targets
        assert "table1_analytical" in targets

    def test_cli_suite_subcommand(self, tmp_path, capsys):
        rc = main([
            "suite", "--out", str(tmp_path / "r"),
            "--targets", "table1_analytical",
        ])
        assert rc == 0
        assert (tmp_path / "r" / "SUMMARY.md").exists()


class TestBenchCLI:
    """`repro bench run/compare/trajectory` end-to-end in a tmp dir."""

    @pytest.fixture(scope="class")
    def bench_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("bench")
        rc = main([
            "bench", "run", "overlay", "--scale", "smoke",
            "--seed", "7", "--out", str(out),
            "--trajectory", str(out / "BENCH_trajectory.json"),
        ])
        assert rc == 0
        return out

    def test_run_writes_schema_valid_artifact(self, bench_dir):
        from repro.bench import load_artifact, validate_artifact

        path = bench_dir / "BENCH_overlay.json"
        assert path.exists()
        doc = json.loads(path.read_text())
        assert validate_artifact(doc) == []
        art = load_artifact(path)
        assert art.scenario == "overlay" and art.scale == "smoke"
        assert art.metrics["sim.latency_p95"] > 0
        assert art.wall["sections"]  # profiling was on
        assert art.ok

    def test_run_appends_trajectory(self, bench_dir):
        from repro.bench import load_trajectory

        rows = load_trajectory(bench_dir / "BENCH_trajectory.json")
        assert len(rows) == 1
        assert rows[0]["scenario"] == "overlay"
        assert rows[0]["shape_ok"] is True

    def test_compare_clean_rerun_exits_zero(self, bench_dir, capsys):
        rc = main([
            "bench", "compare", str(bench_dir / "BENCH_overlay.json"),
            "--baseline", str(bench_dir / "BENCH_overlay.json"),
        ])
        assert rc == 0
        assert "[ok] overlay" in capsys.readouterr().out

    def test_compare_flags_injected_latency_regression(
        self, bench_dir, tmp_path, capsys
    ):
        doc = json.loads((bench_dir / "BENCH_overlay.json").read_text())
        for key in ("sim.latency_p50", "sim.latency_p95"):
            doc["metrics"][key] *= 2.0
        bad = tmp_path / "BENCH_overlay.json"
        bad.write_text(json.dumps(doc))
        rc = main([
            "bench", "compare", str(bad),
            "--baseline", str(bench_dir / "BENCH_overlay.json"),
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "sim.latency_p95" in out and "FAIL" in out

    def test_compare_rejects_fingerprint_mismatch(
        self, bench_dir, tmp_path, capsys
    ):
        doc = json.loads((bench_dir / "BENCH_overlay.json").read_text())
        doc["config_fingerprint"] = "0" * 16
        other = tmp_path / "BENCH_overlay.json"
        other.write_text(json.dumps(doc))
        rc = main([
            "bench", "compare", str(other),
            "--baseline", str(bench_dir / "BENCH_overlay.json"),
        ])
        assert rc == 1
        assert "fingerprint mismatch" in capsys.readouterr().out

    def test_trajectory_subcommand_prints_table(self, bench_dir, capsys):
        rc = main([
            "bench", "trajectory",
            "--file", str(bench_dir / "BENCH_trajectory.json"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "overlay" in out and "p95_s" in out

    def test_bench_list(self, capsys):
        rc = main(["bench", "list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "overlay" in out
        assert "trace_deep_dive" in out


class TestTraceCLI:
    """`repro trace` reconstructs causal trees from an event artifact."""

    @pytest.fixture(scope="class")
    def artifact(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("trace")
        jsonl = out / "events.jsonl"
        rc = main([
            "telemetry", "--nodes", "16", "--records", "30",
            "--queries", "6", "--seed", "3",
            "--export-jsonl", str(jsonl),
        ])
        assert rc == 0
        return jsonl

    def test_list_traces(self, artifact, capsys):
        rc = main(["trace", str(artifact), "--list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "traces in" in out and "nodes" in out

    def test_render_largest_tree_with_critical_path(self, artifact, capsys):
        rc = main(["trace", str(artifact)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "root(s)" in out
        assert "critical path:" in out
        assert "wire" in out and "processing" in out

    def test_chrome_export(self, artifact, tmp_path, capsys):
        chrome = tmp_path / "trace.json"
        rc = main(["trace", str(artifact), "--chrome", str(chrome)])
        assert rc == 0
        doc = json.loads(chrome.read_text())
        assert any(e["ph"] == "s" for e in doc["traceEvents"])

    def test_unknown_trace_id(self, artifact, capsys):
        rc = main(["trace", str(artifact), "--trace-id", "999999999"])
        assert rc == 1
        assert "not found" in capsys.readouterr().out

    def test_artifact_without_traces(self, tmp_path, capsys):
        empty = tmp_path / "events.jsonl"
        empty.write_text(
            '{"ts": 0.0, "name": "plain", "kind": "event", "dur": 0.0, '
            '"span_id": 0, "parent_id": 0, "tags": {}}\n'
        )
        rc = main(["trace", str(empty)])
        assert rc == 1
        assert "no causally-tagged events" in capsys.readouterr().out

    def test_diff_critical_paths(self, artifact, capsys):
        from repro.telemetry import assemble_traces, critical_path
        from repro.telemetry.export import read_jsonl

        trees = assemble_traces(read_jsonl(str(artifact)))
        ids = [
            tid for tid, tree in sorted(trees.items())
            if critical_path(tree).segments
        ]
        assert len(ids) >= 2, "artifact has too few traced searches"
        rc = main([
            "trace", str(artifact), "--diff", str(ids[0]), str(ids[1]),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"trace {ids[0]}" in out and f"trace {ids[1]}" in out
        assert "delta" in out
        for category in ("wire", "queue", "service", "processing"):
            assert category in out

    def test_diff_unknown_trace(self, artifact, capsys):
        rc = main([
            "trace", str(artifact), "--diff", "999999998", "999999999",
        ])
        assert rc == 1
        assert "not found" in capsys.readouterr().out


class TestHealthCLI:
    """`repro health` builds a small sim and judges it against SLOs."""

    def test_healthy_run_exits_zero(self, tmp_path, capsys):
        report = tmp_path / "health.json"
        rc = main([
            "health", "--nodes", "12", "--records", "20",
            "--queries", "10", "--rate", "10", "--duration", "2",
            "--export", str(report),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "federation HEALTHY" in out
        doc = json.loads(report.read_text())
        assert doc["healthy"] is True
        assert {c["name"] for c in doc["checks"]} >= {
            "staleness", "coverage", "shedding", "loss"
        }


class TestWatchCLI:
    """`repro watch` runs a federation with the full observability
    stack armed: series sampler, SLO probe, flight recorder."""

    def _run(self, extra):
        return main([
            "watch", "--nodes", "16", "--records", "20",
            "--queries", "10", "--rate", "20", "--duration", "2",
            "--seed", "4",
        ] + extra)

    def test_sparkline_dashboard(self, capsys):
        rc = self._run([])
        assert rc == 0
        out = capsys.readouterr().out
        assert "samples over" in out
        assert "net.sent" in out and "sim.pending" in out
        assert "postmortems captured:" in out

    def test_csv_format_and_jsonl_export(self, tmp_path, capsys):
        exported = tmp_path / "series.jsonl"
        rc = self._run(["--format", "csv", "--export", str(exported)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "metric,server,t,value" in out
        from repro.telemetry.export import read_series_jsonl

        rows = read_series_jsonl(exported)
        assert rows
        # A 2s run folds no 16-point rollup buckets yet — raw only.
        assert {r["kind"] for r in rows} >= {"raw"}
        assert {"metric", "server", "t", "value"} <= set(rows[0])

    def test_lossy_run_breaches_and_dumps_postmortems(
        self, tmp_path, capsys
    ):
        pm = tmp_path / "pm"
        rc = self._run([
            "--loss", "0.25", "--queue-limit", "8",
            "--service-time", "0.004", "--postmortem-dir", str(pm),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SLO breaches:" in out and "loss" in out
        assert "postmortem bundle written to" in out
        files = sorted(pm.glob("postmortem_*.json"))
        assert files
        # The companion verb renders what the recorder dumped.
        rc = main(["postmortem", str(pm)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "postmortem: slo:" in out
        assert "overlapping causal traces:" in out


class TestPostmortemCLI:
    def test_empty_dir_exits_nonzero(self, tmp_path, capsys):
        rc = main(["postmortem", str(tmp_path)])
        assert rc == 1
        assert "no postmortem bundles" in capsys.readouterr().out

    def test_json_output_of_manual_bundle(self, tmp_path, capsys):
        from repro.telemetry import FlightRecorder, Telemetry

        tel = Telemetry()
        recorder = FlightRecorder(tel, dump_dir=tmp_path)
        tel.event("evidence", server=1)
        recorder.trigger("slo:loss")
        rc = main(["postmortem", str(recorder.dumped[0]), "--json"])
        assert rc == 0
        out = capsys.readouterr().out
        assert '"reason": "slo:loss"' in out


class TestWatchQualityRows:
    """The watch dashboard samples and renders both the dispatcher's
    per-kind gauges and the shadow oracle's quality gauges."""

    def test_dispatch_and_quality_sparklines(self, capsys):
        rc = main([
            "watch", "--nodes", "16", "--records", "20",
            "--queries", "10", "--rate", "20", "--duration", "2",
            "--seed", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "dispatch.query" in out
        assert "dispatch.summary-full" in out
        assert "quality.precision" in out
        assert "quality.audits" in out
        assert "quality.fp_rate" in out


class TestQualityCLI:
    """`repro quality` arms the shadow oracle under load and reports
    precision/recall plus per-summary divergence attributions."""

    def _run(self, extra):
        return main([
            "quality", "--nodes", "16", "--records", "20",
            "--queries", "10", "--rate", "20", "--duration", "2",
            "--interval", "1.0", "--loss", "0.2", "--seed", "4",
        ] + extra)

    def test_summary_tables(self, capsys):
        rc = self._run([])
        assert rc == 0
        out = capsys.readouterr().out
        assert "oracle:" in out and "precision" in out
        assert "confusion:" in out

    def test_bare_json_is_clean_stdout_with_stderr_narration(
        self, capsys
    ):
        rc = self._run(["--json"])
        assert rc == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)  # stdout is pure JSON
        assert {"snapshot", "per_node", "reports"} <= set(doc)
        assert doc["snapshot"]["audits"] > 0
        for report in doc["reports"]:
            assert len(report["attributions"]) == (
                report["fp"] + report["fn"]
            )
        assert "oracle:" in captured.err  # narration rerouted

    def test_json_to_file(self, tmp_path, capsys):
        target = tmp_path / "quality.json"
        rc = self._run(["--json", str(target)])
        assert rc == 0
        doc = json.loads(target.read_text())
        assert doc["snapshot"]["audits"] > 0
        assert "quality report JSON written to" in capsys.readouterr().out

    def test_min_precision_gate(self, capsys):
        # precision can never exceed 1.0, so this SLO floor must fail
        assert self._run(["--min-precision", "1.01"]) == 1
        capsys.readouterr()


class TestSharedParentParser:
    """Every observability verb inherits --scale/--seed/--out/--json
    from the one parent parser — same defaults, same bare-flag JSON."""

    CASES = {
        "trace": ["trace", "events.jsonl"],
        "watch": ["watch"],
        "quality": ["quality"],
        "postmortem": ["postmortem", "some/dir"],
        "profile": ["profile", "overlay"],
        "bench run": ["bench", "run", "overlay"],
    }

    @pytest.mark.parametrize("verb", sorted(CASES))
    def test_shared_defaults(self, verb):
        args = build_parser().parse_args(self.CASES[verb])
        assert args.scale == "quick"
        assert args.seed == 1
        assert args.out == "."
        assert args.json is None

    @pytest.mark.parametrize("verb", sorted(CASES))
    def test_bare_json_means_stdout(self, verb):
        args = build_parser().parse_args(self.CASES[verb] + ["--json"])
        assert args.json == "-"
        args = build_parser().parse_args(
            self.CASES[verb] + ["--json", "doc.json", "--seed", "9"]
        )
        assert args.json == "doc.json"
        assert args.seed == 9
