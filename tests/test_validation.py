"""Tests for the shape validators (repro.experiments.validation)."""

import pytest

from repro.experiments.validation import (
    check_crossover,
    check_dominates,
    check_growth_order,
    check_monotone,
    check_ratio_band,
    crossover_position,
    validate_fig3,
    validate_fig4,
    validate_fig5,
    validate_fig8,
    validate_fig11,
)

# Row sets shaped like our measured quick-scale results.
FIG3 = [
    {"nodes": 64, "roads_latency_ms": 222, "sword_latency_ms": 476},
    {"nodes": 192, "roads_latency_ms": 527, "sword_latency_ms": 777},
    {"nodes": 320, "roads_latency_ms": 558, "sword_latency_ms": 1079},
]
FIG4 = [
    {"nodes": 64, "roads_update_bytes": 6.8e8, "sword_update_bytes": 2.2e10},
    {"nodes": 320, "roads_update_bytes": 4.6e9, "sword_update_bytes": 1.5e11},
]
FIG5 = [
    {"nodes": 64, "roads_query_bytes": 1317, "sword_query_bytes": 664},
    {"nodes": 320, "roads_query_bytes": 7855, "sword_query_bytes": 1424},
]
FIG8 = [
    {"records_per_node": 50, "roads_update_bytes": 2.5e9, "sword_update_bytes": 8.1e9},
    {"records_per_node": 500, "roads_update_bytes": 2.5e9, "sword_update_bytes": 8.1e10},
]
FIG11 = [
    {"selectivity_pct": 0.01, "roads_mean_ms": 720, "central_mean_ms": 238},
    {"selectivity_pct": 1.0, "roads_mean_ms": 790, "central_mean_ms": 488},
    {"selectivity_pct": 3.0, "roads_mean_ms": 778, "central_mean_ms": 1038},
]


class TestPrimitives:
    def test_dominates_pass_and_fail(self):
        assert check_dominates(FIG3, "roads_latency_ms", "sword_latency_ms") == []
        assert check_dominates(FIG3, "sword_latency_ms", "roads_latency_ms")

    def test_dominates_min_factor(self):
        assert check_dominates(
            FIG4, "roads_update_bytes", "sword_update_bytes", min_factor=10
        ) == []
        assert check_dominates(
            FIG4, "roads_update_bytes", "sword_update_bytes", min_factor=100
        )

    def test_growth_orders(self):
        assert check_growth_order(
            FIG3, "nodes", "sword_latency_ms", order="linear"
        ) == []
        assert check_growth_order(
            FIG3, "nodes", "roads_latency_ms", order="sublinear"
        ) == []
        assert check_growth_order(
            FIG8, "records_per_node", "roads_update_bytes", order="constant"
        ) == []
        # linear claim fails for a constant series
        assert check_growth_order(
            FIG8, "records_per_node", "roads_update_bytes", order="linear"
        )

    def test_growth_unknown_order(self):
        with pytest.raises(ValueError):
            check_growth_order(FIG3, "nodes", "roads_latency_ms", order="wat")

    def test_growth_single_point(self):
        assert check_growth_order(
            FIG3[:1], "nodes", "roads_latency_ms", order="linear"
        )

    def test_monotone(self):
        assert check_monotone(
            FIG11, "central_mean_ms", direction="increasing"
        ) == []
        assert check_monotone(
            FIG11, "central_mean_ms", direction="decreasing"
        )
        with pytest.raises(ValueError):
            check_monotone(FIG11, "central_mean_ms", direction="sideways")

    def test_crossover(self):
        assert check_crossover(
            FIG11, "selectivity_pct", "roads_mean_ms", "central_mean_ms"
        ) == []
        assert crossover_position(
            FIG11, "selectivity_pct", "roads_mean_ms", "central_mean_ms"
        ) == 3.0

    def test_crossover_never(self):
        rows = [
            {"x": 1, "a": 10, "b": 1},
            {"x": 2, "a": 10, "b": 2},
        ]
        assert check_crossover(rows, "x", "a", "b")
        assert crossover_position(rows, "x", "a", "b") is None

    def test_ratio_band(self):
        assert check_ratio_band(
            FIG5, "roads_query_bytes", "sword_query_bytes", 1.0, 8.0
        ) == []
        assert check_ratio_band(
            FIG5, "roads_query_bytes", "sword_query_bytes", 6.0, 8.0
        )


class TestFigureValidators:
    def test_all_pass_on_measured_shapes(self):
        assert validate_fig3(FIG3) == []
        assert validate_fig4(FIG4) == []
        assert validate_fig5(FIG5) == []
        assert validate_fig8(FIG8) == []
        assert validate_fig11(FIG11) == []

    def test_fig3_catches_inverted_winner(self):
        bad = [
            dict(r, roads_latency_ms=r["sword_latency_ms"] * 2) for r in FIG3
        ]
        assert validate_fig3(bad)

    def test_fig11_catches_missing_crossover(self):
        bad = [dict(r, roads_mean_ms=5000) for r in FIG11]
        assert validate_fig11(bad)

    def test_live_fig10_rows_validate(self):
        """End-to-end: a real (tiny) driver run satisfies its validator
        primitives."""
        from repro.experiments import ExperimentSettings, fig10_latency_vs_degree

        rows = fig10_latency_vs_degree(
            ExperimentSettings.smoke().with_(num_queries=10),
            degree_sweep=(3, 12),
        )
        assert check_monotone(
            rows, "roads_latency_ms", direction="decreasing"
        ) == []
