"""The event-driven summary update plane.

Summaries now travel as real simulated messages (``summary-full`` /
``summary-keepalive`` kinds) installed at delivery time; these tests pin
down the properties that matter:

* a drained loss-free epoch costs byte-for-byte what the legacy
  synchronous rounds modelled (figures keep reproducing);
* measuring an epoch's cost does not perturb delta state (the old
  ``update_bytes_per_epoch`` observer effect);
* a lost full update leaves genuinely stale soft state: keep-alives are
  rejected, queries quietly miss the unreachable content, the entry
  expires at its TTL, and the sender's forced full re-send heals it;
* maintenance integration: rejoins re-export immediately, heartbeats
  can piggyback summary fingerprints;
* the public ``QueryExecution.run(mode=...)`` entry points.
"""

import numpy as np
import pytest

from repro.net.transport import SUMMARY_FULL, SUMMARY_KEEPALIVE
from repro.query import Query, RangePredicate
from repro.roads import GuestOwner, RoadsConfig, RoadsSystem, SearchRequest
from repro.summaries import SummaryConfig
from repro.workload import WorkloadConfig, generate_node_stores, merge_stores
from repro.workload.queries import generate_queries

N = 18
RECORDS = 24
BUCKETS = 120


def build(
    *, delta=True, seed=21, ttl=300.0, loss_rate=0.0, guests=(), n=N
):
    wcfg = WorkloadConfig(num_nodes=n, records_per_node=RECORDS, seed=seed)
    stores = generate_node_stores(wcfg)
    system = RoadsSystem.build(
        RoadsConfig(
            num_nodes=n,
            records_per_node=RECORDS,
            max_children=3,
            summary=SummaryConfig(histogram_buckets=BUCKETS, ttl=ttl),
            delta_updates=delta,
            loss_rate=loss_rate,
            seed=seed,
        ),
        stores,
        guests=list(guests),
    )
    return wcfg, stores, system


class _AlwaysLose:
    """rng stub: every loss draw comes up lost."""

    def random(self):
        return 0.0


def lossy(network):
    network.loss_rate = 0.9
    network._rng = _AlwaysLose()


def lossless(network):
    network.loss_rate = 0.0
    network._rng = None


class TestEpochParity:
    """A drained epoch reproduces the legacy synchronous byte model."""

    @pytest.mark.parametrize("delta", [False, True])
    def test_epoch_matches_measured_cost(self, delta):
        _, _, system = build(delta=delta)
        measured = system.update_plane.measure_epoch()
        epoch = system.refresh()
        assert epoch.total_bytes == measured.total_bytes
        assert epoch.total_messages == measured.total_messages
        assert (
            epoch.aggregation.full_reports
            == measured.aggregation.full_reports
        )
        assert (
            epoch.replication.full_sends == measured.replication.full_sends
        )

    def test_epoch_parity_with_guests(self):
        wcfg = WorkloadConfig(num_nodes=N, records_per_node=RECORDS, seed=3)
        gs = generate_node_stores(wcfg)[0]
        _, _, system = build(
            seed=3, guests=[GuestOwner(gs, attach_to=2, owner_id="g")]
        )
        measured = system.update_plane.measure_epoch()
        epoch = system.refresh()
        assert epoch.aggregation.export_bytes > 0
        assert (
            epoch.aggregation.export_bytes
            == measured.aggregation.export_bytes
        )
        assert epoch.total_bytes == measured.total_bytes

    def test_update_messages_use_wire_kinds(self):
        _, stores, system = build()
        # Churn one record so the steady-state delta epoch still carries
        # at least one full send alongside the keep-alives.
        old = float(stores[0].numeric_column("u0")[0])
        stores[0].update_numeric(
            0, "u0", 1.0 - old if abs(old - 0.5) > 0.05 else 0.95
        )
        kinds = []
        original = system.network.send
        original_many = system.network.send_many

        def spy(src, dst, category, size, *args, **kwargs):
            if kwargs.get("kind"):
                kinds.append((kwargs["kind"], size))
            return original(src, dst, category, size, *args, **kwargs)

        def spy_many(src, requests, category, **kwargs):
            requests = list(requests)
            for dst, size, payload, kind, trace in requests:
                if kind:
                    kinds.append((kind, size))
            return original_many(src, requests, category, **kwargs)

        system.network.send = spy
        system.network.send_many = spy_many
        system.refresh()
        names = {k for k, _ in kinds}
        assert names == {SUMMARY_FULL, SUMMARY_KEEPALIVE}
        # Keep-alives are headers; full sends carry the encoded summary.
        max_keepalive = max(s for k, s in kinds if k == SUMMARY_KEEPALIVE)
        min_full = min(s for k, s in kinds if k == SUMMARY_FULL)
        assert max_keepalive < min_full


class TestMeasurementDoesNotPerturb:
    """Satellite fix: asking an epoch's cost must not change the epoch."""

    def test_measure_is_repeatable_and_clock_free(self):
        _, _, system = build()
        t = system.sim.now
        a = system.update_bytes_per_epoch()
        b = system.update_bytes_per_epoch()
        assert a == b > 0
        assert system.sim.now == t  # measurement sends nothing

    def test_pending_change_still_ships_after_measuring(self):
        """The old implementation ran a real round into a scratch
        collector: it armed the delta fingerprints, so the change that
        was about to propagate silently became a keep-alive. Measuring
        must leave the pending full sends pending."""
        _, stores, system = build()
        system.refresh()  # steady state
        store = stores[5]
        old = float(store.numeric_column("u0")[0])
        store.update_numeric(0, "u0", 1.0 - old if abs(old - 0.5) > 0.05 else 0.9)
        measured = system.update_bytes_per_epoch()
        report = system.refresh()
        assert report.aggregation.full_reports >= 1
        assert report.total_bytes == measured

    def test_measure_preserves_soft_state_tables(self):
        _, _, system = build()
        system.refresh()
        root = system.hierarchy.root
        before = dict(root.child_summaries)
        system.update_plane.measure_epoch()
        assert root.child_summaries == before


def empty_bucket_value(store, merged, buckets=BUCKETS):
    """A u0 value in a bucket empty at *store* (prefer empty everywhere)."""
    fallback = None
    for b in range(buckets - 1):
        lo, hi = b / buckets, (b + 1) / buckets
        col = store.numeric_column("u0")
        if ((col >= lo) & (col < hi)).any():
            continue
        value = (b + 0.5) / buckets
        merged_col = merged.numeric_column("u0")
        if not ((merged_col >= lo) & (merged_col < hi)).any():
            return value
        if fallback is None:
            fallback = value
    assert fallback is not None, "no empty bucket in the victim store"
    return fallback


class TestLossAndTTL:
    """Lost full update -> stale soft state -> TTL expiry -> heal."""

    def _stale_system(self, ttl=40.0):
        _, stores, system = build(ttl=ttl)
        system.refresh()  # steady state armed
        leaf = max(system.hierarchy, key=lambda s: s.depth)
        assert leaf.parent is not None
        merged = merge_stores(stores)
        value = empty_bucket_value(stores[leaf.server_id], merged)
        stores[leaf.server_id].update_numeric(0, "u0", value)
        # The epoch that would have propagated the change is lost whole.
        lossy(system.network)
        lost_report = system.refresh()
        lossless(system.network)
        assert system.update_plane.counters.lost > 0
        assert lost_report.aggregation.full_reports >= 1
        width = 1.0 / BUCKETS
        query = Query.of(
            RangePredicate("u0", value - width / 4, value + width / 4)
        )
        return stores, system, leaf, query

    def test_lost_update_leaves_serving_stale_summary(self):
        stores, system, leaf, query = self._stale_system()
        plane = system.update_plane
        rejected_before = plane.counters.ignored
        report = system.refresh()  # clean epoch: keep-alives flow again
        # The sender believes its content is unchanged-since-shipped, so
        # it keeps sending keep-alives; receivers hold the pre-change
        # content and must reject them rather than refresh a lie.
        assert report.aggregation.keepalive_reports >= 1
        assert plane.counters.ignored > rejected_before
        held = leaf.parent.child_summaries[leaf.server_id]
        assert not held.is_expired(system.sim.now)  # still serving...
        assert held.fingerprint() != (
            leaf.branch_summary(system.config.summary, system.sim.now)
            .fingerprint()
        )  # ...but genuinely stale
        # A query for the new value quietly misses the changed owner:
        # every summary on the routing path still shows the old content.
        outcome = system.search(SearchRequest(query, client_node=0)).outcome
        assert outcome.completed
        owner = f"owner-{leaf.server_id}"
        assert owner not in {h.owner_id for h in outcome.owner_hits}

    def test_stale_summary_expires_and_query_degrades_gracefully(self):
        stores, system, leaf, query = self._stale_system(ttl=40.0)
        sim = system.sim
        # Keep the rest of the soft state fresh while the stale entries
        # age: epochs every 10s, rejection repeating each time.
        for _ in range(3):
            sim.run(until=sim.now + 10.0)
            system.refresh()
        stale_entry = leaf.parent.child_summaries[leaf.server_id]
        assert not stale_entry.is_expired(sim.now)
        sim.run(until=sim.now + 12.0)  # past the 40s TTL, no epoch yet
        assert stale_entry.is_expired(sim.now)
        outcome = system.search(SearchRequest(query, client_node=0)).outcome
        assert outcome.completed  # expired branch degrades, not raises
        owner = f"owner-{leaf.server_id}"
        assert owner not in {h.owner_id for h in outcome.owner_hits}

    def test_forced_full_resend_heals_staleness(self):
        stores, system, leaf, query = self._stale_system(ttl=40.0)
        sim = system.sim
        for _ in range(3):
            sim.run(until=sim.now + 10.0)
            system.refresh()
        sim.run(until=sim.now + 12.0)
        # refresh_after (= ttl) has elapsed since the exporter's last
        # full send: soft-state anti-entropy re-ships the full summary.
        report = system.refresh()
        assert report.aggregation.full_reports >= 1
        held = leaf.parent.child_summaries[leaf.server_id]
        assert held.fingerprint() == (
            leaf.branch_summary(system.config.summary, sim.now).fingerprint()
        )
        outcome = system.search(SearchRequest(query, client_node=0)).outcome
        owner = f"owner-{leaf.server_id}"
        assert owner in {h.owner_id for h in outcome.owner_hits}
        reference = merge_stores(stores)
        assert outcome.total_matches == query.match_count(reference)

    def test_seeded_loss_rate_reports_losses(self):
        _, _, system = build(loss_rate=0.2, seed=9)
        system.refresh()
        assert system.update_plane.counters.lost > 0
        assert system.network.counters()["lost"] > 0


class TestFreeRunning:
    def test_free_running_converges_to_exact_queries(self):
        wcfg, stores, system = build(seed=11)
        plane = system.update_plane
        plane.start()
        sim = system.sim
        # Churn a record, then give the plane two intervals to carry the
        # change through export, aggregation and replication.
        old = float(stores[4].numeric_column("u0")[0])
        stores[4].update_numeric(0, "u0", 1.0 - old if abs(old - 0.5) > 0.05 else 0.9)
        sim.run(until=sim.now + 2.5 * plane.interval)
        plane.stop()
        assert plane.ticks >= len(system.hierarchy)
        reference = merge_stores(stores)
        for q in generate_queries(wcfg, num_queries=5, dimensions=2):
            o = system.search(SearchRequest(q, client_node=1)).outcome
            assert o.total_matches == q.match_count(reference)

    def test_start_is_idempotent_and_stop_halts_traffic(self):
        _, _, system = build()
        plane = system.update_plane
        plane.start()
        tasks = dict(plane._tasks)
        plane.start()
        assert plane._tasks == tasks
        plane.stop()
        bytes_before = system.metrics.total_bytes
        sim = system.sim
        sim.run(until=sim.now + 3 * plane.interval)
        assert system.metrics.total_bytes == bytes_before
        assert plane._tasks == {}


class TestMaintenanceIntegration:
    def test_rejoin_triggers_immediate_full_export(self):
        _, stores, system = build(seed=13)
        proto = system.enable_maintenance()
        system.refresh()
        victim = next(
            s for s in system.hierarchy
            if not s.is_root and s.children and s.parent is not None
        )
        child = victim.children[0]
        proto.fail(victim)
        plane = system.update_plane
        full_before = plane.counters.full_reports
        system.sim.run(until=system.sim.now + 60.0)
        assert proto.rejoins >= 1
        assert child.parent is not None
        assert child.parent.server_id != victim.server_id
        # The rejoin hook re-exported without waiting for an epoch.
        assert plane.counters.full_reports > full_before
        assert child.server_id in child.parent.child_summaries

    def test_heartbeat_piggyback_refreshes_child_ttl(self):
        from repro.hierarchy.maintenance import MaintenanceConfig

        _, _, system = build(seed=15)
        system.enable_maintenance(
            MaintenanceConfig(
                heartbeat_interval=2.0, piggyback_summaries=True
            )
        )
        system.refresh()
        leaf = max(system.hierarchy, key=lambda s: s.depth)
        held = leaf.parent.child_summaries[leaf.server_id]
        stamped = held.created_at
        sim = system.sim
        sim.run(until=sim.now + 10.0)  # heartbeats only, no epochs
        refreshed = leaf.parent.child_summaries[leaf.server_id]
        assert refreshed.created_at > stamped
        assert refreshed.fingerprint() == held.fingerprint()

    def test_heartbeat_piggyback_off_by_default(self):
        from repro.sim.metrics import MAINTENANCE

        def maintenance_bytes(piggyback):
            from repro.hierarchy.maintenance import MaintenanceConfig

            _, _, system = build(seed=15)
            system.enable_maintenance(
                MaintenanceConfig(
                    heartbeat_interval=2.0,
                    piggyback_summaries=piggyback,
                )
            )
            system.refresh()
            start = system.sim.now
            system.sim.run(until=start + 10.0)
            return system.metrics.bytes_by_category.get(MAINTENANCE, 0)

        assert maintenance_bytes(False) < maintenance_bytes(True)


class TestQueryEntryModes:
    def test_run_mode_descent_matches_scoped_semantics(self):
        _, stores, system = build(seed=17)
        system.refresh()
        root = system.hierarchy.root
        branch = root.children[0]
        branch_ids = {s.server_id for s in branch.iter_subtree()}
        q = Query.of(RangePredicate("u0", 0.0, 1.0))
        outcome = system.search(SearchRequest(q, client_node=0, scope=branch.server_id)).outcome
        contacted_servers = set(outcome.arrivals) & {
            s.server_id for s in system.hierarchy
        }
        assert contacted_servers <= branch_ids
        reference = merge_stores(
            [stores[i] for i in sorted(branch_ids) if i < len(stores)]
        )
        assert outcome.total_matches == q.match_count(reference)

    def test_invalid_mode_rejected(self):
        from repro.roads import QueryExecution

        _, _, system = build(seed=17)
        q = Query.of(RangePredicate("u0", 0.4, 0.6))
        execution = QueryExecution(
            system.sim, system.network, system.hierarchy,
            system.config.summary, system.policies, q, 0, 0,
        )
        with pytest.raises(ValueError, match="mode"):
            execution.run(mode="sideways")

    def test_done_property_tracks_completion(self):
        from repro.roads import QueryExecution

        _, _, system = build(seed=17)
        system.refresh()
        q = Query.of(RangePredicate("u0", 0.4, 0.6))
        execution = QueryExecution(
            system.sim, system.network, system.hierarchy,
            system.config.summary, system.policies, q, 0, 0,
        )
        assert not execution.done
        execution.run(mode="start")
        assert execution.done
